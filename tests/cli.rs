//! End-to-end tests of the `vcdn` command-line interface, driving the real
//! binary through generate → stats → replay → bound round trips.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vcdn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vcdn"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vcdn-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = vcdn(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in ["gen", "stats", "replay", "bound"] {
        assert!(text.contains(cmd), "usage missing '{cmd}'");
    }
}

#[test]
fn unknown_command_fails_with_message() {
    let out = vcdn(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn gen_stats_replay_bound_roundtrip() {
    let path = temp_trace("roundtrip.jsonl");
    let path_s = path.to_str().expect("utf-8 path");

    // Generate.
    let out = vcdn(&[
        "gen",
        "--profile",
        "tiny",
        "--days",
        "1",
        "--seed",
        "7",
        "--out",
        path_s,
    ]);
    assert!(out.status.success(), "gen failed: {}", stderr(&out));
    assert!(stdout(&out).contains("wrote"));

    // Stats.
    let out = vcdn(&["stats", "--trace", path_s]);
    assert!(out.status.success(), "stats failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("unique videos"));
    assert!(text.contains("zipf slope"));

    // Replay with each algorithm.
    for algo in ["lru", "lfu", "lru2", "xlru", "cafe", "psychic"] {
        let out = vcdn(&[
            "replay",
            "--trace",
            path_s,
            "--algo",
            algo,
            "--alpha",
            "2",
            "--disk-chunks",
            "64",
        ]);
        assert!(out.status.success(), "replay {algo}: {}", stderr(&out));
        assert!(stdout(&out).contains("efficiency"));
    }

    // Disk in GB instead of chunks.
    let out = vcdn(&[
        "replay",
        "--trace",
        path_s,
        "--algo",
        "cafe",
        "--alpha",
        "1",
        "--disk-gb",
        "0.25",
    ]);
    assert!(out.status.success(), "disk-gb replay: {}", stderr(&out));

    // Bound on a truncated prefix.
    let out = vcdn(&[
        "bound",
        "--trace",
        path_s,
        "--alpha",
        "2",
        "--disk-chunks",
        "16",
        "--requests",
        "40",
    ]);
    assert!(out.status.success(), "bound failed: {}", stderr(&out));
    assert!(stdout(&out).contains("efficiency upper bound"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_requires_disk_size() {
    let path = temp_trace("nodisk.jsonl");
    let path_s = path.to_str().expect("utf-8 path");
    vcdn(&["gen", "--days", "1", "--out", path_s]);
    let out = vcdn(&["replay", "--trace", path_s, "--algo", "cafe"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--disk-chunks or --disk-gb"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn gen_rejects_bad_inputs() {
    let out = vcdn(&["gen", "--profile", "mars", "--out", "/tmp/x.jsonl"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown profile"));

    let out = vcdn(&["gen", "--days", "1"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--out is required"));

    let out = vcdn(&["gen", "--scale", "-1", "--out", "/tmp/x.jsonl"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--scale"));
}

#[test]
fn stats_rejects_missing_file() {
    let out = vcdn(&["stats", "--trace", "/nonexistent/definitely/missing.jsonl"]);
    assert!(!out.status.success());
}

#[test]
fn flags_require_values() {
    let out = vcdn(&["gen", "--days"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("requires a value"));
}

#[test]
fn binary_trace_format_roundtrips_through_cli() {
    let path = temp_trace("bin.vctb");
    let path_s = path.to_str().expect("utf-8 path");
    let out = vcdn(&[
        "gen",
        "--profile",
        "tiny",
        "--days",
        "1",
        "--seed",
        "9",
        "--out",
        path_s,
    ]);
    assert!(out.status.success(), "gen vctb: {}", stderr(&out));
    let out = vcdn(&["stats", "--trace", path_s]);
    assert!(out.status.success(), "stats vctb: {}", stderr(&out));
    let out = vcdn(&[
        "replay",
        "--trace",
        path_s,
        "--algo",
        "xlru",
        "--alpha",
        "2",
        "--disk-chunks",
        "32",
    ]);
    assert!(out.status.success(), "replay vctb: {}", stderr(&out));
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_save_and_load_through_cli() {
    let trace_path = temp_trace("snapshot-trace.jsonl");
    let state_path = temp_trace("cafe-state.json");
    let tp = trace_path.to_str().expect("utf-8");
    let sp = state_path.to_str().expect("utf-8");
    vcdn(&["gen", "--days", "1", "--seed", "3", "--out", tp]);
    // Replay saving state...
    let out = vcdn(&[
        "replay",
        "--trace",
        tp,
        "--algo",
        "cafe",
        "--alpha",
        "2",
        "--disk-chunks",
        "64",
        "--save-state",
        sp,
    ]);
    assert!(out.status.success(), "save-state: {}", stderr(&out));
    assert!(state_path.exists());
    // ...then warm-start from it.
    let out = vcdn(&[
        "replay",
        "--trace",
        tp,
        "--algo",
        "cafe",
        "--alpha",
        "2",
        "--disk-chunks",
        "64",
        "--load-state",
        sp,
    ]);
    assert!(out.status.success(), "load-state: {}", stderr(&out));
    // Unsupported algorithms refuse the flags.
    let out = vcdn(&[
        "replay",
        "--trace",
        tp,
        "--algo",
        "lru",
        "--disk-chunks",
        "8",
        "--save-state",
        sp,
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cafe and xlru only"));
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&state_path).ok();
}
