//! Opt-in soak test: a heavier replay through every algorithm with all
//! invariant checks enabled. Excluded from the default run; execute with
//! `cargo test --test soak -- --ignored`.

use std::sync::Arc;

use vcdn::cache::{
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig,
    XlruCache,
};
use vcdn::obs::{MetricsRegistry, MetricsSink};
use vcdn::sim::engine::{engine_bundle, EngineConfig, ShardedEngine};
use vcdn::sim::{ReplayConfig, Replayer};
use vcdn::trace::{ServerProfile, TraceGenerator};
use vcdn::types::{ChunkSize, CostModel, DurationMs};

/// Seeded concurrency stress for the sharded serving engine: a long trace
/// through 16 shards on 8 worker threads, repeated three times, asserting
/// the exported `vcdn-telemetry/1` JSONL is byte-identical across
/// repetitions (the `cmp` in test form). A torn atomic update, a racy
/// per-shard counter or any ordering-dependent accounting shows up as a
/// bundle diff here before it ever reaches CI's cmp job.
#[test]
fn concurrent_engine_stress_repeats_bit_identical_telemetry() {
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid");
    let profile = ServerProfile::europe().scaled(1.0 / 16.0);
    let trace = TraceGenerator::new(profile, 77_177).generate(DurationMs::from_days(7));
    assert!(
        trace.len() > 20_000,
        "stress trace too small: {}",
        trace.len()
    );

    let run_once = || {
        let registry = Arc::new(MetricsRegistry::new());
        let sink: Arc<dyn MetricsSink> = registry.clone();
        let cfg = EngineConfig::new(16, 4 * 1024, k, costs).expect("valid engine config");
        let mut engine = ShardedEngine::try_new(cfg, |_, cache| -> Box<dyn CachePolicy> {
            Box::new(XlruCache::new(cache))
        })
        .expect("engine builds");
        engine.attach_obs(&sink, "stress");
        let report = engine.run(&trace, 8);
        (
            engine_bundle(&report, &registry, &vcdn::obs::default_rules()).to_jsonl(),
            report,
        )
    };

    let (first_jsonl, first_report) = run_once();
    assert!(
        first_jsonl.lines().count() > 16,
        "bundle suspiciously small"
    );
    assert_eq!(first_report.total_requests() as usize, trace.len());
    for rep in 1..3 {
        let (jsonl, report) = run_once();
        assert_eq!(first_report, report, "rep {rep}: engine report diverged");
        assert_eq!(
            first_jsonl, jsonl,
            "rep {rep}: telemetry JSONL diverged across identical concurrent runs"
        );
    }
}

#[test]
#[ignore = "heavy: ~1 minute; run with --ignored"]
fn month_long_soak_with_invariant_checks() {
    let k = ChunkSize::DEFAULT;
    let profile = ServerProfile::europe().scaled(1.0 / 64.0);
    let trace = TraceGenerator::new(profile, 424242).generate(DurationMs::from_days(30));
    assert!(
        trace.len() > 10_000,
        "soak trace too small: {}",
        trace.len()
    );
    let disk = 8 * 1024;
    for alpha in [0.5, 1.0, 2.0, 4.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid");
        let replayer = Replayer::new(ReplayConfig::new(k, costs)); // checks on
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruCache::new(CacheConfig::new(disk, k, costs))),
            Box::new(XlruCache::new(CacheConfig::new(disk, k, costs))),
            Box::new(CafeCache::new(CafeConfig::new(disk, k, costs))),
            Box::new(PsychicCache::new(
                PsychicConfig::new(disk, k, costs),
                &trace.requests,
            )),
        ];
        let mut efficiencies = Vec::new();
        for p in &mut policies {
            let r = replayer.replay(&trace, p.as_mut());
            assert_eq!(r.overall.total_requests() as usize, trace.len());
            efficiencies.push((r.policy, r.efficiency()));
        }
        // Psychic dominates the online caches at every alpha.
        let by_name = |n: &str| {
            efficiencies
                .iter()
                .find(|(p, _)| *p == n)
                .map(|(_, e)| *e)
                .expect("policy ran")
        };
        assert!(
            by_name("psychic") >= by_name("cafe") - 0.02,
            "alpha={alpha}"
        );
        assert!(
            by_name("psychic") >= by_name("xlru") - 0.02,
            "alpha={alpha}"
        );
        if alpha >= 2.0 {
            assert!(
                by_name("cafe") > by_name("xlru"),
                "alpha={alpha}: cafe must win under ingress constraint"
            );
        }
    }
}
