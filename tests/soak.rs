//! Opt-in soak test: a heavier replay through every algorithm with all
//! invariant checks enabled. Excluded from the default run; execute with
//! `cargo test --test soak -- --ignored`.

use vcdn::cache::{
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig,
    XlruCache,
};
use vcdn::sim::{ReplayConfig, Replayer};
use vcdn::trace::{ServerProfile, TraceGenerator};
use vcdn::types::{ChunkSize, CostModel, DurationMs};

#[test]
#[ignore = "heavy: ~1 minute; run with --ignored"]
fn month_long_soak_with_invariant_checks() {
    let k = ChunkSize::DEFAULT;
    let profile = ServerProfile::europe().scaled(1.0 / 64.0);
    let trace = TraceGenerator::new(profile, 424242).generate(DurationMs::from_days(30));
    assert!(
        trace.len() > 10_000,
        "soak trace too small: {}",
        trace.len()
    );
    let disk = 8 * 1024;
    for alpha in [0.5, 1.0, 2.0, 4.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid");
        let replayer = Replayer::new(ReplayConfig::new(k, costs)); // checks on
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruCache::new(CacheConfig::new(disk, k, costs))),
            Box::new(XlruCache::new(CacheConfig::new(disk, k, costs))),
            Box::new(CafeCache::new(CafeConfig::new(disk, k, costs))),
            Box::new(PsychicCache::new(
                PsychicConfig::new(disk, k, costs),
                &trace.requests,
            )),
        ];
        let mut efficiencies = Vec::new();
        for p in &mut policies {
            let r = replayer.replay(&trace, p.as_mut());
            assert_eq!(r.overall.total_requests() as usize, trace.len());
            efficiencies.push((r.policy, r.efficiency()));
        }
        // Psychic dominates the online caches at every alpha.
        let by_name = |n: &str| {
            efficiencies
                .iter()
                .find(|(p, _)| *p == n)
                .map(|(_, e)| *e)
                .expect("policy ran")
        };
        assert!(
            by_name("psychic") >= by_name("cafe") - 0.02,
            "alpha={alpha}"
        );
        assert!(
            by_name("psychic") >= by_name("xlru") - 0.02,
            "alpha={alpha}"
        );
        if alpha >= 2.0 {
            assert!(
                by_name("cafe") > by_name("xlru"),
                "alpha={alpha}: cafe must win under ingress constraint"
            );
        }
    }
}
