//! Pins the committed telemetry sample (`results/telemetry_sample.jsonl`)
//! to the `vcdn-telemetry/1` contract: the file must parse, carry one
//! bundle per policy in figure order, keep its meta section counts honest,
//! and expose the heavy-hitter tables introduced with the top-K sketch.
//!
//! The sample is regenerated with (see `EXPERIMENTS.md`):
//!
//! ```sh
//! ./target/release/replay_observe --interval-mins 1440 --events 64 \
//!     --out results/telemetry_sample.jsonl
//! ```
//!
//! If this test fails after a deliberate workload or schema change, re-run
//! that command and re-validate with `obs_check` before committing.

use vcdn::obs::SCHEMA;
use vcdn::types::json::{self, Json};

/// The sample's standard workload: Europe profile, scale 1/16, 30 days,
/// seed 20140413 (see `EXPERIMENT_SEED`).
const REQUESTS: u64 = 181_607;

fn sample_text() -> String {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/telemetry_sample.jsonl"
    );
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn meta_u64(meta: &Json, key: &str) -> u64 {
    match meta.get(key) {
        Some(Json::Int(i)) => u64::try_from(*i).unwrap_or_else(|_| panic!("meta.{key} negative")),
        other => panic!("meta.{key} = {other:?}, expected integer"),
    }
}

/// One bundle: the meta line plus its typed line counts.
struct Bundle {
    meta: Json,
    metrics: usize,
    topk: Vec<Json>,
    windows: Vec<Json>,
    alerts: Vec<Json>,
    samples: usize,
    events: usize,
}

fn parse_sample() -> Vec<Bundle> {
    let mut bundles: Vec<Bundle> = Vec::new();
    for (i, line) in sample_text().lines().enumerate() {
        let j = json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        let kind = j.get("type").and_then(Json::as_str).map(str::to_string);
        match kind.as_deref() {
            Some("meta") => bundles.push(Bundle {
                meta: j,
                metrics: 0,
                topk: Vec::new(),
                windows: Vec::new(),
                alerts: Vec::new(),
                samples: 0,
                events: 0,
            }),
            Some(kind) => {
                let b = bundles.last_mut().unwrap_or_else(|| {
                    panic!("line {}: {kind} record before any meta line", i + 1)
                });
                match kind {
                    "metric" => b.metrics += 1,
                    "topk" => b.topk.push(j),
                    "window" => b.windows.push(j),
                    "alert" => b.alerts.push(j),
                    "sample" => b.samples += 1,
                    "event" => b.events += 1,
                    other => panic!("line {}: unknown record type {other:?}", i + 1),
                }
            }
            None => panic!("line {}: missing type field", i + 1),
        }
    }
    bundles
}

#[test]
fn sample_has_one_bundle_per_policy_in_figure_order() {
    let bundles = parse_sample();
    let policies: Vec<&str> = bundles
        .iter()
        .map(|b| b.meta.get("policy").and_then(Json::as_str).expect("policy"))
        .collect();
    assert_eq!(policies, ["lru", "xlru", "cafe", "psychic"]);
    for b in &bundles {
        assert_eq!(b.meta.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(meta_u64(&b.meta, "requests"), REQUESTS);
    }
}

#[test]
fn sample_meta_counts_match_the_lines() {
    for b in parse_sample() {
        let label = b.meta.get("policy").and_then(Json::as_str).unwrap_or("?");
        assert_eq!(meta_u64(&b.meta, "metrics"), b.metrics as u64, "{label}");
        assert_eq!(meta_u64(&b.meta, "topk"), b.topk.len() as u64, "{label}");
        assert_eq!(
            meta_u64(&b.meta, "windows"),
            b.windows.len() as u64,
            "{label}"
        );
        assert_eq!(
            meta_u64(&b.meta, "alerts"),
            b.alerts.len() as u64,
            "{label}"
        );
        assert_eq!(meta_u64(&b.meta, "samples"), b.samples as u64, "{label}");
        assert_eq!(meta_u64(&b.meta, "events"), b.events as u64, "{label}");
        // Daily samples over 30 days: t = 0d .. 30d inclusive.
        assert_eq!(b.samples, 31, "{label}");
        assert_eq!(b.events, 64, "{label}");
        // Daily health windows: days 0..29 plus the flushed tail window.
        assert_eq!(b.windows.len(), 31, "{label}");
        assert_eq!(meta_u64(&b.meta, "windows_dropped"), 0, "{label}");
        assert_eq!(
            meta_u64(&b.meta, "events_dropped"),
            REQUESTS - b.events as u64,
            "{label}"
        );
    }
}

#[test]
fn sample_windows_are_contiguous_and_flag_the_warmup_churn() {
    for b in parse_sample() {
        let label = b.meta.get("policy").and_then(Json::as_str).unwrap_or("?");
        for (i, w) in b.windows.iter().enumerate() {
            assert_eq!(meta_u64(w, "index"), i as u64, "{label}");
        }
        // Day 0 fills the empty disk, so every policy's warm-up window
        // trips the occupancy-churn threshold — the one expected alert
        // in a healthy 30-day replay.
        assert!(
            b.alerts.iter().any(|a| {
                a.get("rule").and_then(Json::as_str) == Some("occupancy-churn")
                    && meta_u64(a, "window") == 0
            }),
            "{label}: no warm-up churn alert at window 0"
        );
    }
}

#[test]
fn sample_heavy_hitter_tables_are_full_sorted_and_bounded() {
    for b in parse_sample() {
        let label = b.meta.get("policy").and_then(Json::as_str).unwrap_or("?");
        let k = meta_u64(&b.meta, "topk_k");
        assert_eq!(k, 8, "{label}");
        // The catalog has far more than k videos, so the sketch is full.
        assert_eq!(b.topk.len() as u64, k, "{label}");
        let mut prev: Option<(u64, u64)> = None; // (count, video)
        for (i, t) in b.topk.iter().enumerate() {
            assert_eq!(meta_u64(t, "rank"), i as u64 + 1, "{label}");
            let count = meta_u64(t, "count");
            let err = meta_u64(t, "err");
            let video = meta_u64(t, "video");
            assert!(err < count, "{label} rank {}: err {err} >= {count}", i + 1);
            assert!(count <= REQUESTS, "{label}: count exceeds trace length");
            if let Some((pc, pv)) = prev {
                assert!(
                    count < pc || (count == pc && video > pv),
                    "{label} rank {}: (count desc, video asc) order broken",
                    i + 1
                );
            }
            prev = Some((count, video));
        }
    }
}
