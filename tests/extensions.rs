//! Integration tests for the §10 extension features, driven end-to-end
//! through the replay engine on generated workloads.

use vcdn::cache::{
    AlphaControlConfig, CacheConfig, CachePolicy, CafeCache, CafeConfig, ControlledCafeCache,
    PrefetchConfig, ProactiveCafeCache, XlruCache,
};
use vcdn::sim::{replay_hierarchy, ReplayConfig, Replayer};
use vcdn::trace::{ServerProfile, Trace, TraceGenerator};
use vcdn::types::{ChunkSize, CostModel, DurationMs};

const K: ChunkSize = ChunkSize::DEFAULT;

fn trace(days: u64, seed: u64) -> Trace {
    TraceGenerator::new(ServerProfile::tiny_test(), seed).generate(DurationMs::from_days(days))
}

#[test]
fn control_loop_steers_ingress_between_extremes() {
    let t = trace(6, 51);
    let base = CostModel::from_alpha(2.0).expect("valid");
    let replayer = Replayer::new(ReplayConfig::new(K, base));
    let run = |target: f64| -> (f64, f64) {
        let inner = CafeCache::new(CafeConfig::new(256, K, base));
        let mut ctl = ControlledCafeCache::try_new(
            inner,
            AlphaControlConfig {
                target_ingress_pct: target,
                alpha_band: (0.5, 8.0),
                window: DurationMs::from_hours(1),
                gain: 0.25,
            },
        )
        .expect("valid control config");
        let r = replayer.replay(&t, &mut ctl);
        (r.ingress_pct(), ctl.current_alpha())
    };
    let (low_target_ing, low_alpha) = run(1.0);
    let (high_target_ing, high_alpha) = run(60.0);
    // Chasing a tiny ingress target must yield less ingress (and a higher
    // alpha) than chasing a huge one.
    assert!(
        low_target_ing < high_target_ing,
        "control loop had no effect: {low_target_ing} vs {high_target_ing}"
    );
    assert!(low_alpha > high_alpha);
}

#[test]
fn controlled_cache_matches_fixed_cache_when_band_is_degenerate() {
    // A [2,2] band cannot move alpha: results must equal plain Cafe.
    let t = trace(3, 52);
    let base = CostModel::from_alpha(2.0).expect("valid");
    let replayer = Replayer::new(ReplayConfig::new(K, base));
    let mut fixed = CafeCache::new(CafeConfig::new(128, K, base));
    let r_fixed = replayer.replay(&t, &mut fixed);
    let inner = CafeCache::new(CafeConfig::new(128, K, base));
    let mut ctl = ControlledCafeCache::try_new(
        inner,
        AlphaControlConfig {
            target_ingress_pct: 5.0,
            alpha_band: (2.0, 2.0),
            window: DurationMs::from_hours(1),
            gain: 0.25,
        },
    )
    .expect("valid control config");
    let r_ctl = replayer.replay(&t, &mut ctl);
    assert_eq!(r_fixed.overall, r_ctl.overall);
}

#[test]
fn prefetcher_only_acts_off_peak() {
    let t = trace(4, 53);
    let costs = CostModel::from_alpha(2.0).expect("valid");
    let replayer = Replayer::new(ReplayConfig::new(K, costs));
    // A window that never matches any hour: no prefetching at all.
    let never = PrefetchConfig {
        offpeak_start_hour: 3.0,
        offpeak_end_hour: 3.0,
        ..PrefetchConfig::early_morning()
    };
    let inner = CafeCache::new(CafeConfig::new(128, K, costs));
    let mut idle = ProactiveCafeCache::try_new(inner, never).expect("valid config");
    let r_idle = replayer.replay(&t, &mut idle);
    assert_eq!(idle.prefetched_chunks(), 0);
    // A plain cache must behave identically.
    let mut plain = CafeCache::new(CafeConfig::new(128, K, costs));
    let r_plain = replayer.replay(&t, &mut plain);
    assert_eq!(r_idle.overall, r_plain.overall);
}

#[test]
fn prefetcher_brings_in_chunks_when_always_on() {
    let t = trace(4, 54);
    let costs = CostModel::from_alpha(4.0).expect("valid");
    let all_day = PrefetchConfig {
        offpeak_start_hour: 0.0,
        offpeak_end_hour: 23.99,
        budget_chunks_per_tick: 32,
        tick: DurationMs::from_secs(600),
    };
    let inner = CafeCache::new(CafeConfig::new(128, K, costs));
    let mut pro = ProactiveCafeCache::try_new(inner, all_day).expect("valid config");
    let replayer = Replayer::new(ReplayConfig::new(K, costs));
    let _ = replayer.replay(&t, &mut pro);
    assert!(
        pro.prefetched_chunks() > 0,
        "an always-on prefetcher under constrained alpha should act"
    );
    assert!(pro.disk_used_chunks() <= pro.disk_capacity_chunks());
}

#[test]
fn hierarchy_edge_alpha_shifts_fill_to_parent() {
    let t = trace(6, 55);
    let parent_costs = CostModel::balanced();
    let run = |alpha: f64| -> (u64, u64) {
        let edge_costs = CostModel::from_alpha(alpha).expect("valid");
        let mut edge = CafeCache::new(CafeConfig::new(128, K, edge_costs));
        let mut parent = XlruCache::new(CacheConfig::new(512, K, parent_costs));
        let r = replay_hierarchy(&t, &mut edge, &mut parent);
        (r.edge.fill_bytes, r.parent.fill_bytes)
    };
    let (edge_lo, parent_lo) = run(1.0);
    let (edge_hi, parent_hi) = run(4.0);
    assert!(
        edge_hi < edge_lo,
        "edge fill should shrink with alpha: {edge_hi} vs {edge_lo}"
    );
    assert!(
        parent_hi > parent_lo,
        "parent should absorb the shifted fills: {parent_hi} vs {parent_lo}"
    );
}

#[test]
fn hierarchy_conservation_of_bytes() {
    let t = trace(3, 56);
    let costs = CostModel::from_alpha(2.0).expect("valid");
    let mut edge = CafeCache::new(CafeConfig::new(64, K, costs));
    let mut parent = CafeCache::new(CafeConfig::new(256, K, CostModel::balanced()));
    let r = replay_hierarchy(&t, &mut edge, &mut parent);
    let requested: u64 = t.requests.iter().map(|q| q.chunk_len(K) * K.bytes()).sum();
    // Edge accounts every requested byte; parent re-accounts redirects.
    assert_eq!(r.edge.requested_bytes(), requested);
    assert_eq!(r.parent.requested_bytes(), r.edge.redirect_bytes);
    assert_eq!(r.origin_bytes, r.parent.redirect_bytes);
}
