//! Integration tests for the Optimal cache's LP bound against real replay
//! costs: the bound must upper-bound the efficiency of every schedule an
//! online (or offline-greedy) cache actually achieves.

use vcdn::cache::{
    lp_bound_paper, lp_bound_reduced, CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache,
    PsychicCache, PsychicConfig, XlruCache,
};
use vcdn::trace::{downsample, DownsampleConfig, ServerProfile, Trace, TraceGenerator};
use vcdn::types::{ChunkSize, CostModel, Decision, DurationMs, Request, Timestamp};

fn k4() -> ChunkSize {
    ChunkSize::new(4 * 1024 * 1024).expect("non-zero")
}

/// A small down-sampled trace in the style of the paper's §9.1.
fn small_trace(max_requests: usize) -> Trace {
    let full =
        TraceGenerator::new(ServerProfile::tiny_test(), 77).generate(DurationMs::from_days(2));
    let cfg = DownsampleConfig {
        files: 30,
        ..DownsampleConfig::paper_default(Timestamp::EPOCH)
    };
    let mut t = downsample(&full, &cfg);
    t.requests.truncate(max_requests);
    t
}

/// Replays a policy and accounts its cost in the LP's chunk units with the
/// paper's half-cost-per-transition convention *conservatively replaced*
/// by full fill costs — so `lp_cost <= replay_cost` must hold a fortiori.
fn replay_cost(policy: &mut dyn CachePolicy, requests: &[Request], cfg: &CacheConfig) -> f64 {
    let mut cost = 0.0;
    for r in requests {
        match policy.handle_request(r) {
            Decision::Serve(o) => cost += o.filled_chunks as f64 * cfg.costs.c_f(),
            Decision::Redirect => {
                cost += r.chunk_len(cfg.chunk_size) as f64 * cfg.costs.c_r();
            }
        }
    }
    cost
}

#[test]
fn lp_bound_below_every_cache_cost() {
    let trace = small_trace(60);
    let max_req = trace
        .requests
        .iter()
        .map(|r| r.chunk_len(k4()))
        .max()
        .unwrap_or(1);
    for alpha in [0.5, 1.0, 2.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let cfg = CacheConfig::new((2 * max_req).max(8), k4(), costs);
        let bound = lp_bound_reduced(&trace.requests, &cfg).expect("LP solves");
        let mut policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruCache::new(cfg)),
            Box::new(XlruCache::new(cfg)),
            Box::new(CafeCache::new(CafeConfig {
                cache: cfg,
                ..CafeConfig::new(cfg.disk_chunks, k4(), costs)
            })),
            Box::new(PsychicCache::new(
                PsychicConfig::new(cfg.disk_chunks, k4(), costs),
                &trace.requests,
            )),
        ];
        for p in &mut policies {
            let cost = replay_cost(p.as_mut(), &trace.requests, &cfg);
            assert!(
                bound.lp_cost <= cost + 1e-6,
                "alpha={alpha} {}: LP {} > achieved {cost}",
                p.name(),
                bound.lp_cost
            );
        }
    }
}

#[test]
fn formulations_agree_on_generated_traces() {
    for seed in [1u64, 2, 3] {
        let full = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(12));
        let cfg_ds = DownsampleConfig {
            files: 10,
            size_cap_bytes: 8 * 1024 * 1024,
            from: Timestamp::EPOCH,
            to: Timestamp(DurationMs::from_hours(12).as_millis()),
        };
        let mut t = downsample(&full, &cfg_ds);
        t.requests.truncate(25);
        for alpha in [1.0, 2.0] {
            let costs = CostModel::from_alpha(alpha).expect("valid alpha");
            let cfg = CacheConfig::new(4, k4(), costs);
            let paper = lp_bound_paper(&t.requests, &cfg).expect("paper LP");
            let reduced = lp_bound_reduced(&t.requests, &cfg).expect("reduced LP");
            assert!(
                (paper.lp_cost - reduced.lp_cost).abs() < 1e-5,
                "seed {seed} alpha {alpha}: {} vs {}",
                paper.lp_cost,
                reduced.lp_cost
            );
        }
    }
}

#[test]
fn bound_monotone_in_disk_size() {
    // More disk can only lower the optimal cost.
    let trace = small_trace(50);
    let costs = CostModel::balanced();
    let mut last = f64::INFINITY;
    for disk in [4u64, 8, 16, 64] {
        let cfg = CacheConfig::new(disk, k4(), costs);
        let bound = lp_bound_reduced(&trace.requests, &cfg).expect("LP solves");
        assert!(
            bound.lp_cost <= last + 1e-7,
            "cost must not grow with disk: {} after {last}",
            bound.lp_cost
        );
        last = bound.lp_cost;
    }
}

#[test]
fn bound_matches_closed_form_for_one_shot_traces() {
    // A trace of 20 distinct one-shot chunks, disk 4. Under the paper's
    // half-cost-per-transition objective, each chunk independently costs
    // the cheapest of: redirect (C_R), fill + later evict (C_F), or — for
    // up to D_c chunks that can stay until the end of the horizon —
    // fill and keep (C_F/2).
    let requests: Vec<Request> = (0..20)
        .map(|i| {
            Request::new(
                vcdn::types::VideoId(i),
                vcdn::types::ByteRange::new(0, 4 * 1024 * 1024 - 1).expect("valid range"),
                Timestamp(i * 1_000),
            )
        })
        .collect();
    for alpha in [1.0, 2.0, 4.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let cfg = CacheConfig::new(4, k4(), costs);
        let bound = lp_bound_reduced(&requests, &cfg).expect("LP solves");
        let (c_f, c_r) = (costs.c_f(), costs.c_r());
        let expected = 16.0 * c_f.min(c_r) + 4.0 * (c_f / 2.0).min(c_r);
        assert!(
            (bound.lp_cost - expected).abs() < 1e-5,
            "alpha={alpha}: got {} want {expected}",
            bound.lp_cost
        );
    }
}
