//! End-to-end integration tests: trace generation → replay → metrics,
//! across every cache algorithm.

use vcdn::cache::{
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig,
    XlruCache,
};
use vcdn::sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn::trace::{ServerProfile, Trace, TraceGenerator};
use vcdn::types::{ChunkSize, CostModel, DurationMs, TrafficCounter};

const K: ChunkSize = ChunkSize::DEFAULT;
const DISK: u64 = 256;

fn trace(days: u64, seed: u64) -> Trace {
    TraceGenerator::new(ServerProfile::tiny_test(), seed).generate(DurationMs::from_days(days))
}

fn run_all(trace: &Trace, alpha: f64) -> Vec<ReplayReport> {
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let replayer = Replayer::new(ReplayConfig::new(K, costs));
    let mut caches: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(LruCache::new(CacheConfig::new(DISK, K, costs))),
        Box::new(XlruCache::new(CacheConfig::new(DISK, K, costs))),
        Box::new(CafeCache::new(CafeConfig::new(DISK, K, costs))),
        Box::new(PsychicCache::new(
            PsychicConfig::new(DISK, K, costs),
            &trace.requests,
        )),
    ];
    caches
        .iter_mut()
        .map(|c| replayer.replay(trace, c.as_mut()))
        .collect()
}

#[test]
fn every_algorithm_accounts_every_byte() {
    let t = trace(2, 1);
    let requested: u64 = t.requests.iter().map(|r| r.chunk_len(K) * K.bytes()).sum();
    for report in run_all(&t, 2.0) {
        assert_eq!(
            report.overall.requested_bytes(),
            requested,
            "{} lost bytes",
            report.policy
        );
        assert_eq!(report.overall.total_requests() as usize, t.len());
        // Efficiency within the metric's documented range.
        let e = report.efficiency();
        assert!((-1.0..=1.0).contains(&e), "{}: eff {e}", report.policy);
    }
}

#[test]
fn lru_never_redirects_and_pays_maximal_ingress() {
    let t = trace(2, 2);
    let reports = run_all(&t, 1.0);
    let lru = &reports[0];
    assert_eq!(lru.overall.redirected_requests, 0);
    assert_eq!(lru.overall.redirect_bytes, 0);
    // Every other algorithm ingresses at most as much as fill-everything.
    for r in &reports[1..] {
        assert!(
            r.overall.fill_bytes <= lru.overall.fill_bytes,
            "{} ingressed more than LRU",
            r.policy
        );
    }
}

#[test]
fn offline_knowledge_beats_online_when_constrained() {
    // At alpha = 2 (the paper's constrained setting), the future-aware
    // Psychic must beat both online algorithms, and Cafe must beat xLRU.
    let t = trace(6, 3);
    let reports = run_all(&t, 2.0);
    let (xlru, cafe, psychic) = (
        reports[1].efficiency(),
        reports[2].efficiency(),
        reports[3].efficiency(),
    );
    assert!(
        psychic > cafe - 0.01,
        "psychic {psychic} should be >= cafe {cafe}"
    );
    assert!(
        cafe > xlru,
        "cafe {cafe} should beat xlru {xlru} at alpha=2"
    );
}

#[test]
fn alpha_knob_shrinks_cafe_ingress_monotonically() {
    let t = trace(6, 4);
    let mut last_ingress = f64::INFINITY;
    for alpha in [0.5, 1.0, 2.0, 4.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let mut cafe = CafeCache::new(CafeConfig::new(DISK, K, costs));
        let r = Replayer::new(ReplayConfig::new(K, costs)).replay(&t, &mut cafe);
        let ing = r.overall.fill_bytes as f64;
        assert!(
            ing <= last_ingress * 1.02,
            "cafe ingress must not grow with alpha: {ing} after {last_ingress}"
        );
        last_ingress = ing;
    }
}

#[test]
fn pipeline_is_deterministic() {
    let t1 = trace(2, 5);
    let t2 = trace(2, 5);
    assert_eq!(t1, t2);
    let r1 = run_all(&t1, 2.0);
    let r2 = run_all(&t2, 2.0);
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.overall, b.overall);
        assert_eq!(a.steady, b.steady);
    }
}

#[test]
fn capacity_respected_throughout_by_all() {
    // check_invariants in ReplayConfig asserts this per request; run a
    // churny workload to exercise it.
    let t = trace(3, 6);
    for report in run_all(&t, 0.5) {
        // Reaching here means no invariant assertion fired.
        assert!(report.overall.total_requests() > 0);
    }
}

#[test]
fn windows_partition_overall_traffic() {
    let t = trace(2, 7);
    for report in run_all(&t, 2.0) {
        let sum = report
            .windows
            .iter()
            .fold(TrafficCounter::default(), |acc, w| acc + w.traffic);
        assert_eq!(sum, report.overall, "{} window leak", report.policy);
    }
}

#[test]
fn steady_state_is_subset_of_overall() {
    let t = trace(2, 8);
    for report in run_all(&t, 1.0) {
        assert!(report.steady.requested_bytes() <= report.overall.requested_bytes());
        assert!(report.steady.total_requests() <= report.overall.total_requests());
        assert!(report.steady.total_requests() > 0, "steady window empty");
    }
}

#[test]
fn higher_alpha_never_increases_reported_xlru_ingress() {
    // xLRU's Eq. 5 admits strictly fewer videos as alpha grows.
    let t = trace(4, 9);
    let mut last = u64::MAX;
    for alpha in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let mut x = XlruCache::new(CacheConfig::new(DISK, K, costs));
        let r = Replayer::new(ReplayConfig::new(K, costs)).replay(&t, &mut x);
        assert!(
            r.overall.fill_bytes <= last,
            "xlru fill grew with alpha: {} > {last}",
            r.overall.fill_bytes
        );
        last = r.overall.fill_bytes;
    }
}

#[test]
fn trace_io_roundtrip_preserves_replay_results() {
    let t = trace(1, 10);
    let dir = std::env::temp_dir().join("vcdn-integration");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("roundtrip.jsonl");
    t.save_jsonl(&path).expect("save");
    let loaded = Trace::load_jsonl(&path).expect("load");
    assert_eq!(loaded, t);
    let a = run_all(&t, 2.0);
    let b = run_all(&loaded, 2.0);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.overall, y.overall);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn psychic_first_half_is_as_good_as_second() {
    // §9.1: "Psychic and Optimal cache ... do not require any history, and
    // their first-hour outcome is as good as the rest" — unlike the
    // history-based caches, Psychic's efficiency must not improve much
    // from the first half of the replay to the second.
    let t = trace(6, 11);
    let costs = CostModel::from_alpha(2.0).expect("valid");
    let mut psychic = PsychicCache::new(PsychicConfig::new(DISK, K, costs), &t.requests);
    let report = Replayer::new(ReplayConfig::new(K, costs)).replay(&t, &mut psychic);
    let overall = report.overall.efficiency(costs);
    let steady = report.efficiency();
    // Overall includes the "warm-up" half; for Psychic the gap stays
    // small because it needs no request history.
    assert!(
        (steady - overall).abs() < 0.08,
        "psychic warm-up gap too large: overall {overall}, steady {steady}"
    );
}

#[test]
fn cafe_popularity_state_stays_bounded_under_churn() {
    // The cleanup sweep must keep Cafe's tracker from growing with the
    // total number of distinct chunks ever seen.
    let t = trace(8, 12);
    let costs = CostModel::from_alpha(2.0).expect("valid");
    let mut cafe = CafeCache::new(CafeConfig::new(64, K, costs));
    for r in &t.requests {
        cafe.handle_request(r);
    }
    let unique = vcdn::trace::stats::chunk_hit_counts(&t, K).len();
    assert!(
        cafe.tracked_chunks() < unique,
        "tracker ({}) should be smaller than all chunks ever seen ({unique})",
        cafe.tracked_chunks()
    );
}
