//! Golden-baseline checking shared by the tracked-perf binaries.
//!
//! `perf_baseline` (PR 2) and `contention` (PR 6) both write a JSON
//! document mixing *deterministic* replay metrics (byte counters,
//! efficiencies — identical on every machine) with *timing* fields
//! (req/s, wall times — different on every machine). Their `--check`
//! flag re-verifies the deterministic fields against a previously
//! written document; this module is that comparison, factored out so
//! both binaries — and any future tracked bench — diff goldens the same
//! way.
//!
//! The document shape is one top-level object with scalar run
//! parameters plus a `"policies"` array of per-policy rows. The
//! comparison covers every field present on *either* side (so a golden
//! field the run no longer emits, or a new field absent from the
//! golden, also shows up), excluding the caller's timing-field list at
//! both levels.

use vcdn_types::json::Json;

/// Appends unified-diff lines for one field: `- path = want` for the
/// pinned value, `+ path = got` for the measured one. A field present on
/// only one side yields only that side's line.
fn diff_field(path: &str, got: Option<&Json>, want: Option<&Json>, out: &mut Vec<String>) {
    if got == want {
        return;
    }
    if let Some(w) = want {
        out.push(format!("- {path} = {w}"));
    }
    if let Some(g) = got {
        out.push(format!("+ {path} = {g}"));
    }
}

/// The keys of an object pair, in want-order followed by got-only keys,
/// with `skip` keys removed.
fn merged_keys<'a>(got: Option<&'a Json>, want: Option<&'a Json>, skip: &[&str]) -> Vec<&'a str> {
    let keys_of = |j: Option<&'a Json>| match j {
        Some(Json::Obj(fields)) => fields.iter().map(|(k, _)| k.as_str()).collect(),
        _ => Vec::new(),
    };
    let mut keys: Vec<&str> = keys_of(want);
    for k in keys_of(got) {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    keys.retain(|k| !skip.contains(k));
    keys
}

/// Compares every deterministic field of `got` against `want`, ignoring
/// the machine-dependent `timing` fields (at the top level and inside
/// each policy row). Returns a unified field-by-field diff (`-` = pinned
/// golden, `+` = this run), empty on a clean match.
pub fn check_against(got: &Json, want: &Json, timing: &[&str]) -> Vec<String> {
    let mut diff = Vec::new();
    let mut top_skip: Vec<&str> = vec!["policies"];
    top_skip.extend_from_slice(timing);
    for key in merged_keys(Some(got), Some(want), &top_skip) {
        diff_field(key, got.get(key), want.get(key), &mut diff);
    }
    let rows = |j: &Json| -> Vec<Json> {
        match j.get("policies") {
            Some(Json::Arr(a)) => a.clone(),
            _ => Vec::new(),
        }
    };
    let (g_rows, w_rows) = (rows(got), rows(want));
    if g_rows.len() != w_rows.len() {
        diff.push(format!("- policies: {} rows", w_rows.len()));
        diff.push(format!("+ policies: {} rows", g_rows.len()));
    }
    for i in 0..g_rows.len().max(w_rows.len()) {
        let (g, w) = (g_rows.get(i), w_rows.get(i));
        let name = g
            .or(w)
            .and_then(|r| r.get("policy"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        for key in merged_keys(g, w, timing) {
            diff_field(
                &format!("{name}.{key}"),
                g.and_then(|r| r.get(key)),
                w.and_then(|r| r.get(key)),
                &mut diff,
            );
        }
    }
    diff
}

/// The `--check` flow both binaries share: parse the golden at
/// `golden_path`, diff `json` against it with [`check_against`], print
/// the unified diff on stderr and panic on any mismatch. `tag` prefixes
/// the log lines (`[perf_baseline]`, `[contention]`).
pub fn enforce_golden(tag: &str, json: &Json, golden_path: &str, timing: &[&str]) {
    let want_text = std::fs::read_to_string(golden_path)
        .unwrap_or_else(|e| panic!("cannot read golden {golden_path}: {e}"));
    let want = vcdn_types::json::parse(&want_text)
        .unwrap_or_else(|e| panic!("cannot parse golden {golden_path}: {e}"));
    let diff = check_against(json, &want, timing);
    if !diff.is_empty() {
        eprintln!("[{tag}] MISMATCH — unified diff of deterministic fields:");
        eprintln!("--- {golden_path} (pinned)");
        eprintln!("+++ this run");
        for line in &diff {
            eprintln!("{line}");
        }
        panic!(
            "deterministic metrics diverge from pinned goldens in {golden_path} ({} diff lines)",
            diff.len()
        );
    }
    eprintln!("[{tag}] metrics match pinned goldens in {golden_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIMING: [&str; 2] = ["requests_per_sec", "replay_wall_ms"];

    fn golden() -> Json {
        vcdn_types::json::parse(
            r#"{"bench":"perf_baseline","seed":1,"scale":0.0625,"days":30,"alpha":2.0,
                "requests":100,"policies":[
                {"policy":"lru","requests_per_sec":5.0,"steady_hit_bytes":10},
                {"policy":"cafe","requests_per_sec":9.0,"steady_hit_bytes":20}]}"#,
        )
        .expect("valid golden")
    }

    #[test]
    fn identical_documents_diff_empty() {
        assert!(check_against(&golden(), &golden(), &TIMING).is_empty());
    }

    #[test]
    fn timing_fields_are_ignored() {
        let text = golden().to_string().replace("5.0", "123.0");
        let got = vcdn_types::json::parse(&text).expect("valid");
        assert!(check_against(&got, &golden(), &TIMING).is_empty());
    }

    #[test]
    fn top_level_timing_fields_are_ignored_too() {
        let text = golden()
            .to_string()
            .replace("\"requests\":100", "\"requests\":100,\"threads\":[1,4]");
        let got = vcdn_types::json::parse(&text).expect("valid");
        assert!(!check_against(&got, &golden(), &TIMING).is_empty());
        assert!(check_against(&got, &golden(), &["threads"]).is_empty());
    }

    #[test]
    fn changed_field_yields_minus_plus_pair() {
        let text = golden()
            .to_string()
            .replace("\"steady_hit_bytes\":20", "\"steady_hit_bytes\":21");
        let got = vcdn_types::json::parse(&text).expect("valid");
        let diff = check_against(&got, &golden(), &TIMING);
        assert_eq!(
            diff,
            vec![
                "- cafe.steady_hit_bytes = 20".to_string(),
                "+ cafe.steady_hit_bytes = 21".to_string(),
            ]
        );
    }

    #[test]
    fn got_only_field_shows_as_plus_line() {
        let text = golden().to_string().replace(
            "\"steady_hit_bytes\":20",
            "\"steady_hit_bytes\":20,\"new_metric\":7",
        );
        let got = vcdn_types::json::parse(&text).expect("valid");
        let diff = check_against(&got, &golden(), &TIMING);
        assert_eq!(diff, vec!["+ cafe.new_metric = 7".to_string()]);
    }

    #[test]
    fn missing_row_is_reported_with_row_counts() {
        let want = golden();
        let got_text = want.to_string().replace(
            r#",{"policy":"cafe","requests_per_sec":9.0,"steady_hit_bytes":20}"#,
            "",
        );
        let got = vcdn_types::json::parse(&got_text).expect("valid");
        let diff = check_against(&got, &want, &TIMING);
        assert!(diff.contains(&"- policies: 2 rows".to_string()), "{diff:?}");
        assert!(diff.contains(&"+ policies: 1 rows".to_string()), "{diff:?}");
        // The vanished row's pinned fields appear as `-` lines.
        assert!(diff.iter().any(|l| l.starts_with("- cafe.")), "{diff:?}");
    }

    #[test]
    fn per_shard_arrays_compare_elementwise_as_values() {
        let a = vcdn_types::json::parse(
            r#"{"bench":"contention","policies":[{"policy":"cafe","shard_hit_bytes":[1,2,3]}]}"#,
        )
        .expect("valid");
        let b_text = a.to_string().replace("[1,2,3]", "[1,2,4]");
        let b = vcdn_types::json::parse(&b_text).expect("valid");
        assert!(check_against(&a, &a, &[]).is_empty());
        let diff = check_against(&b, &a, &[]);
        assert_eq!(
            diff,
            vec![
                "- cafe.shard_hit_bytes = [1,2,3]".to_string(),
                "+ cafe.shard_hit_bytes = [1,2,4]".to_string(),
            ]
        );
    }
}
