//! Watchdog timeline viewer and CI gate for the flash-crowd scenario.
//!
//! Runs the canonical flash-crowd run ([`vcdn_bench::scenario`]) on the
//! configured worker count and renders the health-window timeline as an
//! ASCII sparkline per metric — interval efficiency, redirect rate,
//! fill and eviction churn, queue-gap p99 — followed by the watchdog
//! alert log. Everything rendered is a pure function of the trace, so
//! the output is byte-identical for any worker count.
//!
//! Exit status is the CI contract: with `--golden <path>` the rendered
//! alert log must match the pinned golden byte-for-byte (the expected
//! incident signature); without it, any critical alert fails the run —
//! pointing this binary at a healthy workload turns it into an
//! efficiency-regression gate.
//!
//! Flags: `--workers <n>` (default `VCDN_WORKERS` / available cores),
//! `--golden <path>` compare the alert log against a pinned golden,
//! `--write-golden <path>` write the rendered alert log (for pinning),
//! `--out <path>` write the full telemetry bundle JSONL.

use std::process::ExitCode;

use vcdn_bench::scenario::run_flash_crowd;
use vcdn_bench::{arg_flag, grid_workers};
use vcdn_obs::{Severity, WindowRecord};

/// Ten-step ASCII intensity ramp for the sparklines.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `values` as one sparkline row, linearly scaled into the ramp
/// between the series' own min and max (a flat series renders low).
fn sparkline(values: &[f64]) -> String {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            let frac = if hi > lo { (v - lo) / (hi - lo) } else { 0.0 };
            let i = (frac * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[i.min(RAMP.len() - 1)] as char
        })
        .collect()
}

/// One labelled sparkline row with its min/max legend.
fn row(label: &str, values: &[f64]) -> String {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    format!("{label:<14} |{}| {lo:.3} .. {hi:.3}", sparkline(values))
}

/// The full timeline block: one sparkline per window metric plus an
/// alert marker row (`!` critical, `w` warning).
fn render_timeline(windows: &[WindowRecord], alerts: &[vcdn_obs::AlertEvent]) -> String {
    let mut out = String::new();
    let pull = |f: &dyn Fn(&WindowRecord) -> f64| -> Vec<f64> { windows.iter().map(f).collect() };
    out.push_str(&row("efficiency", &pull(&|w| w.efficiency)));
    out.push('\n');
    out.push_str(&row("redirect_rate", &pull(&|w| w.redirect_rate)));
    out.push('\n');
    out.push_str(&row("fill_chunks", &pull(&|w| w.filled_chunks as f64)));
    out.push('\n');
    out.push_str(&row("evict_chunks", &pull(&|w| w.evicted_chunks as f64)));
    out.push('\n');
    out.push_str(&row("queue_gap_p99", &pull(&|w| w.queue_gap_p99 as f64)));
    out.push('\n');
    let mut markers = vec![b' '; windows.len()];
    let base = windows.first().map_or(0, |w| w.index);
    for a in alerts {
        if let Some(slot) = a.window.checked_sub(base).map(|i| i as usize) {
            if let Some(m) = markers.get_mut(slot) {
                *m = match a.severity {
                    Severity::Critical => b'!',
                    Severity::Warning if *m != b'!' => b'w',
                    Severity::Warning => *m,
                };
            }
        }
    }
    out.push_str(&format!(
        "{:<14} |{}| windows {base}..{}",
        "alerts",
        String::from_utf8(markers).expect("ascii markers"),
        base + windows.len().saturating_sub(1) as u64,
    ));
    out.push('\n');
    out
}

fn main() -> ExitCode {
    let workers: usize = arg_flag("workers").unwrap_or_else(grid_workers);
    eprintln!("[obs_watch] flash-crowd scenario on {workers} worker(s)");
    let run = run_flash_crowd(workers);

    println!(
        "flash-crowd: {} requests, {} windows ({} ms each), {} alert(s), efficiency {:.4}",
        run.report.total_requests(),
        run.bundle.windows.len(),
        run.report.window_ms,
        run.bundle.alerts.len(),
        run.report.efficiency(),
    );
    print!(
        "{}",
        render_timeline(&run.bundle.windows, &run.bundle.alerts)
    );
    println!("alert log:");
    print!("{}", run.alert_log);

    if let Some(out) = arg_flag::<String>("out") {
        if let Some(dir) = std::path::Path::new(&out).parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir:?}: {e}"));
        }
        let jsonl = run.bundle.to_jsonl();
        std::fs::write(&out, &jsonl).unwrap_or_else(|e| panic!("write {out}: {e}"));
        eprintln!("[obs_watch] wrote {out}: {} lines", jsonl.lines().count());
    }
    if let Some(path) = arg_flag::<String>("write-golden") {
        std::fs::write(&path, &run.alert_log).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[obs_watch] pinned alert log to {path}");
    }

    if let Some(golden_path) = arg_flag::<String>("golden") {
        let golden = match std::fs::read_to_string(&golden_path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("[obs_watch] cannot read golden {golden_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if run.alert_log == golden {
            println!("[obs_watch] alert log matches golden {golden_path}");
            ExitCode::SUCCESS
        } else {
            eprintln!("[obs_watch] ALERT LOG DRIFTED from {golden_path} — expected:\n{golden}");
            ExitCode::FAILURE
        }
    } else if run
        .bundle
        .alerts
        .iter()
        .any(|a| a.severity == Severity::Critical)
    {
        eprintln!("[obs_watch] critical alert(s) fired — failing (regression gate)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
