//! Telemetry report and diff tool for `vcdn-telemetry/1` bundles.
//!
//! Two modes:
//!
//! * **Render** — `obs_report --in <path>` prints a human-readable report
//!   per bundle: the meta identity, counter/gauge values grouped by
//!   scope, histogram means and tail bounds, the per-shard heavy-hitter
//!   tables with their `[count − err, count]` bounds, and section sizes.
//! * **Diff** — `obs_report --diff <a> <b> [--tol <f>]` compares two
//!   documents bundle-by-bundle and field-by-field: integer fields
//!   (byte counters, metric values, topk counts) must match exactly,
//!   float fields (efficiency, latency quantile estimates, alpha) within
//!   `--tol` (default 1e-9). Metrics are matched by name, topk lines by
//!   (shard, rank), samples and events by index. Exits non-zero and
//!   prints one line per mismatch if the documents differ — CI's
//!   report-smoke job diffs a 1-worker against a 4-worker engine export
//!   and requires zero differences.

use std::process::ExitCode;

use vcdn_bench::telemetry::{as_f64, as_u64, parse_bundles, BundleDoc};
use vcdn_bench::{arg_flag, arg_switch};
use vcdn_types::json::Json;

/// Renders one histogram metric line as mean plus upper-bound quantiles
/// recovered from the log-bucket layout (bucket i ≥ 1 covers
/// [2^(i−1), 2^i)).
fn histogram_summary(m: &Json) -> String {
    let count = as_u64(m.get("value")).unwrap_or(0);
    let sum = as_u64(m.get("sum")).unwrap_or(0);
    if count == 0 {
        return "empty".to_string();
    }
    let mean = sum as f64 / count as f64;
    let Some(Json::Arr(buckets)) = m.get("buckets") else {
        return format!("n={count} mean={mean:.2}");
    };
    let quantile_bound = |q: f64| {
        let target = (q * count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            seen += as_u64(Some(b)).unwrap_or(0);
            if seen >= target {
                return if i == 0 { 0u64 } else { 1u64 << i };
            }
        }
        u64::MAX
    };
    format!(
        "n={count} mean={mean:.2} p50≤{} p99≤{}",
        quantile_bound(0.5),
        quantile_bound(0.99)
    )
}

fn render(path: &str, bundles: &[BundleDoc]) {
    println!("telemetry report: {path}");
    println!("{}", "=".repeat(60));
    for (i, b) in bundles.iter().enumerate() {
        println!("\nbundle {i}: {}", b.label());
        // Meta identity, skipping the section counts (shown below).
        if let Json::Obj(fields) = &b.meta {
            let skip = [
                "type",
                "metrics",
                "topk",
                "samples",
                "events",
                "events_dropped",
            ];
            for (k, v) in fields {
                if !skip.contains(&k.as_str()) {
                    println!("  {k}: {v}");
                }
            }
        }
        println!(
            "  sections: {} metrics, {} topk, {} samples, {} events ({} dropped)",
            b.metrics.len(),
            b.topk.len(),
            b.samples.len(),
            b.events.len(),
            b.meta_u64("events_dropped").unwrap_or(0),
        );
        if !b.metrics.is_empty() {
            println!("  metrics:");
            for m in &b.metrics {
                let name = m.get("name").and_then(Json::as_str).unwrap_or("?");
                match m.get("kind").and_then(Json::as_str) {
                    Some("histogram") => println!("    {name}: {}", histogram_summary(m)),
                    _ => println!("    {name}: {}", as_u64(m.get("value")).unwrap_or(0)),
                }
            }
        }
        if !b.topk.is_empty() {
            println!("  heavy hitters (count bounds [count-err, count]):");
            let mut shard_shown = u64::MAX;
            for t in &b.topk {
                let shard = as_u64(t.get("shard")).unwrap_or(0);
                if shard != shard_shown {
                    println!("    shard {shard}:");
                    shard_shown = shard;
                }
                let count = as_u64(t.get("count")).unwrap_or(0);
                let err = as_u64(t.get("err")).unwrap_or(0);
                println!(
                    "      #{} video {:>8}  [{}, {}]",
                    as_u64(t.get("rank")).unwrap_or(0),
                    as_u64(t.get("video")).unwrap_or(0),
                    count - err.min(count),
                    count,
                );
            }
        }
        if let Some(last) = b.samples.last() {
            println!(
                "  final sample: t={}ms cum_efficiency={}",
                as_u64(last.get("t_ms")).unwrap_or(0),
                as_f64(last.get("cum_efficiency")).unwrap_or(f64::NAN),
            );
        }
    }
}

/// Flattens a JSON object into (path, leaf) pairs for field-by-field
/// comparison. Arrays index into the path.
fn flatten<'a>(prefix: &str, j: &'a Json, out: &mut Vec<(String, &'a Json)>) {
    match j {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let p = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&p, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        _ => out.push((prefix.to_string(), j)),
    }
}

/// Compares two JSON values field-by-field: integers and strings exactly,
/// floats within `tol`. Pushes one line per mismatch.
fn diff_json(ctx: &str, a: &Json, b: &Json, tol: f64, out: &mut Vec<String>) {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten("", a, &mut fa);
    flatten("", b, &mut fb);
    for (path, va) in &fa {
        let Some((_, vb)) = fb.iter().find(|(p, _)| p == path) else {
            out.push(format!("{ctx}.{path}: only in A ({va})"));
            continue;
        };
        let matches = match (va, vb) {
            (Json::Int(x), Json::Int(y)) => x == y,
            (Json::Float(_), _) | (_, Json::Float(_)) => {
                match (as_f64(Some(va)), as_f64(Some(vb))) {
                    (Some(x), Some(y)) => (x - y).abs() <= tol,
                    _ => false,
                }
            }
            _ => va == vb,
        };
        if !matches {
            out.push(format!("{ctx}.{path}: {va} != {vb}"));
        }
    }
    for (path, vb) in &fb {
        if !fa.iter().any(|(p, _)| p == path) {
            out.push(format!("{ctx}.{path}: only in B ({vb})"));
        }
    }
}

fn topk_key(t: &Json) -> (u64, u64) {
    (
        as_u64(t.get("shard")).unwrap_or(u64::MAX),
        as_u64(t.get("rank")).unwrap_or(u64::MAX),
    )
}

fn metric_name(m: &Json) -> String {
    m.get("name")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string()
}

fn diff_bundles(i: usize, a: &BundleDoc, b: &BundleDoc, tol: f64, out: &mut Vec<String>) {
    let ctx = format!("bundle {i} ({})", a.label());
    diff_json(&format!("{ctx}.meta"), &a.meta, &b.meta, tol, out);
    // Metrics matched by name so a registration-order change reads as a
    // per-metric diff, not a wall of index mismatches.
    for m in &a.metrics {
        let name = metric_name(m);
        match b.metrics.iter().find(|x| metric_name(x) == name) {
            Some(x) => diff_json(&format!("{ctx}.metric {name}"), m, x, tol, out),
            None => out.push(format!("{ctx}.metric {name}: only in A")),
        }
    }
    for m in &b.metrics {
        let name = metric_name(m);
        if !a.metrics.iter().any(|x| metric_name(x) == name) {
            out.push(format!("{ctx}.metric {name}: only in B"));
        }
    }
    // Top-K matched by (shard, rank); samples and events by index.
    for t in &a.topk {
        let key = topk_key(t);
        match b.topk.iter().find(|x| topk_key(x) == key) {
            Some(x) => diff_json(&format!("{ctx}.topk s{}#{}", key.0, key.1), t, x, tol, out),
            None => out.push(format!("{ctx}.topk s{}#{}: only in A", key.0, key.1)),
        }
    }
    for t in &b.topk {
        let key = topk_key(t);
        if !a.topk.iter().any(|x| topk_key(x) == key) {
            out.push(format!("{ctx}.topk s{}#{}: only in B", key.0, key.1));
        }
    }
    for (section, xs, ys) in [
        ("sample", &a.samples, &b.samples),
        ("event", &a.events, &b.events),
    ] {
        if xs.len() != ys.len() {
            out.push(format!(
                "{ctx}: {} {section}s in A, {} in B",
                xs.len(),
                ys.len()
            ));
        }
        for (j, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
            diff_json(&format!("{ctx}.{section}[{j}]"), x, y, tol, out);
        }
    }
}

fn read_bundles(path: &str) -> Result<Vec<BundleDoc>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut errs = Vec::new();
    let bundles = parse_bundles(&text, &mut errs);
    if !errs.is_empty() {
        return Err(format!("{path}: {}", errs.join("; ")));
    }
    if bundles.is_empty() {
        return Err(format!("{path}: no telemetry bundles"));
    }
    Ok(bundles)
}

fn main() -> ExitCode {
    if arg_switch("diff") {
        // --diff takes two positional operands: the files to compare.
        let args: Vec<String> = std::env::args().collect();
        let pos = args.iter().position(|a| a == "--diff").unwrap();
        let (Some(path_a), Some(path_b)) = (args.get(pos + 1), args.get(pos + 2)) else {
            eprintln!("usage: obs_report --diff <a.jsonl> <b.jsonl> [--tol <f>]");
            return ExitCode::FAILURE;
        };
        let tol: f64 = arg_flag("tol").unwrap_or(1e-9);
        let (a, b) = match (read_bundles(path_a), read_bundles(path_b)) {
            (Ok(a), Ok(b)) => (a, b),
            (ra, rb) => {
                for r in [ra.err(), rb.err()].into_iter().flatten() {
                    eprintln!("[obs_report] {r}");
                }
                return ExitCode::FAILURE;
            }
        };
        let mut out = Vec::new();
        if a.len() != b.len() {
            out.push(format!("{} bundles in A, {} in B", a.len(), b.len()));
        }
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            diff_bundles(i, x, y, tol, &mut out);
        }
        if out.is_empty() {
            println!(
                "[obs_report] {path_a} == {path_b} ({} bundle(s), tol {tol:e})",
                a.len()
            );
            ExitCode::SUCCESS
        } else {
            for line in &out {
                println!("[obs_report] DIFF {line}");
            }
            eprintln!("[obs_report] {} difference(s)", out.len());
            ExitCode::FAILURE
        }
    } else {
        let path: String = arg_flag("in").unwrap_or_else(|| "results/telemetry.jsonl".to_string());
        match read_bundles(&path) {
            Ok(bundles) => {
                render(&path, &bundles);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("[obs_report] {e}");
                ExitCode::FAILURE
            }
        }
    }
}
