//! Ablation A8 — scale-model validation.
//!
//! Every experiment maps the paper's physical setup (1 TB disk, full
//! request volume) onto a linear scale factor that shrinks disk, catalog
//! and request volume together. If that methodology is sound, the
//! *relative* results — who wins, by how much — must be stable across
//! scale factors. This ablation runs the Figure 3 configuration at
//! 1/64, 1/32, 1/16 and (with `--full`) 1/8 scale.
//!
//! Two grids run through the deterministic parallel runner: one cell per
//! scale factor to generate its trace, then one cell per (scale,
//! algorithm) replay. Set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_scale [--days n] [--full]`

use vcdn_bench::{arg_days, arg_switch, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::{ServerProfile, Trace};
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let mut scales = vec![1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0];
    if arg_switch("full") {
        scales.push(1.0 / 8.0);
    }

    let trace_cells: Vec<Cell<Trace>> = scales
        .iter()
        .map(|&s| {
            Cell::new(format!("trace scale 1/{:.0}", 1.0 / s), move || {
                trace_for(ServerProfile::europe(), Scale(s), days)
            })
        })
        .collect();
    let traces: Vec<Trace> = sweep("ablation A8 traces", trace_cells).values();

    let cells: Vec<Cell<f64>> = scales
        .iter()
        .zip(&traces)
        .flat_map(|(&s, trace)| {
            let disk = Scale(s).disk_chunks(PAPER_DISK_BYTES, k);
            Algo::paper_three().into_iter().map(move |algo| {
                Cell::new(
                    format!("scale 1/{:.0} {}", 1.0 / s, algo.name()),
                    move || run_algo(algo, trace, disk, k, costs).efficiency(),
                )
            })
        })
        .collect();
    let e: Vec<f64> = sweep("ablation A8 replay", cells).values();

    let mut table = Table::new(vec![
        "scale",
        "requests",
        "disk chunks",
        "xlru",
        "cafe",
        "psychic",
        "cafe - xlru",
    ]);
    for (i, (&s, trace)) in scales.iter().zip(&traces).enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        table.row(vec![
            format!("1/{:.0}", 1.0 / s),
            trace.len().to_string(),
            Scale(s).disk_chunks(PAPER_DISK_BYTES, k).to_string(),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
            format!("{:+.3}", g[1] - g[0]),
        ]);
    }
    println!("== Ablation A8: result stability across scale factors (europe, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "methodology check: the ordering and the approximate gaps must be \
         stable across scales for the 1/16 default to stand in for full size"
    );
}
