//! Ablation A8 — scale-model validation.
//!
//! Every experiment maps the paper's physical setup (1 TB disk, full
//! request volume) onto a linear scale factor that shrinks disk, catalog
//! and request volume together. If that methodology is sound, the
//! *relative* results — who wins, by how much — must be stable across
//! scale factors. This ablation runs the Figure 3 configuration at
//! 1/64, 1/32, 1/16 and (with `--full`) 1/8 scale.
//!
//! Usage: `ablation_scale [--days n] [--full]`

use vcdn_bench::{arg_days, arg_switch, run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let mut scales = vec![1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0];
    if arg_switch("full") {
        scales.push(1.0 / 8.0);
    }

    let mut table = Table::new(vec![
        "scale",
        "requests",
        "disk chunks",
        "xlru",
        "cafe",
        "psychic",
        "cafe - xlru",
    ]);
    for s in scales {
        let scale = Scale(s);
        let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
        let trace = trace_for(ServerProfile::europe(), scale, days);
        let reports = run_paper_three(&trace, disk, k, costs);
        let e: Vec<f64> = reports.iter().map(|r| r.efficiency()).collect();
        table.row(vec![
            format!("1/{:.0}", 1.0 / s),
            trace.len().to_string(),
            disk.to_string(),
            eff(e[0]),
            eff(e[1]),
            eff(e[2]),
            format!("{:+.3}", e[1] - e[0]),
        ]);
        eprintln!("  scale 1/{:.0} done ({} requests)", 1.0 / s, trace.len());
    }
    println!("== Ablation A8: result stability across scale factors (europe, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "methodology check: the ordering and the approximate gaps must be \
         stable across scales for the 1/16 default to stand in for full size"
    );
}
