//! Telemetry JSONL validator: structural and semantic checks over a
//! `replay_observe` export, used by the CI observe-smoke job.
//!
//! For every bundle (delimited by `"type":"meta"` lines) it verifies:
//! the schema tag, that the meta line's section counts match the actual
//! line counts, that every line is one of the known record types, that
//! the sample grid is evenly spaced with exact cumulative counters whose
//! final Eq. 2 efficiency recomputes from its own byte counters, that
//! event sequence numbers are strictly increasing with consistent
//! verdicts, and that histogram metric lines conserve their samples.
//!
//! Flags: `--in <path>` (default `results/telemetry.jsonl`). Exits
//! non-zero with one line per violation if any check fails.

use std::process::ExitCode;

use vcdn_bench::arg_flag;
use vcdn_obs::SCHEMA;
use vcdn_types::float::exactly_zero;
use vcdn_types::json::{self, Json};
use vcdn_types::CostModel;

/// A bundle's parsed lines, split by section.
#[derive(Default)]
struct Bundle {
    meta: Option<Json>,
    metrics: Vec<Json>,
    samples: Vec<Json>,
    events: Vec<Json>,
}

fn as_u64(j: Option<&Json>) -> Option<u64> {
    match j {
        Some(Json::Int(i)) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn as_f64(j: Option<&Json>) -> Option<f64> {
    match j {
        Some(Json::Float(x)) => Some(*x),
        Some(Json::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

fn check_bundle(idx: usize, b: &Bundle, errs: &mut Vec<String>) {
    let mut err = |msg: String| errs.push(format!("bundle {idx}: {msg}"));
    let Some(meta) = &b.meta else {
        err("missing meta line".into());
        return;
    };
    if meta.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        err(format!("schema is not {SCHEMA:?}"));
    }
    for (key, actual) in [
        ("metrics", b.metrics.len()),
        ("samples", b.samples.len()),
        ("events", b.events.len()),
    ] {
        match as_u64(meta.get(key)) {
            Some(n) if n as usize == actual => {}
            other => err(format!("meta.{key} = {other:?}, counted {actual}")),
        }
    }
    if b.metrics.is_empty() {
        err("no metric lines".into());
    }
    if b.samples.is_empty() {
        err("no sample lines — sampler was never fed".into());
    }

    // Metric lines: known kinds; histograms conserve their samples.
    for m in &b.metrics {
        let name = m.get("name").and_then(Json::as_str).unwrap_or("?");
        match m.get("kind").and_then(Json::as_str) {
            Some("counter") | Some("gauge") => {}
            Some("histogram") => {
                let Some(Json::Arr(buckets)) = m.get("buckets") else {
                    err(format!("histogram {name} has no buckets"));
                    continue;
                };
                let count: u64 = buckets.iter().filter_map(|b| as_u64(Some(b))).sum();
                if Some(count) != as_u64(m.get("value")) {
                    err(format!("histogram {name}: buckets sum != count"));
                }
            }
            // Timing histograms are non-deterministic and must never be
            // exported.
            other => err(format!("metric {name}: unexpected kind {other:?}")),
        }
    }

    // Sample grid: evenly spaced, cumulative counters monotone, final
    // cumulative efficiency recomputes from its own byte counters (Eq. 2).
    let interval = as_u64(meta.get("interval_ms")).unwrap_or(0);
    let mut prev_cum = 0u64;
    for (i, s) in b.samples.iter().enumerate() {
        if as_u64(s.get("t_ms")) != Some(i as u64 * interval) {
            err(format!("sample {i}: t_ms off the interval grid"));
            break;
        }
        let cum = ["cum_hit_bytes", "cum_fill_bytes", "cum_redirect_bytes"]
            .iter()
            .filter_map(|k| as_u64(s.get(k)))
            .sum::<u64>();
        if cum < prev_cum {
            err(format!("sample {i}: cumulative bytes decreased"));
        }
        prev_cum = cum;
    }
    if let (Some(last), Some(alpha)) = (b.samples.last(), as_f64(meta.get("alpha"))) {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha in meta");
        let fill = as_u64(last.get("cum_fill_bytes")).unwrap_or(0) as f64;
        let red = as_u64(last.get("cum_redirect_bytes")).unwrap_or(0) as f64;
        let total = as_u64(last.get("cum_hit_bytes")).unwrap_or(0) as f64 + fill + red;
        let want = if exactly_zero(total) {
            0.0
        } else {
            1.0 - fill / total * costs.c_f() - red / total * costs.c_r()
        };
        let got = as_f64(last.get("cum_efficiency")).unwrap_or(f64::NAN);
        // NaN must fail too, so compare for "close enough" and negate.
        let close = (got - want).abs() < 1e-9;
        if !close {
            err(format!(
                "final cum_efficiency {got} does not recompute to {want} (Eq. 2)"
            ));
        }
    }

    // Events: strictly increasing seq, verdict-consistent chunk splits.
    let mut prev_seq = None;
    for e in &b.events {
        let seq = as_u64(e.get("seq"));
        if seq.is_none() || prev_seq.is_some() && seq <= prev_seq {
            err(format!(
                "event seq {seq:?} after {prev_seq:?} not increasing"
            ));
            break;
        }
        prev_seq = seq;
        let hit = as_u64(e.get("hit_chunks")).unwrap_or(0);
        let fill = as_u64(e.get("fill_chunks")).unwrap_or(0);
        let chunks = as_u64(e.get("chunks")).unwrap_or(0);
        match e.get("verdict").and_then(Json::as_str) {
            Some("serve") if hit + fill == chunks => {}
            Some("redirect") if hit == 0 && fill == 0 => {}
            v => err(format!(
                "event {seq:?}: verdict {v:?} inconsistent with chunks"
            )),
        }
    }
}

fn main() -> ExitCode {
    let path: String = arg_flag("in").unwrap_or_else(|| "results/telemetry.jsonl".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[obs_check] cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut bundles: Vec<Bundle> = Vec::new();
    let mut errs: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let j = match json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                errs.push(format!("line {}: unparseable: {e}", lineno + 1));
                continue;
            }
        };
        match j.get("type").and_then(Json::as_str) {
            Some("meta") => bundles.push(Bundle {
                meta: Some(j),
                ..Bundle::default()
            }),
            Some(kind) => {
                let Some(b) = bundles.last_mut() else {
                    errs.push(format!("line {}: {kind} before any meta line", lineno + 1));
                    continue;
                };
                match kind {
                    "metric" => b.metrics.push(j),
                    "sample" => b.samples.push(j),
                    "event" => b.events.push(j),
                    _ => errs.push(format!("line {}: unknown type {kind:?}", lineno + 1)),
                }
            }
            None => errs.push(format!("line {}: missing type field", lineno + 1)),
        }
    }
    if bundles.is_empty() {
        errs.push("no telemetry bundles found".into());
    }
    for (i, b) in bundles.iter().enumerate() {
        check_bundle(i, b, &mut errs);
    }

    if errs.is_empty() {
        println!(
            "[obs_check] {path}: {} bundle(s), {} lines — all checks passed",
            bundles.len(),
            text.lines().count()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("[obs_check] FAIL {e}");
        }
        eprintln!("[obs_check] {path}: {} violation(s)", errs.len());
        ExitCode::FAILURE
    }
}
