//! Telemetry JSONL validator: structural and semantic checks over a
//! `vcdn-telemetry/1` export, used by the CI observe-smoke and
//! report-smoke jobs.
//!
//! For every bundle (delimited by `"type":"meta"` lines) it verifies:
//! the schema tag, that the meta line's section counts match the actual
//! line counts, that every line is one of the known record types, that
//! top-K lines are count-bounded and sorted (sequential 1-based ranks per
//! shard, counts non-increasing with video-ascending ties, `err < count`,
//! at most `topk_k` entries per shard), that the sample grid is evenly
//! spaced with exact cumulative counters whose final Eq. 2 efficiency
//! recomputes from its own byte counters, that event sequence numbers are
//! strictly increasing with consistent verdicts, and that histogram
//! metric lines conserve their samples.
//!
//! Engine bundles (`"source":"engine"`) additionally get the span checks:
//! the dispatch counter equals the meta `dispatched` count and the sum of
//! per-shard `processed_total` counters (conservation — every dispatched
//! request decided exactly once), and every shard stream carries its
//! queue-gap histogram and load-share gauge. Engine bundles have no
//! sampler, so the sample-grid requirement is waived for them.
//!
//! Window sections get their own checks: a contiguous index grid,
//! in-range efficiency/redirect rates, and (when the ring evicted
//! nothing and the meta line carries run totals) exact delta
//! conservation back to the cumulative byte counters. Alert lines must
//! carry known severities in window order and reference windows inside
//! the exported grid.
//!
//! Flags: `--in <path>` (default `results/telemetry.jsonl`) and
//! `--rules <path>` to additionally verify that a watchdog rules file
//! parses and round-trips through its canonical rendering. Exits
//! non-zero with one line per violation if any check fails.

use std::process::ExitCode;

use vcdn_bench::arg_flag;
use vcdn_bench::telemetry::{as_f64, as_u64, parse_bundles, BundleDoc};
use vcdn_obs::SCHEMA;
use vcdn_types::float::exactly_zero;
use vcdn_types::json::Json;
use vcdn_types::CostModel;

fn check_bundle(idx: usize, b: &BundleDoc, errs: &mut Vec<String>) {
    let mut err = |msg: String| errs.push(format!("bundle {idx} ({}): {msg}", b.label()));
    if b.meta_str("schema") != Some(SCHEMA) {
        err(format!("schema is not {SCHEMA:?}"));
    }
    for (key, actual) in [
        ("metrics", b.metrics.len()),
        ("topk", b.topk.len()),
        ("windows", b.windows.len()),
        ("alerts", b.alerts.len()),
        ("samples", b.samples.len()),
        ("events", b.events.len()),
    ] {
        match b.meta_u64(key) {
            Some(n) if n as usize == actual => {}
            other => err(format!("meta.{key} = {other:?}, counted {actual}")),
        }
    }
    if b.metrics.is_empty() {
        err("no metric lines".into());
    }
    let is_engine = b.meta_str("source") == Some("engine");
    if b.samples.is_empty() && !is_engine {
        err("no sample lines — sampler was never fed".into());
    }

    // Metric lines: known kinds; histograms conserve their samples.
    for m in &b.metrics {
        let name = m.get("name").and_then(Json::as_str).unwrap_or("?");
        match m.get("kind").and_then(Json::as_str) {
            Some("counter") | Some("gauge") => {}
            Some("histogram") => {
                let Some(Json::Arr(buckets)) = m.get("buckets") else {
                    err(format!("histogram {name} has no buckets"));
                    continue;
                };
                let count: u64 = buckets.iter().filter_map(|b| as_u64(Some(b))).sum();
                if Some(count) != as_u64(m.get("value")) {
                    err(format!("histogram {name}: buckets sum != count"));
                }
            }
            // Timing histograms are non-deterministic and must never be
            // exported.
            other => err(format!("metric {name}: unexpected kind {other:?}")),
        }
    }

    // Top-K lines: shard-major, ranks sequential from 1, counts sorted
    // non-increasing with video-ascending ties, err < count, per-shard
    // entry count bounded by the sketch capacity, and no sketch count
    // exceeding the bundle's total request count.
    let topk_k = b.meta_u64("topk_k");
    let total = b
        .meta_u64("dispatched")
        .or_else(|| b.meta_u64("requests"))
        .unwrap_or(u64::MAX);
    if !b.topk.is_empty() && topk_k.is_none() {
        err("topk lines present but meta.topk_k missing".into());
    }
    let mut prev: Option<(u64, u64, u64, u64)> = None; // shard, rank, count, video
    let mut per_shard = 0u64;
    for t in &b.topk {
        let shard = as_u64(t.get("shard")).unwrap_or(u64::MAX);
        let rank = as_u64(t.get("rank")).unwrap_or(0);
        let video = as_u64(t.get("video")).unwrap_or(u64::MAX);
        let count = as_u64(t.get("count")).unwrap_or(0);
        let errv = as_u64(t.get("err")).unwrap_or(u64::MAX);
        if errv >= count {
            err(format!("topk s{shard}#{rank}: err {errv} >= count {count}"));
        }
        if count > total {
            err(format!(
                "topk s{shard}#{rank}: count {count} exceeds total requests {total}"
            ));
        }
        per_shard = match prev {
            Some((ps, ..)) if ps == shard => per_shard + 1,
            _ => 1,
        };
        if let Some(k) = topk_k {
            if per_shard > k {
                err(format!("topk s{shard}: more than topk_k={k} entries"));
            }
        }
        match prev {
            None => {
                if rank != 1 {
                    err(format!("topk s{shard}: first rank is {rank}, not 1"));
                }
            }
            Some((ps, pr, pc, pv)) => {
                if shard == ps {
                    if rank != pr + 1 {
                        err(format!("topk s{shard}: rank {rank} after {pr}"));
                    }
                    if count > pc || (count == pc && video <= pv) {
                        err(format!(
                            "topk s{shard}#{rank}: order violates (count desc, video asc)"
                        ));
                    }
                } else {
                    if shard < ps {
                        err(format!("topk: shard {shard} after shard {ps}"));
                    }
                    if rank != 1 {
                        err(format!("topk s{shard}: first rank is {rank}, not 1"));
                    }
                }
            }
        }
        prev = Some((shard, rank, count, video));
    }

    // Engine bundles: span conservation and per-stream queue metrics.
    if is_engine {
        let scope = |suffix: &str| {
            b.metrics
                .iter()
                .filter(|m| {
                    m.get("name")
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.ends_with(suffix))
                })
                .count()
        };
        let shards = b.meta_u64("shards").unwrap_or(0) as usize;
        let dispatched_meta = b.meta_u64("dispatched");
        let dispatched = b
            .metrics
            .iter()
            .find(|m| {
                m.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.ends_with(".engine.span.dispatched_total"))
            })
            .and_then(|m| as_u64(m.get("value")))
            .unwrap_or(u64::MAX);
        if Some(dispatched) != dispatched_meta {
            err(format!(
                "span.dispatched_total {dispatched} != meta.dispatched {dispatched_meta:?}"
            ));
        }
        let processed: u64 = b
            .metrics
            .iter()
            .filter(|m| {
                m.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.ends_with(".span.processed_total"))
            })
            .filter_map(|m| as_u64(m.get("value")))
            .sum();
        if processed != dispatched {
            err(format!(
                "span conservation broken: dispatched {dispatched} != sum processed {processed}"
            ));
        }
        for (suffix, what) in [
            (".span.queue_gap", "queue-gap histogram"),
            (".span.load_share_x1000", "load-share gauge"),
            (".span.processed_total", "processed counter"),
        ] {
            let n = scope(suffix);
            if n != shards {
                err(format!("{n} {what}s for {shards} shard streams"));
            }
        }
        // The skew gauges live under the engine scope; look them up by
        // suffix since the scope prefix is caller-chosen.
        for gauge in ["skew_requests_x1000", "skew_bytes_x1000"] {
            let suffix = format!(".engine.span.{gauge}");
            if !b.metrics.iter().any(|m| {
                m.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.ends_with(&suffix))
            }) {
                err(format!("engine bundle missing {gauge} gauge"));
            }
        }
    }

    // Windows: a contiguous index grid, rates within range, sketch
    // counts consistent, and — when the meta line carries run totals and
    // the ring evicted nothing — exact delta conservation: the window
    // deltas sum back to the run's cumulative byte counters.
    let mut window_max = None;
    let mut sums = [0u64; 5]; // hit, fill, redirect, served, redirected
    for (i, w) in b.windows.iter().enumerate() {
        let index = as_u64(w.get("index")).unwrap_or(u64::MAX);
        match window_max {
            None => {}
            Some(prev) if index == prev + 1 => {}
            Some(prev) => err(format!(
                "window {index} after {prev}: index grid not contiguous"
            )),
        }
        window_max = Some(index);
        for (j, key) in [
            "hit_bytes",
            "fill_bytes",
            "redirect_bytes",
            "served_requests",
            "redirected_requests",
        ]
        .iter()
        .enumerate()
        {
            match as_u64(w.get(key)) {
                Some(v) => sums[j] += v,
                None => err(format!("window {i}: missing {key}")),
            }
        }
        for key in ["efficiency", "redirect_rate"] {
            let v = as_f64(w.get(key)).unwrap_or(f64::NAN);
            if !(v.is_finite() && (-1e9..=1.0).contains(&v)) {
                err(format!("window {i}: {key} = {v} out of range"));
            }
        }
        if as_u64(w.get("queue_gap_count")).unwrap_or(0) > 0
            && as_u64(w.get("queue_gap_p99")).is_none()
        {
            err(format!("window {i}: gap samples without a p99"));
        }
    }
    let dropped = b.meta_u64("windows_dropped");
    if !b.windows.is_empty() && dropped.is_none() {
        err("window lines present but meta.windows_dropped missing".into());
    }
    if dropped == Some(0) && !b.windows.is_empty() {
        for (j, key) in ["hit_bytes", "fill_bytes", "redirect_bytes"]
            .iter()
            .enumerate()
        {
            if let Some(total) = b.meta_u64(key) {
                if sums[j] != total {
                    err(format!(
                        "window deltas sum {} != meta.{key} {total} (conservation)",
                        sums[j]
                    ));
                }
            }
        }
    }

    // Alerts: known severities, non-decreasing window order, and every
    // referenced window exists in the exported grid (when the ring
    // evicted windows, existence can only be bounded from above: alerts
    // fire at close time and may outlive their window).
    let mut prev_alert = None;
    for a in &b.alerts {
        let window = as_u64(a.get("window")).unwrap_or(u64::MAX);
        let rule = a.get("rule").and_then(Json::as_str).unwrap_or("");
        if rule.is_empty() {
            err(format!("alert at window {window}: empty rule name"));
        }
        match a.get("severity").and_then(Json::as_str) {
            Some("warning") | Some("critical") => {}
            other => err(format!("alert {rule}: unknown severity {other:?}")),
        }
        if prev_alert.is_some_and(|p| window < p) {
            err(format!("alert {rule}: window {window} out of order"));
        }
        prev_alert = Some(window);
        match window_max {
            Some(max) if window <= max => {}
            _ => err(format!(
                "alert {rule}: window {window} beyond the exported grid"
            )),
        }
        if dropped == Some(0)
            && !b
                .windows
                .iter()
                .any(|w| as_u64(w.get("index")) == Some(window))
        {
            err(format!(
                "alert {rule}: window {window} missing from the grid"
            ));
        }
    }

    // Sample grid: evenly spaced, cumulative counters monotone, final
    // cumulative efficiency recomputes from its own byte counters (Eq. 2).
    let interval = b.meta_u64("interval_ms").unwrap_or(0);
    let mut prev_cum = 0u64;
    for (i, s) in b.samples.iter().enumerate() {
        if as_u64(s.get("t_ms")) != Some(i as u64 * interval) {
            err(format!("sample {i}: t_ms off the interval grid"));
            break;
        }
        let cum = ["cum_hit_bytes", "cum_fill_bytes", "cum_redirect_bytes"]
            .iter()
            .filter_map(|k| as_u64(s.get(k)))
            .sum::<u64>();
        if cum < prev_cum {
            err(format!("sample {i}: cumulative bytes decreased"));
        }
        prev_cum = cum;
    }
    if let (Some(last), Some(alpha)) = (b.samples.last(), as_f64(b.meta.get("alpha"))) {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha in meta");
        let fill = as_u64(last.get("cum_fill_bytes")).unwrap_or(0) as f64;
        let red = as_u64(last.get("cum_redirect_bytes")).unwrap_or(0) as f64;
        let total = as_u64(last.get("cum_hit_bytes")).unwrap_or(0) as f64 + fill + red;
        let want = if exactly_zero(total) {
            0.0
        } else {
            1.0 - fill / total * costs.c_f() - red / total * costs.c_r()
        };
        let got = as_f64(last.get("cum_efficiency")).unwrap_or(f64::NAN);
        // NaN must fail too, so compare for "close enough" and negate.
        let close = (got - want).abs() < 1e-9;
        if !close {
            err(format!(
                "final cum_efficiency {got} does not recompute to {want} (Eq. 2)"
            ));
        }
    }

    // Events: strictly increasing seq, verdict-consistent chunk splits.
    let mut prev_seq = None;
    for e in &b.events {
        let seq = as_u64(e.get("seq"));
        if seq.is_none() || prev_seq.is_some() && seq <= prev_seq {
            err(format!(
                "event seq {seq:?} after {prev_seq:?} not increasing"
            ));
            break;
        }
        prev_seq = seq;
        let hit = as_u64(e.get("hit_chunks")).unwrap_or(0);
        let fill = as_u64(e.get("fill_chunks")).unwrap_or(0);
        let chunks = as_u64(e.get("chunks")).unwrap_or(0);
        match e.get("verdict").and_then(Json::as_str) {
            Some("serve") if hit + fill == chunks => {}
            Some("redirect") if hit == 0 && fill == 0 => {}
            v => err(format!(
                "event {seq:?}: verdict {v:?} inconsistent with chunks"
            )),
        }
    }
}

/// Verifies a watchdog rules file parses and round-trips: parse, render
/// canonically, re-parse, compare. A rules file the watchdog would
/// reject — or one whose canonical form drifts — fails the check.
fn check_rules_file(path: &str, errs: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            errs.push(format!("rules {path}: cannot read: {e}"));
            return;
        }
    };
    let rules = match vcdn_obs::parse_rules(&text) {
        Ok(r) => r,
        Err(e) => {
            errs.push(format!("rules {path}: {e}"));
            return;
        }
    };
    if rules.is_empty() {
        errs.push(format!("rules {path}: no rules defined"));
    }
    let rendered = vcdn_obs::render_rules(&rules);
    match vcdn_obs::parse_rules(&rendered) {
        Ok(again) if again == rules => {}
        Ok(_) => errs.push(format!(
            "rules {path}: canonical rendering drifts on re-parse"
        )),
        Err(e) => errs.push(format!(
            "rules {path}: canonical rendering unparseable: {e}"
        )),
    }
}

fn main() -> ExitCode {
    let path: String = arg_flag("in").unwrap_or_else(|| "results/telemetry.jsonl".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[obs_check] cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut errs: Vec<String> = Vec::new();
    if let Some(rules_path) = arg_flag::<String>("rules") {
        check_rules_file(&rules_path, &mut errs);
    }
    let bundles = parse_bundles(&text, &mut errs);
    if bundles.is_empty() {
        errs.push("no telemetry bundles found".into());
    }
    for (i, b) in bundles.iter().enumerate() {
        check_bundle(i, b, &mut errs);
    }

    if errs.is_empty() {
        println!(
            "[obs_check] {path}: {} bundle(s), {} lines — all checks passed",
            bundles.len(),
            text.lines().count()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("[obs_check] FAIL {e}");
        }
        eprintln!("[obs_check] {path}: {} violation(s)", errs.len());
        ExitCode::FAILURE
    }
}
