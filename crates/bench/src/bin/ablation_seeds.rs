//! Ablation A9 — seed sensitivity.
//!
//! The headline comparisons must not be artifacts of one particular
//! random workload. This ablation regenerates the Figure 3 configuration
//! under several seeds and reports the per-seed efficiencies plus the
//! spread of the Cafe-over-xLRU gap.
//!
//! Usage: `ablation_seeds [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_paper_three, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::{ServerProfile, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    let seeds = [20140413u64, 1, 7, 1234567, 987654321];
    let mut table = Table::new(vec!["seed", "requests", "xlru", "cafe", "psychic", "gap"]);
    let mut gaps = Vec::new();
    for seed in seeds {
        let trace = TraceGenerator::new(scale.profile(ServerProfile::europe()), seed)
            .generate(DurationMs::from_days(days));
        let reports = run_paper_three(&trace, disk, k, costs);
        let e: Vec<f64> = reports.iter().map(|r| r.efficiency()).collect();
        gaps.push(e[1] - e[0]);
        table.row(vec![
            seed.to_string(),
            trace.len().to_string(),
            eff(e[0]),
            eff(e[1]),
            eff(e[2]),
            format!("{:+.3}", e[1] - e[0]),
        ]);
        eprintln!("  seed {seed} done");
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let spread = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("== Ablation A9: seed sensitivity (europe, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "cafe-over-xlru gap: mean {mean:+.3}, spread {spread:.3} across {} seeds",
        gaps.len()
    );
}
