//! Ablation A9 — seed sensitivity.
//!
//! The headline comparisons must not be artifacts of one particular
//! random workload. This ablation regenerates the Figure 3 configuration
//! under several seeds and reports the per-seed efficiencies plus the
//! spread of the Cafe-over-xLRU gap.
//!
//! Two grids run through the deterministic parallel runner: one cell per
//! seed to generate its trace, then one cell per (seed, algorithm)
//! replay. Set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_seeds [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_algo, sweep, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    let seeds = [20140413u64, 1, 7, 1234567, 987654321];
    let trace_cells: Vec<Cell<Trace>> = seeds
        .iter()
        .map(|&seed| {
            Cell::new(format!("trace seed={seed}"), move || {
                TraceGenerator::new(scale.profile(ServerProfile::europe()), seed)
                    .generate(DurationMs::from_days(days))
            })
        })
        .collect();
    let traces: Vec<Trace> = sweep("ablation A9 traces", trace_cells).values();

    let cells: Vec<Cell<f64>> = seeds
        .iter()
        .zip(&traces)
        .flat_map(|(&seed, trace)| {
            Algo::paper_three().into_iter().map(move |algo| {
                Cell::new(format!("seed={seed} {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs).efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("ablation A9 replay", cells).values();

    let mut table = Table::new(vec!["seed", "requests", "xlru", "cafe", "psychic", "gap"]);
    let mut gaps = Vec::new();
    for (i, (seed, trace)) in seeds.iter().zip(&traces).enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        gaps.push(g[1] - g[0]);
        table.row(vec![
            seed.to_string(),
            trace.len().to_string(),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
            format!("{:+.3}", g[1] - g[0]),
        ]);
    }
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let spread = gaps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - gaps.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("== Ablation A9: seed sensitivity (europe, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "cafe-over-xlru gap: mean {mean:+.3}, spread {spread:.3} across {} seeds",
        gaps.len()
    );
}
