//! Figure 7 — "Efficiency of the algorithms on traces from six servers
//! around the world" (1 TB disk, α_F2R = 2).
//!
//! Each server (Africa, Asia, Australia, Europe, N. America, S. America)
//! gets one bar group (xLRU, Cafe, Psychic). Paper anchors: the same
//! algorithm ordering on every server; higher efficiency for servers with
//! more limited request profiles (Asia) than for busy, diverse ones
//! (S. America); and "a wider gap between xLRU and the other two
//! algorithms for busier servers".
//!
//! Two grids run through the deterministic parallel runner: one cell per
//! server to generate its trace, then one cell per (server, algorithm)
//! replay (18 cells). Set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `fig7_world_servers [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::{ServerProfile, Trace};
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("2.0 is a valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig7: six servers, {days} days, alpha=2 (scale {})",
        scale.0
    );

    let trace_cells: Vec<Cell<(String, Trace)>> = ServerProfile::world_servers()
        .into_iter()
        .map(|profile| {
            let name = profile.name.clone();
            Cell::new(format!("trace {name}"), move || {
                (name.clone(), trace_for(profile, scale, days))
            })
        })
        .collect();
    let traces: Vec<(String, Trace)> = sweep("fig7 traces", trace_cells).values();

    let cells: Vec<Cell<f64>> = traces
        .iter()
        .flat_map(|(name, trace)| {
            Algo::paper_three().into_iter().map(move |algo| {
                Cell::new(format!("{name} {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs).efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("fig7 replay", cells).values();

    let mut table = Table::new(vec![
        "server",
        "requests",
        "xlru",
        "cafe",
        "psychic",
        "cafe - xlru",
    ]);
    for (i, (name, trace)) in traces.iter().enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        table.row(vec![
            name.clone(),
            trace.len().to_string(),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
            format!("{:+.3}", g[1] - g[0]),
        ]);
    }
    println!("== Figure 7: efficiency per world server (1 TB-scaled, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "paper anchors: same ordering everywhere; Asia (limited profile) \
         highest, S. America (busy/diverse) lowest with the widest \
         xlru-to-cafe gap"
    );
}
