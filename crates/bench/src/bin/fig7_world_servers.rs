//! Figure 7 — "Efficiency of the algorithms on traces from six servers
//! around the world" (1 TB disk, α_F2R = 2).
//!
//! Each server (Africa, Asia, Australia, Europe, N. America, S. America)
//! gets one bar group (xLRU, Cafe, Psychic). Paper anchors: the same
//! algorithm ordering on every server; higher efficiency for servers with
//! more limited request profiles (Asia) than for busy, diverse ones
//! (S. America); and "a wider gap between xLRU and the other two
//! algorithms for busier servers".
//!
//! Usage: `fig7_world_servers [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("2.0 is a valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig7: six servers, {days} days, alpha=2 (scale {})",
        scale.0
    );
    let mut table = Table::new(vec![
        "server",
        "requests",
        "xlru",
        "cafe",
        "psychic",
        "cafe - xlru",
    ]);
    for profile in ServerProfile::world_servers() {
        let name = profile.name.clone();
        let trace = trace_for(profile, scale, days);
        let n = trace.len();
        let reports = run_paper_three(&trace, disk, k, costs);
        let e: Vec<f64> = reports.iter().map(|r| r.efficiency()).collect();
        table.row(vec![
            name.clone(),
            n.to_string(),
            eff(e[0]),
            eff(e[1]),
            eff(e[2]),
            format!("{:+.3}", e[1] - e[0]),
        ]);
        eprintln!("  {name} done ({n} requests)");
    }
    println!("== Figure 7: efficiency per world server (1 TB-scaled, alpha=2) ==");
    println!("{}", table.render());
    println!(
        "paper anchors: same ordering everywhere; Asia (limited profile) \
         highest, S. America (busy/diverse) lowest with the widest \
         xlru-to-cafe gap"
    );
}
