//! Extension E2 — §10 proactive caching during off-peak hours.
//!
//! Wraps Cafe with the early-morning prefetcher and reports reactive
//! efficiency, prefetch volume, and *net* efficiency where prefetched
//! chunks are charged as ingress at `C_F`. The open question the paper
//! poses is whether spare off-peak ingress can close part of the gap to
//! Psychic; the prefetcher targets chunks that were requested (and
//! redirected) but never admitted.
//!
//! Usage: `ext_proactive [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig, PrefetchConfig, ProactiveCafeCache};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::float::exactly_zero;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(1.0);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ext E2: {} requests, disk={disk}", trace.len());

    let replayer = Replayer::new(ReplayConfig::bench(k, costs));
    let mut table = Table::new(vec![
        "variant",
        "efficiency",
        "net efficiency",
        "ingress%",
        "redirect%",
        "prefetched chunks",
    ]);

    let mut plain = CafeCache::new(CafeConfig::new(disk, k, costs));
    let r = replayer.replay(&trace, &mut plain);
    table.row(vec![
        "cafe".into(),
        eff(r.efficiency()),
        eff(r.efficiency()),
        format!("{:.1}", r.ingress_pct()),
        format!("{:.1}", r.redirect_pct()),
        "0".into(),
    ]);
    eprintln!("  plain done");

    for budget in [64usize, 256, 1024] {
        let cfg = PrefetchConfig {
            budget_chunks_per_tick: budget,
            ..PrefetchConfig::early_morning()
        };
        let inner = CafeCache::new(CafeConfig::new(disk, k, costs));
        let mut pro = ProactiveCafeCache::try_new(inner, cfg).expect("valid prefetch config");
        let r = replayer.replay(&trace, &mut pro);
        // Net efficiency: charge prefetch bytes as ingress at C_F against
        // the steady-state denominator.
        let total = r.steady.requested_bytes() as f64;
        let prefetch_bytes = pro.prefetched_chunks() * k.bytes();
        let net = if exactly_zero(total) {
            0.0
        } else {
            r.efficiency() - prefetch_bytes as f64 / total * costs.c_f()
        };
        table.row(vec![
            format!("cafe+prefetch (budget {budget}/tick)"),
            eff(r.efficiency()),
            eff(net),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
            pro.prefetched_chunks().to_string(),
        ]);
        eprintln!("  budget {budget} done");
    }
    println!("== Extension E2: off-peak proactive caching (europe, alpha={alpha}) ==");
    println!("{}", table.render());
    println!(
        "net efficiency charges every prefetched chunk as C_F ingress; \
         positive deltas over plain cafe mean spare off-peak ingress \
         converted into later peak-hour hits"
    );
}
