//! Ablation A10 — why fixed-size chunks (paper §4).
//!
//! "To simplify the support for partial caching, we can divide the disk
//! and the files into small chunks of fixed size K ... Doing so
//! eliminates the inefficiencies of allocating/de-allocating disk blocks
//! to segments of arbitrary sizes."
//!
//! This ablation drives the same cache-fill churn through a first-fit
//! disk allocator twice: storing each fill as one variable-size segment
//! (the watched byte range), and storing it as fixed 2 MiB chunks. It
//! quantifies the tradeoff: variable segments suffer *external*
//! fragmentation (allocation stalls, shattered free space), while fixed
//! chunks pay a small bounded *internal* round-up waste and can never
//! fragment externally — the paper's §4 choice.
//!
//! The two storage layouts run as one grid through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_chunking [--scale f] [--days n]`

use vcdn_bench::{arg_days, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::diskalloc::{AllocError, SegmentAllocator};
use vcdn_sim::report::{bytes, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::ServerProfile;
use vcdn_types::ChunkSize;

/// Outcome of one storage-churn replay.
struct ChurnStats {
    /// Bytes the workload actually asked to store (pre round-up).
    payload_bytes: u64,
    /// Bytes allocated (chunked layouts round up: internal fragmentation).
    stored_bytes: u64,
    evicted_bytes: u64,
    fragmentation_failures: u64,
    peak_fragmentation: f64,
}

/// Replays the trace's fill stream: every first sight of a (video, range
/// start) allocates; on failure, evict the oldest allocations until the
/// fill fits. `granularity` = `None` stores variable-size segments,
/// `Some(k)` stores ceil(len/k) fixed chunks.
fn churn(trace: &vcdn_trace::Trace, capacity: u64, granularity: Option<u64>) -> ChurnStats {
    let mut alloc = SegmentAllocator::new(capacity);
    let mut next_id = 0u64;
    let mut fifo: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
    let mut seen: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    let mut stats = ChurnStats {
        payload_bytes: 0,
        stored_bytes: 0,
        evicted_bytes: 0,
        fragmentation_failures: 0,
        peak_fragmentation: 0.0,
    };
    for r in &trace.requests {
        if !seen.insert((r.video.0, r.bytes.start)) {
            continue; // already stored once; cache-hit, no allocation churn
        }
        let len = r.byte_len();
        stats.payload_bytes = stats.payload_bytes.saturating_add(len);
        let pieces: Vec<u64> = match granularity {
            None => vec![len],
            Some(k) => {
                let n = len.div_ceil(k);
                (0..n).map(|_| k).collect()
            }
        };
        for piece in pieces {
            let piece = piece.min(capacity); // clamp absurd outliers
            loop {
                match alloc.alloc(next_id, piece) {
                    Ok(_) => {
                        fifo.push_back(next_id);
                        next_id += 1;
                        stats.stored_bytes = stats.stored_bytes.saturating_add(piece);
                        break;
                    }
                    Err(AllocError::Fragmented) | Err(AllocError::NeedEviction) => {
                        let Some(victim) = fifo.pop_front() else {
                            break;
                        };
                        if let Some(freed) = alloc.free(victim) {
                            stats.evicted_bytes = stats.evicted_bytes.saturating_add(freed);
                        }
                    }
                    Err(e) => panic!("unexpected allocator error: {e}"),
                }
            }
            stats.peak_fragmentation = stats.peak_fragmentation.max(alloc.external_fragmentation());
        }
    }
    stats.fragmentation_failures = alloc.fragmentation_failures;
    stats
}

fn main() {
    let scale = Scale::from_args();
    let days = arg_days().min(14); // storage churn stabilises quickly
    let k = ChunkSize::DEFAULT;
    let capacity = scale.disk_chunks(PAPER_DISK_BYTES, k) * k.bytes();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!(
        "ablation A10: {} requests, {} disk",
        trace.len(),
        bytes(capacity)
    );

    let cells = vec![
        Cell::new("variable-size segments", || churn(&trace, capacity, None)),
        Cell::new("fixed chunks", || churn(&trace, capacity, Some(k.bytes()))),
    ];
    let mut stats = sweep("ablation A10", cells).values();
    let chunked = stats.pop().expect("two cells");
    let variable = stats.pop().expect("two cells");

    let mut table = Table::new(vec![
        "storage layout",
        "stored",
        "round-up waste",
        "evicted",
        "frag. failures",
        "peak ext. frag.",
    ]);
    table.row(vec![
        "variable-size segments".into(),
        bytes(variable.stored_bytes),
        bytes(variable.stored_bytes.saturating_sub(variable.payload_bytes)),
        bytes(variable.evicted_bytes),
        variable.fragmentation_failures.to_string(),
        format!("{:.3}", variable.peak_fragmentation),
    ]);
    table.row(vec![
        format!("fixed {k} chunks (paper)"),
        bytes(chunked.stored_bytes),
        bytes(chunked.stored_bytes.saturating_sub(chunked.payload_bytes)),
        bytes(chunked.evicted_bytes),
        chunked.fragmentation_failures.to_string(),
        format!("{:.3}", chunked.peak_fragmentation),
    ]);
    println!("== Ablation A10: variable segments vs fixed chunks (europe fill churn) ==");
    println!("{}", table.render());
    let internal = chunked.stored_bytes.saturating_sub(chunked.payload_bytes);
    println!(
        "the tradeoff, quantified: variable segments hit {} fragmentation \
         stalls (peak external fragmentation {:.0}%) and need a free-list \
         allocator; fixed chunks trade that for {} of bounded round-up \
         waste ({:.1}% of payload) and O(1) fragmentation-free allocation — \
         the paper's §4 choice.",
        variable.fragmentation_failures,
        variable.peak_fragmentation * 100.0,
        bytes(internal),
        internal as f64 / chunked.payload_bytes as f64 * 100.0
    );
}
