//! Ablation A4 — Cafe's unseen-chunk IAT estimate (§6 optimisation).
//!
//! Cafe estimates the popularity of a never-seen chunk of a partially
//! cached video as the largest IAT among that video's cached chunks.
//! This ablation toggles the optimisation on the Figure 4 setup to show
//! what it buys.
//!
//! The α × {on, off} grid (4 cells) runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_unseen_iat [--scale f] [--days n]`

use vcdn_bench::{arg_days, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A4: {} requests, disk={disk}", trace.len());

    let alphas = [1.0, 2.0];
    let cells: Vec<Cell<f64>> = alphas
        .iter()
        .flat_map(|&alpha| {
            let trace = &trace;
            [true, false].into_iter().map(move |estimate| {
                let costs = CostModel::from_alpha(alpha).expect("valid alpha");
                let tag = if estimate { "on" } else { "off" };
                Cell::new(format!("alpha={alpha} estimate {tag}"), move || {
                    let mut cache = CafeCache::new(
                        CafeConfig::new(disk, k, costs).with_unseen_chunk_estimate(estimate),
                    );
                    Replayer::new(ReplayConfig::bench(k, costs))
                        .replay(trace, &mut cache)
                        .efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("ablation A4", cells).values();

    let mut table = Table::new(vec![
        "alpha",
        "estimate ON (paper)",
        "estimate OFF",
        "delta",
    ]);
    for (i, alpha) in alphas.iter().enumerate() {
        let (on, off) = (e[i * 2], e[i * 2 + 1]);
        table.row(vec![
            format!("{alpha}"),
            eff(on),
            eff(off),
            format!("{:+.3}", on - off),
        ]);
    }
    println!("== Ablation A4: Cafe unseen-chunk IAT estimate (europe) ==");
    println!("{}", table.render());
}
