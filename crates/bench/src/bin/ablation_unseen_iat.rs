//! Ablation A4 — Cafe's unseen-chunk IAT estimate (§6 optimisation).
//!
//! Cafe estimates the popularity of a never-seen chunk of a partially
//! cached video as the largest IAT among that video's cached chunks.
//! This ablation toggles the optimisation on the Figure 4 setup to show
//! what it buys.
//!
//! Usage: `ablation_unseen_iat [--scale f] [--days n]`

use vcdn_bench::{arg_days, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A4: {} requests, disk={disk}", trace.len());

    let mut table = Table::new(vec![
        "alpha",
        "estimate ON (paper)",
        "estimate OFF",
        "delta",
    ]);
    for alpha in [1.0, 2.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let mut on = CafeCache::new(CafeConfig::new(disk, k, costs));
        let mut off =
            CafeCache::new(CafeConfig::new(disk, k, costs).with_unseen_chunk_estimate(false));
        let replayer = Replayer::new(ReplayConfig::new(k, costs));
        let r_on = replayer.replay(&trace, &mut on);
        let r_off = replayer.replay(&trace, &mut off);
        table.row(vec![
            format!("{alpha}"),
            eff(r_on.efficiency()),
            eff(r_off.efficiency()),
            format!("{:+.3}", r_on.efficiency() - r_off.efficiency()),
        ]);
        eprintln!("  alpha={alpha} done");
    }
    println!("== Ablation A4: Cafe unseen-chunk IAT estimate (europe) ==");
    println!("{}", table.render());
}
