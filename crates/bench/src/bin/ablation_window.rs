//! Ablation A1 — Cafe's look-ahead window `T`.
//!
//! The paper (§6) sets `T` to the cache age: "a natural choice ... which
//! has yielded highest efficiencies in our experiments". This ablation
//! compares that choice against fixed windows on the Figure 3 setup
//! (Europe, 1 TB-scaled, α = 2).
//!
//! Usage: `ablation_window [--scale f] [--days n]`

use vcdn_bench::{arg_days, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig, WindowPolicy};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A1: {} requests, disk={disk}", trace.len());

    let variants: Vec<(String, WindowPolicy)> = vec![
        ("cache-age (paper)".into(), WindowPolicy::CacheAge),
        (
            "fixed 1h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(1)),
        ),
        (
            "fixed 6h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(6)),
        ),
        (
            "fixed 24h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(24)),
        ),
        (
            "fixed 72h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(72)),
        ),
    ];
    let mut table = Table::new(vec!["window", "efficiency", "ingress%", "redirect%"]);
    for (name, window) in variants {
        let mut cache = CafeCache::new(CafeConfig::new(disk, k, costs).with_window(window));
        let r = Replayer::new(ReplayConfig::new(k, costs)).replay(&trace, &mut cache);
        table.row(vec![
            name.clone(),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
        ]);
        eprintln!("  {name} done");
    }
    println!("== Ablation A1: Cafe look-ahead window T (europe, alpha=2) ==");
    println!("{}", table.render());
    println!("paper anchor: T = cache age yields the highest efficiency");
}
