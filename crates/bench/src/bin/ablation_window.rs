//! Ablation A1 — Cafe's look-ahead window `T`.
//!
//! The paper (§6) sets `T` to the cache age: "a natural choice ... which
//! has yielded highest efficiencies in our experiments". This ablation
//! compares that choice against fixed windows on the Figure 3 setup
//! (Europe, 1 TB-scaled, α = 2).
//!
//! One grid cell per window variant runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_window [--scale f] [--days n]`

use vcdn_bench::{arg_days, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig, WindowPolicy};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A1: {} requests, disk={disk}", trace.len());

    let variants: Vec<(String, WindowPolicy)> = vec![
        ("cache-age (paper)".into(), WindowPolicy::CacheAge),
        (
            "fixed 1h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(1)),
        ),
        (
            "fixed 6h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(6)),
        ),
        (
            "fixed 24h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(24)),
        ),
        (
            "fixed 72h".into(),
            WindowPolicy::Fixed(DurationMs::from_hours(72)),
        ),
    ];
    let cells: Vec<Cell<ReplayReport>> = variants
        .iter()
        .map(|(name, window)| {
            let trace = &trace;
            let window = *window;
            Cell::new(name.clone(), move || {
                let mut cache = CafeCache::new(CafeConfig::new(disk, k, costs).with_window(window));
                Replayer::new(ReplayConfig::bench(k, costs)).replay(trace, &mut cache)
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("ablation A1", cells).values();

    let mut table = Table::new(vec!["window", "efficiency", "ingress%", "redirect%"]);
    for ((name, _), r) in variants.iter().zip(&reports) {
        table.row(vec![
            name.clone(),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
        ]);
    }
    println!("== Ablation A1: Cafe look-ahead window T (europe, alpha=2) ==");
    println!("{}", table.render());
    println!("paper anchor: T = cache age yields the highest efficiency");
}
