//! Observed replay: runs the standard workload through all four policies
//! (LRU, xLRU, Cafe, Psychic) with full telemetry — scoped metrics,
//! decision events and the trace-time series — and writes the combined
//! JSONL telemetry bundle (one bundle per policy, concatenated in policy
//! order).
//!
//! The export is deterministic: wall-clock timing histograms are excluded,
//! every cell owns its state, and bundles are emitted in input order, so
//! the file is byte-identical for any `VCDN_WORKERS` setting. Validate it
//! with the `obs_check` binary; `OBSERVABILITY.md` documents the schema.
//!
//! Flags: `--scale <f>` (default 1/16), `--days <n>` (default 30),
//! `--interval-mins <n>` sample interval (default 60),
//! `--window-mins <n>` health-window width (default 1440 — one window
//! per trace day; 0 disables the window/alert sections),
//! `--events <n>` retained decision events per policy (default 4096),
//! `--out <path>` (default `results/telemetry.jsonl`),
//! `--time-decisions` to also fill the (unexported) latency histogram.

use vcdn_bench::{
    arg_days, arg_flag, arg_switch, sweep, trace_for, Algo, Scale, EXPERIMENT_SEED,
    PAPER_DISK_BYTES,
};
use vcdn_sim::observe::{grid_jsonl, telemetry_cell, TelemetryConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let interval_mins: u64 = arg_flag("interval-mins").unwrap_or(60);
    let window_mins: u64 = arg_flag("window-mins").unwrap_or(1440);
    let events: usize = arg_flag("events").unwrap_or(4096);
    let out: String = arg_flag("out").unwrap_or_else(|| "results/telemetry.jsonl".to_string());
    let time_decisions = arg_switch("time-decisions");

    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let telemetry = TelemetryConfig::new()
        .with_sample_interval(DurationMs::from_secs(interval_mins * 60))
        .with_window(DurationMs::from_secs(window_mins * 60))
        .with_event_capacity(events)
        .with_time_decisions(time_decisions);
    eprintln!(
        "[replay_observe] scale={} days={days} disk={disk} chunks, alpha=2, \
         interval={interval_mins}min window={window_mins}min events={events} \
         seed={EXPERIMENT_SEED}",
        scale.0
    );

    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("[replay_observe] trace: {} requests", trace.len());

    let trace_ref = &trace;
    let cells = [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic]
        .into_iter()
        .map(|algo| {
            telemetry_cell(
                algo.name(),
                Replayer::new(ReplayConfig::bench(k, costs)),
                trace_ref,
                telemetry,
                move || algo.build(trace_ref, disk, k, costs),
            )
        })
        .collect();
    let run = sweep("replay_observe", cells);

    let mut table = Table::new(vec![
        "policy",
        "efficiency",
        "samples",
        "windows",
        "alerts",
        "events",
        "dropped",
        "evictions",
    ]);
    for cell in &run.results {
        let (report, bundle) = &cell.value;
        let evictions = bundle
            .metrics
            .iter()
            .find(|m| m.name.ends_with("evicted_chunks_total"))
            .map_or(0, |m| m.value);
        table.row(vec![
            report.policy.to_string(),
            eff(report.efficiency()),
            bundle.series.len().to_string(),
            bundle.windows.len().to_string(),
            bundle.alerts.len().to_string(),
            bundle.events.len().to_string(),
            bundle.events_dropped.to_string(),
            evictions.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Warm-up view: cumulative Eq. 2 efficiency converging toward the
    // aggregate as the cache fills (the paper's §9 warm-up phase).
    let first = &run.results[1]; // xlru — the paper's first algorithm
    let series = &first.value.1.series;
    if !series.is_empty() {
        let mut warmup = Table::new(vec!["t", "interval eff", "cum eff", "occupancy"]);
        let picks = 6.min(series.len());
        for i in 0..picks {
            let s = &series[(series.len() - 1) * i / (picks - 1).max(1)];
            warmup.row(vec![
                format!("{:.1}d", s.t_ms as f64 / 86_400_000.0),
                eff(s.efficiency),
                eff(s.cum_efficiency),
                format!("{}/{}", s.occupancy_chunks, s.capacity_chunks),
            ]);
        }
        println!("warm-up ({}):", first.value.0.policy);
        println!("{}", warmup.render());
    }

    let jsonl = grid_jsonl(&run.results);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir:?}: {e}"));
    }
    std::fs::write(&out, &jsonl).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!(
        "[replay_observe] wrote {out}: {} lines, {} bytes",
        jsonl.lines().count(),
        jsonl.len()
    );
}
