//! Ablation A5 — chunk size `K`.
//!
//! The paper uses K = 2 MB throughout ("e.g., 2 MB", §4). This sweep
//! holds the disk's *byte* capacity constant while varying K: small
//! chunks track intra-file popularity more precisely but multiply
//! metadata; large chunks over-fetch partially requested data.
//!
//! Usage: `ablation_chunk_size [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A5: {} requests", trace.len());

    let mut table = Table::new(vec!["K", "disk chunks", "xlru", "cafe", "psychic"]);
    for mb in [1u64, 2, 4, 8] {
        let k = ChunkSize::new(mb * 1024 * 1024).expect("non-zero");
        let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
        let reports = run_paper_three(&trace, disk, k, costs);
        let e: Vec<f64> = reports.iter().map(|r| r.efficiency()).collect();
        table.row(vec![
            format!("{mb}MiB{}", if mb == 2 { " (paper)" } else { "" }),
            disk.to_string(),
            eff(e[0]),
            eff(e[1]),
            eff(e[2]),
        ]);
        eprintln!("  K={mb}MiB done");
    }
    println!("== Ablation A5: chunk size sweep (europe, alpha={alpha}, constant disk bytes) ==");
    println!("{}", table.render());
}
