//! Ablation A5 — chunk size `K`.
//!
//! The paper uses K = 2 MB throughout ("e.g., 2 MB", §4). This sweep
//! holds the disk's *byte* capacity constant while varying K: small
//! chunks track intra-file popularity more precisely but multiply
//! metadata; large chunks over-fetch partially requested data.
//!
//! The K × algorithm grid (12 cells) runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_chunk_size [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A5: {} requests", trace.len());

    let mbs = [1u64, 2, 4, 8];
    let ks: Vec<ChunkSize> = mbs
        .iter()
        .map(|mb| ChunkSize::new(mb * 1024 * 1024).expect("non-zero"))
        .collect();
    let cells: Vec<Cell<f64>> = mbs
        .iter()
        .zip(&ks)
        .flat_map(|(&mb, &k)| {
            let trace = &trace;
            let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
            Algo::paper_three().into_iter().map(move |algo| {
                Cell::new(format!("K={mb}MiB {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs).efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("ablation A5", cells).values();

    let mut table = Table::new(vec!["K", "disk chunks", "xlru", "cafe", "psychic"]);
    for (i, (&mb, &k)) in mbs.iter().zip(&ks).enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        table.row(vec![
            format!("{mb}MiB{}", if mb == 2 { " (paper)" } else { "" }),
            scale.disk_chunks(PAPER_DISK_BYTES, k).to_string(),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
        ]);
    }
    println!("== Ablation A5: chunk size sweep (europe, alpha={alpha}, constant disk bytes) ==");
    println!("{}", table.render());
}
