//! Ablation A7 — the §2 resource-pressure motivation, made concrete.
//!
//! The paper motivates `α_F2R > 1` with two server-side effects: disk
//! writes steal 1.2–1.3 reads each, and ingress during egress-saturated
//! hours is wasted. This ablation replays the Europe workload at several
//! α values and reports both effects through the `vcdn-sim` resource
//! models: raising α should monotonically reduce read-capacity loss and
//! wasted saturated-hour fill.
//!
//! One grid cell per α runs through the deterministic parallel runner
//! (after a sequential probe that calibrates the egress capacity); set
//! `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_resource_models [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{bytes, eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{DiskIoModel, EgressModel, ReplayReport};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A7: {} requests, disk={disk}", trace.len());

    // Egress capacity: set to ~70% of the busiest hour's served traffic at
    // alpha=1, so peak hours saturate (the paper's constrained regime).
    let probe = run_algo(Algo::Cafe, &trace, disk, k, CostModel::balanced());
    let peak = probe
        .windows
        .iter()
        .map(|w| w.traffic.served_bytes())
        .max()
        .unwrap_or(0);
    let egress = EgressModel {
        capacity_bytes_per_window: (peak as f64 * 0.7) as u64,
    };
    let io = DiskIoModel::paper_default();

    let alphas = [0.5, 1.0, 2.0, 4.0];
    let cells: Vec<Cell<ReplayReport>> = alphas
        .iter()
        .map(|&alpha| {
            let trace = &trace;
            let costs = CostModel::from_alpha(alpha).expect("valid alpha");
            Cell::new(format!("alpha={alpha} cafe"), move || {
                run_algo(Algo::Cafe, trace, disk, k, costs)
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("ablation A7", cells).values();

    let mut table = Table::new(vec![
        "alpha",
        "efficiency",
        "ingress%",
        "read-capacity loss",
        "saturated hours",
        "wasted fill (saturated)",
    ]);
    for (alpha, r) in alphas.iter().zip(&reports) {
        let sat = egress.summarize(r);
        table.row(vec![
            format!("{alpha}"),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}%", io.read_capacity_loss(&r.steady) * 100.0),
            format!("{}/{}", sat.saturated_windows, sat.active_windows),
            bytes(sat.wasted_fill_bytes),
        ]);
    }
    println!("== Ablation A7: resource pressure vs alpha (cafe, europe) ==");
    println!("{}", table.render());
    println!(
        "paper anchor (par. 2): every write-block costs 1.2-1.3 reads; \
         fills during egress-saturated hours are wasted ingress"
    );
}
