//! Figure 3 — "Ingress, redirection, and overall cache efficiency over the
//! 1-month period" (European server, 1 TB disk, α_F2R = 2).
//!
//! Replays the month-long Europe trace through xLRU, Cafe and Psychic and
//! prints (a) the paper's headline summary — the steady-state efficiency
//! deltas (paper: Cafe +10.1 %, Psychic +12.7 % over xLRU) — and (b) the
//! hourly series behind the three panels. `--csv` emits the full hourly
//! series; default output prints a 6-hourly digest to stay readable.
//!
//! Usage: `fig3_timeseries [--scale f] [--days n] [--csv]`

use vcdn_bench::{arg_days, arg_switch, run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("2.0 is a valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig3: europe, {days} days, alpha=2, disk={disk} chunks (scale {})",
        scale.0
    );
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("trace: {} requests", trace.len());
    let reports = run_paper_three(&trace, disk, k, costs);

    // Headline summary (paper: xLRU -> Cafe +10.1%, -> Psychic +12.7%).
    let base = reports[0].efficiency();
    let mut summary = Table::new(vec![
        "algo",
        "efficiency",
        "delta vs xlru",
        "ingress%",
        "redirect%",
        "paper delta",
    ]);
    let paper_delta = ["-", "+0.101", "+0.127"];
    for (i, r) in reports.iter().enumerate() {
        summary.row(vec![
            r.policy.to_string(),
            eff(r.efficiency()),
            if i == 0 {
                "-".into()
            } else {
                format!("{:+.3}", r.efficiency() - base)
            },
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
            paper_delta[i].to_string(),
        ]);
    }
    println!("== Figure 3 summary (steady state, second half) ==");
    println!("{}", summary.render());

    // Time series.
    let csv = arg_switch("csv");
    let step = if csv { 1 } else { 6 };
    let mut series = Table::new(vec![
        "hour",
        "xlru_ing%",
        "xlru_red%",
        "xlru_eff",
        "cafe_ing%",
        "cafe_red%",
        "cafe_eff",
        "psy_ing%",
        "psy_red%",
        "psy_eff",
    ]);
    let hours = reports.iter().map(|r| r.windows.len()).max().unwrap_or(0);
    for h in (0..hours).step_by(step) {
        let mut row = vec![h.to_string()];
        for r in &reports {
            match r.windows.get(h) {
                Some(w) => {
                    row.push(format!("{:.1}", w.traffic.ingress_pct()));
                    row.push(format!("{:.1}", w.traffic.redirect_pct()));
                    row.push(eff(w.traffic.efficiency(costs)));
                }
                None => row.extend(["-".into(), "-".into(), "-".into()]),
            }
        }
        series.row(row);
    }
    println!(
        "== Figure 3 series ({}) ==",
        if csv { "hourly CSV" } else { "6-hourly digest" }
    );
    if csv {
        println!("{}", series.to_csv());
    } else {
        println!("{}", series.render());
    }
}
