//! Figure 5 — "Different operating points of each algorithm in the
//! tradeoff between cache fill and redirection, governed by α_F2R"
//! (European server, 1 TB disk).
//!
//! For each algorithm, the four operating points (α = 4, 2, 1, 0.5 from
//! left to right in the paper) are printed as (ingress-to-egress %,
//! redirect %) pairs. Paper anchors: xLRU's ingress floor is ≈15 % even
//! at α=4, while Cafe and Psychic "closely comply with the given costs
//! and shrink the ingress to only a few percent".
//!
//! The whole α × algorithm grid (12 cells) runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `fig5_operating_points [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::Table;
use vcdn_sim::runner::Cell;
use vcdn_sim::ReplayReport;
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig5: europe, {days} days, disk={disk} chunks (scale {})",
        scale.0
    );
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("trace: {} requests", trace.len());

    // Paper order: points from left (costly ingress) to right (cheap).
    let alphas = [4.0, 2.0, 1.0, 0.5];
    let cells: Vec<Cell<ReplayReport>> = alphas
        .iter()
        .flat_map(|&alpha| {
            let trace = &trace;
            Algo::paper_three().into_iter().map(move |algo| {
                let costs = CostModel::from_alpha(alpha).expect("valid alpha");
                Cell::new(format!("alpha={alpha} {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs)
                })
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("fig5", cells).values();

    let mut table = Table::new(vec![
        "alpha",
        "xlru (ing%, red%)",
        "cafe (ing%, red%)",
        "psychic (ing%, red%)",
    ]);
    for (i, alpha) in alphas.iter().enumerate() {
        let mut row = vec![format!("{alpha}")];
        for r in &reports[i * 3..i * 3 + 3] {
            row.push(format!("({:.1}, {:.1})", r.ingress_pct(), r.redirect_pct()));
        }
        table.row(row);
    }
    println!("== Figure 5: operating points (ingress% vs redirect%) ==");
    println!("{}", table.render());
    println!(
        "paper anchors: xlru ingress floor ~15% at alpha=4; cafe/psychic \
         shrink ingress to a few percent; at alpha=0.5 all points shift \
         to high ingress / low redirect"
    );
}
