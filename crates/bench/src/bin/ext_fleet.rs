//! Extension E4 — a fleet of edges behind one capture site.
//!
//! Three edge servers in different timezones (their diurnal peaks 8 hours
//! apart) redirect to one shared parent. Because the peaks interleave,
//! the parent sees a smoother aggregate than any single edge — the load
//! profile that makes dedicated capture sites economical, and the setting
//! for the paper's §10 "adjust traffic between any group of
//! constrained/non-constrained servers".
//!
//! The three per-edge traces are generated in parallel through the
//! deterministic grid runner (the fleet replay itself shares one parent
//! cache and stays sequential); set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ext_fleet [--scale f] [--days n] [--edge-alpha a]`

use vcdn_bench::{arg_days, arg_flag, sweep, Scale, EXPERIMENT_SEED, PAPER_DISK_BYTES};
use vcdn_core::{CacheConfig, CachePolicy, CafeCache, CafeConfig, XlruCache};
use vcdn_sim::replay_fleet;
use vcdn_sim::report::{bytes, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let edge_alpha: f64 = arg_flag("edge-alpha").unwrap_or(2.0);
    let k = ChunkSize::DEFAULT;
    let edge_disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let parent_disk = edge_disk * 4;

    let profiles = [
        ServerProfile::europe(),
        ServerProfile::asia(),
        ServerProfile::north_america(),
    ];
    let trace_cells: Vec<Cell<Trace>> = profiles
        .iter()
        .map(|p| {
            let p = p.clone();
            Cell::new(format!("trace {}", p.name), move || {
                TraceGenerator::new(scale.profile(p), EXPERIMENT_SEED)
                    .generate(DurationMs::from_days(days))
            })
        })
        .collect();
    let traces: Vec<Trace> = sweep("ext E4 traces", trace_cells).values();
    eprintln!(
        "ext E4: {} edges, {} total requests, edge={edge_disk} parent={parent_disk} chunks",
        traces.len(),
        traces.iter().map(Trace::len).sum::<usize>()
    );

    let edge_costs = CostModel::from_alpha(edge_alpha).expect("valid alpha");
    let mut edges: Vec<Box<dyn CachePolicy>> = traces
        .iter()
        .map(|_| {
            Box::new(CafeCache::new(CafeConfig::new(edge_disk, k, edge_costs)))
                as Box<dyn CachePolicy>
        })
        .collect();
    let mut parent = XlruCache::new(CacheConfig::new(parent_disk, k, CostModel::balanced()));
    let report = replay_fleet(&traces, &mut edges, &mut parent);

    let mut table = Table::new(vec![
        "tier", "requests", "hit", "fill", "redirect", "ingress%",
    ]);
    for (i, (profile, edge)) in profiles.iter().zip(&report.edges).enumerate() {
        table.row(vec![
            format!("edge {} ({})", i, profile.name),
            edge.total_requests().to_string(),
            bytes(edge.hit_bytes),
            bytes(edge.fill_bytes),
            bytes(edge.redirect_bytes),
            format!("{:.1}", edge.ingress_pct()),
        ]);
    }
    table.row(vec![
        "parent (shared)".into(),
        report.parent.total_requests().to_string(),
        bytes(report.parent.hit_bytes),
        bytes(report.parent.fill_bytes),
        bytes(report.parent.redirect_bytes),
        format!("{:.1}", report.parent.ingress_pct()),
    ]);
    println!("== Extension E4: three-edge fleet behind one parent (edge alpha={edge_alpha}) ==");
    println!("{}", table.render());
    println!(
        "cdn hit rate {:.3}; origin traffic {}; edge fills total {}",
        report.cdn_hit_rate(),
        bytes(report.origin_bytes),
        bytes(report.edge_fill_bytes()),
    );
    println!(
        "note the parent's cross-edge hits: content redirected by one edge \
         is served to the next edge's users from parent cache"
    );
}
