//! Ablation A2 — Cafe's EWMA weight γ (Eq. 8).
//!
//! The paper fixes γ = 0.25 for all experiments. This sweep shows the
//! sensitivity: small γ reacts slowly to popularity shifts, large γ
//! overreacts to transient gaps.
//!
//! One grid cell per γ runs through the deterministic parallel runner;
//! set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_gamma [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CafeCache, CafeConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A2: {} requests, disk={disk}", trace.len());

    let gammas = [0.05, 0.1, 0.25, 0.5, 0.75, 1.0];
    let cells: Vec<Cell<ReplayReport>> = gammas
        .iter()
        .map(|&gamma| {
            let trace = &trace;
            Cell::new(format!("gamma={gamma}"), move || {
                let mut cache = CafeCache::new(CafeConfig::new(disk, k, costs).with_gamma(gamma));
                Replayer::new(ReplayConfig::bench(k, costs)).replay(trace, &mut cache)
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("ablation A2", cells).values();

    let mut table = Table::new(vec!["gamma", "efficiency", "ingress%", "redirect%"]);
    for (gamma, r) in gammas.iter().zip(&reports) {
        table.row(vec![
            format!(
                "{gamma}{}",
                if (gamma - 0.25).abs() < 1e-9 {
                    " (paper)"
                } else {
                    ""
                }
            ),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
        ]);
    }
    println!("== Ablation A2: Cafe EWMA gamma sweep (europe, alpha={alpha}) ==");
    println!("{}", table.render());
}
