//! Extension E5 — hash-mod bucketing over co-located servers (§2,
//! footnote 2).
//!
//! The paper recommends "bucketizing the large space of file IDs (e.g.,
//! using hash-mod) ... for dividing the file ID space over co-located
//! servers to balance load and minimize co-located duplicates". This
//! experiment replays one location's trace through four co-located Cafe
//! caches under (a) hash-mod sharding and (b) content-oblivious
//! round-robin, and reports exactly those two quantities.
//!
//! Usage: `ext_colocated_shards [--scale f] [--days n] [--servers n]`

use vcdn_bench::{arg_days, arg_flag, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CachePolicy, CafeCache, CafeConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::shard::{replay_colocated, Assignment};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel, TrafficCounter};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let servers: usize = arg_flag("servers").unwrap_or(4);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    // The location's total disk is 1 TB-scaled, split over the servers.
    let per_server_disk = scale.disk_chunks(PAPER_DISK_BYTES, k) / servers as u64;
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!(
        "ext E5: {} requests, {servers} servers x {per_server_disk} chunks",
        trace.len()
    );

    let make = || -> Vec<Box<dyn CachePolicy>> {
        (0..servers)
            .map(|_| {
                Box::new(CafeCache::new(CafeConfig::new(per_server_disk, k, costs)))
                    as Box<dyn CachePolicy>
            })
            .collect()
    };

    let mut table = Table::new(vec![
        "assignment",
        "efficiency",
        "duplicates",
        "duplicate%",
        "load imbalance",
    ]);
    for (name, assignment) in [
        ("hash-mod shards (paper)", Assignment::Sharded),
        ("round-robin", Assignment::RoundRobin),
    ] {
        let mut caches = make();
        let rep = replay_colocated(&trace, &mut caches, assignment);
        let combined = rep
            .servers
            .iter()
            .fold(TrafficCounter::default(), |acc, s| acc + *s);
        table.row(vec![
            name.into(),
            eff(combined.efficiency(costs)),
            rep.duplicate_chunks().to_string(),
            format!(
                "{:.1}%",
                rep.duplicate_chunks() as f64 / rep.distinct_cached_chunks.max(1) as f64 * 100.0
            ),
            format!("{:.3}", rep.load_imbalance()),
        ]);
        eprintln!("  {name} done");
    }
    println!("== Extension E5: co-located server assignment ({servers} servers) ==");
    println!("{}", table.render());
    println!(
        "paper's footnote 2: hash-mod bucketing balances load and \
         minimises co-located duplicates; the duplicated copies under \
         round-robin waste disk that sharding turns into extra distinct \
         content (higher efficiency)"
    );
}
