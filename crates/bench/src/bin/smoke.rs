//! Quick calibration run: Europe profile, alpha in {1, 2}, one disk size.
//! Not a paper figure; used to sanity-check workload calibration.

use vcdn_bench::{run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, pct, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days: u64 = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--days")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(10);
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    eprintln!("scale={} days={days} disk={disk} chunks", scale.0);
    let t0 = std::time::Instant::now();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    let stats = vcdn_trace::stats::trace_stats(&trace, k);
    eprintln!(
        "trace: {} requests, {} videos, {} chunks unique, {:.1} GiB requested, zipf~{:.2}, tail={:.2} ({:.1}s)",
        stats.requests,
        stats.unique_videos,
        stats.unique_chunks,
        stats.requested_chunk_bytes as f64 / (1u64 << 30) as f64,
        stats.zipf_slope,
        stats.tail_fraction,
        t0.elapsed().as_secs_f64()
    );
    let mut table = Table::new(vec!["alpha", "algo", "efficiency", "ingress%", "redirect%"]);
    for alpha in [1.0, 2.0] {
        let costs = CostModel::from_alpha(alpha).unwrap();
        for r in run_paper_three(&trace, disk, k, costs) {
            table.row(vec![
                format!("{alpha}"),
                r.policy.to_string(),
                eff(r.efficiency()),
                pct(r.ingress_pct() / 100.0),
                pct(r.redirect_pct() / 100.0),
            ]);
            eprintln!(
                "  done {} alpha={alpha} ({:.1}s)",
                r.policy,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!("{}", table.render());
}
