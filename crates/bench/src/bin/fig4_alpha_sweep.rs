//! Figure 4 — "Efficiency of the algorithms for different
//! ingress-to-redirect configuration" (European server, 1 TB disk).
//!
//! Each α ∈ {0.5, 1, 2, 4} produces one bar group (xLRU, Cafe, Psychic,
//! left to right). Paper anchors: α=1 → Cafe 61 %, ≈2 % over xLRU;
//! α=2 → xLRU 62 %, Cafe 73 %, Psychic 75 %; for α=0.5 a visible gap to
//! Psychic remains because xLRU and Cafe intentionally never fill a file
//! on its first-ever request.
//!
//! The whole α × algorithm grid (12 cells) runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `fig4_alpha_sweep [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig4: europe, {days} days, disk={disk} chunks (scale {})",
        scale.0
    );
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("trace: {} requests", trace.len());

    let alphas = [0.5, 1.0, 2.0, 4.0];
    let cells: Vec<Cell<f64>> = alphas
        .iter()
        .flat_map(|&alpha| {
            let trace = &trace;
            Algo::paper_three().into_iter().map(move |algo| {
                let costs = CostModel::from_alpha(alpha).expect("valid alpha");
                Cell::new(format!("alpha={alpha} {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs).efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("fig4", cells).values();

    let mut table = Table::new(vec!["alpha", "xlru", "cafe", "psychic", "cafe - xlru"]);
    for (i, alpha) in alphas.iter().enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        table.row(vec![
            format!("{alpha}"),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
            format!("{:+.3}", g[1] - g[0]),
        ]);
    }
    println!("== Figure 4: efficiency vs alpha_F2R (europe, 1 TB-scaled) ==");
    println!("{}", table.render());
    println!(
        "paper anchors: alpha=1 -> cafe 0.61 (~+0.02 over xlru); \
         alpha=2 -> 0.62 / 0.73 / 0.75"
    );
}
