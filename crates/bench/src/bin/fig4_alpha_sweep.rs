//! Figure 4 — "Efficiency of the algorithms for different
//! ingress-to-redirect configuration" (European server, 1 TB disk).
//!
//! Each α ∈ {0.5, 1, 2, 4} produces one bar group (xLRU, Cafe, Psychic,
//! left to right). Paper anchors: α=1 → Cafe 61 %, ≈2 % over xLRU;
//! α=2 → xLRU 62 %, Cafe 73 %, Psychic 75 %; for α=0.5 a visible gap to
//! Psychic remains because xLRU and Cafe intentionally never fill a file
//! on its first-ever request.
//!
//! Usage: `fig4_alpha_sweep [--scale f] [--days n]`

use vcdn_bench::{arg_days, run_paper_three, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);

    eprintln!(
        "fig4: europe, {days} days, disk={disk} chunks (scale {})",
        scale.0
    );
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("trace: {} requests", trace.len());

    let mut table = Table::new(vec!["alpha", "xlru", "cafe", "psychic", "cafe - xlru"]);
    for alpha in [0.5, 1.0, 2.0, 4.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let reports = run_paper_three(&trace, disk, k, costs);
        let e: Vec<f64> = reports.iter().map(|r| r.efficiency()).collect();
        table.row(vec![
            format!("{alpha}"),
            eff(e[0]),
            eff(e[1]),
            eff(e[2]),
            format!("{:+.3}", e[1] - e[0]),
        ]);
        eprintln!("  alpha={alpha} done");
    }
    println!("== Figure 4: efficiency vs alpha_F2R (europe, 1 TB-scaled) ==");
    println!("{}", table.render());
    println!(
        "paper anchors: alpha=1 -> cafe 0.61 (~+0.02 over xlru); \
         alpha=2 -> 0.62 / 0.73 / 0.75"
    );
}
