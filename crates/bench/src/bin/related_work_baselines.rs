//! Related-work study — why cache *replacement* alone is not the lever
//! (paper §3).
//!
//! The paper argues that classic replacement policies (LRU, LFU, LRU-K,
//! GDS variants) "address the classic problem of cache replacement,
//! whereas in our case, it is about deciding between cache replacement
//! and redirection". This experiment replays the Europe workload through
//! the whole always-fill family (LRU, LFU, LRU-2) next to the
//! admission-controlled caches (xLRU, Cafe): the always-fill policies
//! cluster tightly and cannot react to `α_F2R` at all, while admission
//! control moves the operating point.
//!
//! Usage: `related_work_baselines [--scale f] [--days n]`

use vcdn_bench::{arg_days, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{
    baselines::{GdspCache, LfuCache, LruKCache},
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, XlruCache,
};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("related-work: {} requests, disk={disk}", trace.len());

    let mut table = Table::new(vec![
        "alpha",
        "policy",
        "admission?",
        "efficiency",
        "ingress%",
        "redirect%",
    ]);
    for alpha in [1.0, 2.0] {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let cache_cfg = CacheConfig::new(disk, k, costs);
        let mut policies: Vec<(Box<dyn CachePolicy>, &str)> = vec![
            (Box::new(LruCache::new(cache_cfg)), "no (always fill)"),
            (Box::new(LfuCache::new(cache_cfg)), "no (always fill)"),
            (Box::new(LruKCache::lru2(cache_cfg)), "no (always fill)"),
            (Box::new(GdspCache::new(cache_cfg)), "no (always fill)"),
            (Box::new(XlruCache::new(cache_cfg)), "yes (Eq. 5)"),
            (
                Box::new(CafeCache::new(CafeConfig::new(disk, k, costs))),
                "yes (Eqs. 6-7)",
            ),
        ];
        let replayer = Replayer::new(ReplayConfig::new(k, costs));
        for (policy, admission) in &mut policies {
            let r = replayer.replay(&trace, policy.as_mut());
            table.row(vec![
                format!("{alpha}"),
                r.policy.to_string(),
                (*admission).to_string(),
                eff(r.efficiency()),
                format!("{:.1}", r.ingress_pct()),
                format!("{:.1}", r.redirect_pct()),
            ]);
            eprintln!("  alpha={alpha} {} done", r.policy);
        }
    }
    println!("== Related work: replacement-only vs admission-controlled caches ==");
    println!("{}", table.render());
    println!(
        "paper's point (par. 3): the always-fill family cannot trade ingress \
         for redirects; their ingress%% is identical at every alpha, while \
         xlru/cafe move with the knob"
    );
}
