//! Related-work study — why cache *replacement* alone is not the lever
//! (paper §3).
//!
//! The paper argues that classic replacement policies (LRU, LFU, LRU-K,
//! GDS variants) "address the classic problem of cache replacement,
//! whereas in our case, it is about deciding between cache replacement
//! and redirection". This experiment replays the Europe workload through
//! the whole always-fill family (LRU, LFU, LRU-2) next to the
//! admission-controlled caches (xLRU, Cafe): the always-fill policies
//! cluster tightly and cannot react to `α_F2R` at all, while admission
//! control moves the operating point.
//!
//! The α × policy grid (12 cells) runs through the deterministic
//! parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `related_work_baselines [--scale f] [--days n]`

use vcdn_bench::{arg_days, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{
    baselines::{GdspCache, LfuCache, LruKCache},
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, XlruCache,
};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

/// The compared policies: constructor plus the admission-control note.
type Entry = (fn(CacheConfig) -> Box<dyn CachePolicy>, &'static str);

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("related-work: {} requests, disk={disk}", trace.len());

    let entries: [Entry; 6] = [
        (|c| Box::new(LruCache::new(c)), "no (always fill)"),
        (|c| Box::new(LfuCache::new(c)), "no (always fill)"),
        (|c| Box::new(LruKCache::lru2(c)), "no (always fill)"),
        (|c| Box::new(GdspCache::new(c)), "no (always fill)"),
        (|c| Box::new(XlruCache::new(c)), "yes (Eq. 5)"),
        (
            |c| {
                Box::new(CafeCache::new(CafeConfig::new(
                    c.disk_chunks,
                    c.chunk_size,
                    c.costs,
                )))
            },
            "yes (Eqs. 6-7)",
        ),
    ];

    let alphas = [1.0, 2.0];
    let cells: Vec<Cell<ReplayReport>> = alphas
        .iter()
        .flat_map(|&alpha| {
            let trace = &trace;
            entries.iter().enumerate().map(move |(i, &(build, _))| {
                let costs = CostModel::from_alpha(alpha).expect("valid alpha");
                Cell::new(format!("alpha={alpha} policy {i}"), move || {
                    let mut policy = build(CacheConfig::new(disk, k, costs));
                    Replayer::new(ReplayConfig::bench(k, costs)).replay(trace, policy.as_mut())
                })
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("related-work", cells).values();

    let mut table = Table::new(vec![
        "alpha",
        "policy",
        "admission?",
        "efficiency",
        "ingress%",
        "redirect%",
    ]);
    for (i, alpha) in alphas.iter().enumerate() {
        for (j, (_, admission)) in entries.iter().enumerate() {
            let r = &reports[i * entries.len() + j];
            table.row(vec![
                format!("{alpha}"),
                r.policy.to_string(),
                (*admission).to_string(),
                eff(r.efficiency()),
                format!("{:.1}", r.ingress_pct()),
                format!("{:.1}", r.redirect_pct()),
            ]);
        }
    }
    println!("== Related work: replacement-only vs admission-controlled caches ==");
    println!("{}", table.render());
    println!(
        "paper's point (par. 3): the always-fill family cannot trade ingress \
         for redirects; their ingress%% is identical at every alpha, while \
         xlru/cafe move with the knob"
    );
}
