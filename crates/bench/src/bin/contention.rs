//! Contention scaling bench: the sharded serving engine's aggregate
//! throughput as worker threads grow, with the determinism contract
//! enforced on every run.
//!
//! For each policy (LRU, xLRU, Cafe, Psychic) the standard generated
//! workload is run through a [`ShardedEngine`] at each thread count in
//! the sweep (default 1/2/4/8/16). Per-shard byte counters must be
//! bit-identical across *all* thread counts — the binary asserts it run
//! by run, so a scaling number is only ever reported for a provably
//! deterministic configuration. Results land in `BENCH_PR8.json`
//! (`--out`): deterministic per-shard/aggregate counters plus a
//! machine-dependent `throughput` array per policy.
//!
//! After the timed (detached) reps, each thread count gets one
//! *instrumented* pass: a fresh engine with `attach_obs`, whose report
//! must equal the detached baseline bit-for-bit (observers change
//! nothing — the off-means-free contract, enforced here in both
//! directions). The instrumented pass yields per-thread queue statistics
//! (mean batch wait/service nanoseconds, mean observed queue depth,
//! mean dispatcher push time) recorded inside the timing-excluded
//! `throughput` entries, plus deterministic per-policy fields: the
//! shard-imbalance skew (`max/mean × 1000` over requests and bytes) and
//! the merged heavy-hitter `top_videos` table from the per-shard
//! Space-Saving sketches. `--bundle <path>` additionally writes the
//! instrumented engines' telemetry bundles (first thread count, one per
//! policy) as concatenated JSONL — the document CI's report-smoke job
//! renders and diffs across worker counts.
//!
//! `--check <file>` re-verifies the deterministic fields against a
//! previously written document via the shared baseline machinery —
//! because thread counts live only in timing-excluded fields, a
//! `--threads 1` run checks cleanly against a `--threads 4` golden,
//! which is exactly the cross-thread counter diff CI's contention-smoke
//! job performs.
//!
//! Flags: `--scale <f>` (default 1/16), `--days <n>` (default 30),
//! `--shards <n>` (default 16), `--threads <a,b,c>` (default
//! `1,2,4,8,16`), `--reps <n>` best-of timed runs (default 3),
//! `--out <path>` (default `BENCH_PR8.json`), `--bundle <path>`,
//! `--check <path>`.

use std::sync::Arc;
use std::time::Instant;

use vcdn_bench::{arg_flag, trace_for, Algo, Scale, EXPERIMENT_SEED, PAPER_DISK_BYTES};
use vcdn_core::{
    CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig, XlruCache,
};
use vcdn_obs::{MetricsRegistry, MetricsSink};
use vcdn_sim::engine::{engine_bundle, shard_requests, EngineConfig, EngineReport, ShardedEngine};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::{ServerProfile, Trace};
use vcdn_types::json::Json;
use vcdn_types::{ChunkId, ChunkSize, CostModel, Request};

/// Machine-dependent fields, excluded from golden comparison. `threads`
/// is the sweep shape and `cores` the host's parallelism — not
/// measurements, but they must not break the 1-thread-vs-4-thread CI
/// diff or cross-machine golden checks, so they ride in the timing
/// bucket.
const TIMING: [&str; 3] = ["threads", "throughput", "cores"];

/// One (thread count → best wall seconds) measurement plus the queue
/// statistics of that thread count's instrumented pass (all wall-clock,
/// reported only inside timing-excluded fields).
struct Throughput {
    threads: usize,
    best_secs: f64,
    queue_wait_ns_mean: f64,
    queue_service_ns_mean: f64,
    queue_depth_mean: f64,
    dispatch_push_ns_mean: f64,
}

/// One merged heavy-hitter row (video, Space-Saving count and error).
struct TopVideo {
    video: u64,
    count: u64,
    err: u64,
}

/// One policy's sweep: the deterministic report plus per-thread timing,
/// the merged heavy-hitter table and the first instrumented pass's
/// telemetry bundle.
struct PolicyRun {
    report: EngineReport,
    sweep: Vec<Throughput>,
    top_videos: Vec<TopVideo>,
    bundle_jsonl: String,
}

fn engine_for(
    algo: Algo,
    per_shard: &[Vec<Request>],
    shards: usize,
    disk: u64,
    k: ChunkSize,
    costs: CostModel,
) -> ShardedEngine {
    let cfg = EngineConfig::bench(shards, disk, k, costs).expect("valid engine config");
    ShardedEngine::try_new(cfg, |i, cache| -> Box<dyn CachePolicy> {
        match algo {
            Algo::Lru => Box::new(LruCache::new(cache)),
            Algo::Xlru => Box::new(XlruCache::new(cache)),
            Algo::Cafe => Box::new(CafeCache::new(CafeConfig {
                cache,
                ..CafeConfig::new(cache.disk_chunks, k, costs)
            })),
            Algo::Psychic => Box::new(PsychicCache::new(
                PsychicConfig::new(cache.disk_chunks, k, costs),
                &per_shard[i],
            )),
        }
    })
    .expect("engine builds")
}

/// The fixed shape of one contention sweep.
#[derive(Clone, Copy)]
struct SweepCfg {
    shards: usize,
    disk: u64,
    k: ChunkSize,
    costs: CostModel,
    reps: u32,
}

fn sweep_policy(
    algo: Algo,
    trace: &Trace,
    per_shard: &[Vec<Request>],
    cfg: SweepCfg,
    threads: &[usize],
) -> PolicyRun {
    let SweepCfg {
        shards,
        disk,
        k,
        costs,
        reps,
    } = cfg;
    let requests = trace.len() as f64;
    let mut baseline: Option<EngineReport> = None;
    let mut sweep = Vec::new();
    let mut top_videos = Vec::new();
    let mut bundle_jsonl = String::new();
    for &t in threads {
        let mut best_secs = f64::INFINITY;
        for _ in 0..reps {
            let mut engine = engine_for(algo, per_shard, shards, disk, k, costs);
            let t0 = Instant::now();
            let report = engine.run(trace, t);
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            // The determinism contract, enforced per run: every rep at
            // every thread count must produce bit-identical per-shard
            // counters (EngineReport equality covers each shard's full
            // accounting and excludes the worker count).
            if let Some(base) = &baseline {
                assert_eq!(
                    base,
                    &report,
                    "{}: shard counters diverged at {t} thread(s)",
                    algo.name()
                );
            } else {
                baseline = Some(report);
            }
        }
        // One instrumented pass per thread count: same trace through a
        // fresh observed engine. Its report must equal the detached
        // baseline (off means free, observed means unchanged), and its
        // registry yields the queue statistics for this thread count.
        let registry = Arc::new(MetricsRegistry::new());
        let sink: Arc<dyn MetricsSink> = registry.clone();
        let mut engine = engine_for(algo, per_shard, shards, disk, k, costs);
        engine.attach_obs(&sink, algo.name());
        let observed = engine.run(trace, t);
        assert_eq!(
            baseline.as_ref().expect("baseline set"),
            &observed,
            "{}: instrumentation changed the accounting at {t} thread(s)",
            algo.name()
        );
        let snap = registry.snapshot(false);
        let hist_mean = |suffix: &str| {
            let (mut count, mut sum) = (0u64, 0u64);
            for m in &snap {
                if m.name.ends_with(suffix) {
                    if let Some(h) = &m.histogram {
                        count += h.count;
                        sum += h.sum;
                    }
                }
            }
            if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            }
        };
        if sweep.is_empty() {
            // First thread count: keep the sketch table and the bundle.
            top_videos = merge_top_videos(&observed);
            bundle_jsonl =
                engine_bundle(&observed, &registry, &vcdn_obs::default_rules()).to_jsonl();
        }
        eprintln!(
            "[contention] {:<8} {:>2} thread(s)  {:>12.0} req/s",
            algo.name(),
            t,
            requests / best_secs
        );
        sweep.push(Throughput {
            threads: t,
            best_secs,
            queue_wait_ns_mean: hist_mean(".span.batch_wait_ns"),
            queue_service_ns_mean: hist_mean(".span.batch_service_ns"),
            queue_depth_mean: hist_mean(".span.queue_depth_batches"),
            dispatch_push_ns_mean: hist_mean(".engine.span.dispatch_push_ns"),
        });
    }
    PolicyRun {
        report: baseline.expect("at least one thread count"),
        sweep,
        top_videos,
        bundle_jsonl,
    }
}

/// Merges the per-shard sketches into one table: shards partition videos,
/// so entries never collide — concatenate, re-sort by `(count desc,
/// video asc)` and keep the strongest 8. Deterministic: a pure function
/// of the per-shard exports.
fn merge_top_videos(report: &EngineReport) -> Vec<TopVideo> {
    let mut all: Vec<TopVideo> = report
        .shards
        .iter()
        .flat_map(|s| {
            s.top_videos.iter().map(|e| TopVideo {
                video: e.key >> ChunkId::INDEX_BITS,
                count: e.count,
                err: e.err,
            })
        })
        .collect();
    all.sort_by(|a, b| b.count.cmp(&a.count).then(a.video.cmp(&b.video)));
    all.truncate(8);
    all
}

/// The run parameters recorded in the document header.
struct RunShape<'a> {
    scale: f64,
    days: u64,
    shards: usize,
    disk: u64,
    requests: u64,
    threads: &'a [usize],
    cores: usize,
}

fn json_of(shape: &RunShape<'_>, rows: &[PolicyRun]) -> Json {
    let &RunShape {
        scale,
        days,
        shards,
        disk,
        requests,
        threads,
        cores,
    } = shape;
    let policies = rows
        .iter()
        .map(|p| {
            let agg = p.report.aggregate_overall();
            let steady = p.report.aggregate_steady();
            let shard_arr = |f: fn(&vcdn_sim::engine::ShardReport) -> u64| {
                Json::Arr(
                    p.report
                        .shards
                        .iter()
                        .map(|s| Json::Int(f(s) as i128))
                        .collect(),
                )
            };
            let base = p.sweep.first().map(|t| t.best_secs).unwrap_or(f64::NAN);
            let throughput = p
                .sweep
                .iter()
                .map(|t| {
                    Json::Obj(vec![
                        ("threads".into(), Json::Int(t.threads as i128)),
                        (
                            "requests_per_sec".into(),
                            Json::Float(requests as f64 / t.best_secs),
                        ),
                        ("speedup_vs_first".into(), Json::Float(base / t.best_secs)),
                        (
                            "queue_wait_ns_mean".into(),
                            Json::Float(t.queue_wait_ns_mean),
                        ),
                        (
                            "queue_service_ns_mean".into(),
                            Json::Float(t.queue_service_ns_mean),
                        ),
                        ("queue_depth_mean".into(), Json::Float(t.queue_depth_mean)),
                        (
                            "dispatch_push_ns_mean".into(),
                            Json::Float(t.dispatch_push_ns_mean),
                        ),
                    ])
                })
                .collect();
            // Shard imbalance, max/mean ×1000 — a pure function of the
            // per-shard counters, so golden-compared like the byte
            // totals it derives from.
            let skew = |max: u64, total: u64| {
                if total == 0 {
                    0
                } else {
                    (max as u128 * 1000 * p.report.shards.len() as u128 / total as u128) as i128
                }
            };
            let req_skew = skew(
                p.report
                    .shards
                    .iter()
                    .map(|s| s.requests)
                    .max()
                    .unwrap_or(0),
                p.report.shards.iter().map(|s| s.requests).sum(),
            );
            let byte_skew = skew(
                p.report
                    .shards
                    .iter()
                    .map(|s| s.overall.requested_bytes())
                    .max()
                    .unwrap_or(0),
                p.report
                    .shards
                    .iter()
                    .map(|s| s.overall.requested_bytes())
                    .sum(),
            );
            let top_videos = p
                .top_videos
                .iter()
                .map(|t| {
                    Json::Obj(vec![
                        ("video".into(), Json::Int(t.video as i128)),
                        ("count".into(), Json::Int(t.count as i128)),
                        ("err".into(), Json::Int(t.err as i128)),
                    ])
                })
                .collect();
            let policy = p.report.shards.first().map(|s| s.policy).unwrap_or("?");
            Json::Obj(vec![
                ("policy".into(), Json::Str(policy.into())),
                (
                    "efficiency_steady".into(),
                    Json::Float(p.report.efficiency()),
                ),
                (
                    "aggregate_hit_bytes".into(),
                    Json::Int(agg.hit_bytes as i128),
                ),
                (
                    "aggregate_fill_bytes".into(),
                    Json::Int(agg.fill_bytes as i128),
                ),
                (
                    "aggregate_redirect_bytes".into(),
                    Json::Int(agg.redirect_bytes as i128),
                ),
                (
                    "served_requests".into(),
                    Json::Int(agg.served_requests as i128),
                ),
                (
                    "redirected_requests".into(),
                    Json::Int(agg.redirected_requests as i128),
                ),
                (
                    "steady_hit_bytes".into(),
                    Json::Int(steady.hit_bytes as i128),
                ),
                (
                    "steady_fill_bytes".into(),
                    Json::Int(steady.fill_bytes as i128),
                ),
                (
                    "steady_redirect_bytes".into(),
                    Json::Int(steady.redirect_bytes as i128),
                ),
                ("shard_requests".into(), shard_arr(|s| s.requests)),
                ("shard_hit_bytes".into(), shard_arr(|s| s.overall.hit_bytes)),
                (
                    "shard_fill_bytes".into(),
                    shard_arr(|s| s.overall.fill_bytes),
                ),
                ("shard_used_chunks".into(), shard_arr(|s| s.used_chunks)),
                ("shard_skew_requests_x1000".into(), Json::Int(req_skew)),
                ("shard_skew_bytes_x1000".into(), Json::Int(byte_skew)),
                ("top_videos".into(), Json::Arr(top_videos)),
                ("throughput".into(), Json::Arr(throughput)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("bench".into(), Json::Str("contention".into())),
        ("seed".into(), Json::Int(EXPERIMENT_SEED as i128)),
        ("scale".into(), Json::Float(scale)),
        ("days".into(), Json::Int(days as i128)),
        ("alpha".into(), Json::Float(2.0)),
        ("shards".into(), Json::Int(shards as i128)),
        ("disk_chunks".into(), Json::Int(disk as i128)),
        ("requests".into(), Json::Int(requests as i128)),
        (
            "threads".into(),
            Json::Arr(threads.iter().map(|&t| Json::Int(t as i128)).collect()),
        ),
        ("cores".into(), Json::Int(cores as i128)),
        ("policies".into(), Json::Arr(policies)),
    ])
}

fn parse_threads() -> Vec<usize> {
    let spec: String = arg_flag("threads").unwrap_or_else(|| "1,2,4,8,16".to_string());
    let threads: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("--threads entry {s:?}: {e}"))
                .max(1)
        })
        .collect();
    assert!(
        !threads.is_empty(),
        "--threads must name at least one count"
    );
    threads
}

fn main() {
    let scale = Scale::from_args();
    let days: u64 = arg_flag("days").unwrap_or(30);
    let shards: usize = arg_flag("shards").unwrap_or(16);
    let reps: u32 = arg_flag("reps").unwrap_or(3).max(1);
    let out: String = arg_flag("out").unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let bundle_out: Option<String> = arg_flag("bundle");
    let check: Option<String> = arg_flag("check");
    let threads = parse_threads();

    // Record the machine's actual parallelism up front, and be honest on
    // stderr when the sweep asks for more workers than there are cores:
    // oversubscribed points measure scheduler interleaving, not scaling.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    if cores < max_threads {
        eprintln!(
            "[contention] WARNING: {cores} online core(s) < {max_threads} requested \
             worker(s); oversubscribed sweep points do not measure real scaling"
        );
    }

    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k).max(shards as u64);
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    eprintln!(
        "[contention] scale={} days={days} shards={shards} disk={disk} chunks, threads={threads:?}, reps={reps}, cores={cores}",
        scale.0
    );
    let t0 = Instant::now();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    let requests = trace.len() as u64;
    let per_shard = shard_requests(&trace, shards);
    eprintln!(
        "[contention] trace: {requests} requests ({:.2?})",
        t0.elapsed()
    );

    let sweep_cfg = SweepCfg {
        shards,
        disk,
        k,
        costs,
        reps,
    };
    let mut rows = Vec::new();
    for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
        rows.push(sweep_policy(algo, &trace, &per_shard, sweep_cfg, &threads));
    }

    let mut table = Table::new(vec![
        "policy",
        "efficiency",
        "threads:req/s",
        "best speedup",
    ]);
    for p in &rows {
        let base = p.sweep.first().map(|t| t.best_secs).unwrap_or(f64::NAN);
        let cells: Vec<String> = p
            .sweep
            .iter()
            .map(|t| format!("{}:{:.0}", t.threads, requests as f64 / t.best_secs))
            .collect();
        let best = p
            .sweep
            .iter()
            .map(|t| base / t.best_secs)
            .fold(f64::NEG_INFINITY, f64::max);
        let policy = p.report.shards.first().map(|s| s.policy).unwrap_or("?");
        table.row(vec![
            policy.to_string(),
            eff(p.report.efficiency()),
            cells.join(" "),
            format!("{best:.2}x"),
        ]);
    }
    println!("{}", table.render());

    let json = json_of(
        &RunShape {
            scale: scale.0,
            days,
            shards,
            disk,
            requests,
            threads: &threads,
            cores,
        },
        &rows,
    );
    if let Some(golden_path) = check {
        vcdn_bench::baseline::enforce_golden("contention", &json, &golden_path, &TIMING);
    }
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[contention] wrote {out}");
    if let Some(path) = bundle_out {
        let doc: String = rows.iter().map(|p| p.bundle_jsonl.as_str()).collect();
        std::fs::write(&path, doc).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[contention] wrote {path} (engine telemetry bundles)");
    }
}
