//! Contention scaling bench: the sharded serving engine's aggregate
//! throughput as worker threads grow, with the determinism contract
//! enforced on every run.
//!
//! For each policy (LRU, xLRU, Cafe, Psychic) the standard generated
//! workload is run through a [`ShardedEngine`] at each thread count in
//! the sweep (default 1/2/4/8/16). Per-shard byte counters must be
//! bit-identical across *all* thread counts — the binary asserts it run
//! by run, so a scaling number is only ever reported for a provably
//! deterministic configuration. Results land in `BENCH_PR6.json`
//! (`--out`): deterministic per-shard/aggregate counters plus a
//! machine-dependent `throughput` array per policy.
//!
//! `--check <file>` re-verifies the deterministic fields against a
//! previously written document via the shared baseline machinery —
//! because thread counts live only in timing-excluded fields, a
//! `--threads 1` run checks cleanly against a `--threads 4` golden,
//! which is exactly the cross-thread counter diff CI's contention-smoke
//! job performs.
//!
//! Flags: `--scale <f>` (default 1/16), `--days <n>` (default 30),
//! `--shards <n>` (default 16), `--threads <a,b,c>` (default
//! `1,2,4,8,16`), `--reps <n>` best-of timed runs (default 3),
//! `--out <path>` (default `BENCH_PR6.json`), `--check <path>`.

use std::time::Instant;

use vcdn_bench::{arg_flag, trace_for, Algo, Scale, EXPERIMENT_SEED, PAPER_DISK_BYTES};
use vcdn_core::{
    CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig, XlruCache,
};
use vcdn_sim::engine::{shard_requests, EngineConfig, EngineReport, ShardedEngine};
use vcdn_sim::report::{eff, Table};
use vcdn_trace::{ServerProfile, Trace};
use vcdn_types::json::Json;
use vcdn_types::{ChunkSize, CostModel, Request};

/// Machine-dependent fields, excluded from golden comparison. `threads`
/// is the sweep shape and `cores` the host's parallelism — not
/// measurements, but they must not break the 1-thread-vs-4-thread CI
/// diff or cross-machine golden checks, so they ride in the timing
/// bucket.
const TIMING: [&str; 3] = ["threads", "throughput", "cores"];

/// One (thread count → best wall seconds) measurement.
struct Throughput {
    threads: usize,
    best_secs: f64,
}

/// One policy's sweep: the deterministic report plus per-thread timing.
struct PolicyRun {
    report: EngineReport,
    sweep: Vec<Throughput>,
}

fn engine_for(
    algo: Algo,
    per_shard: &[Vec<Request>],
    shards: usize,
    disk: u64,
    k: ChunkSize,
    costs: CostModel,
) -> ShardedEngine {
    let cfg = EngineConfig::bench(shards, disk, k, costs).expect("valid engine config");
    ShardedEngine::try_new(cfg, |i, cache| -> Box<dyn CachePolicy> {
        match algo {
            Algo::Lru => Box::new(LruCache::new(cache)),
            Algo::Xlru => Box::new(XlruCache::new(cache)),
            Algo::Cafe => Box::new(CafeCache::new(CafeConfig {
                cache,
                ..CafeConfig::new(cache.disk_chunks, k, costs)
            })),
            Algo::Psychic => Box::new(PsychicCache::new(
                PsychicConfig::new(cache.disk_chunks, k, costs),
                &per_shard[i],
            )),
        }
    })
    .expect("engine builds")
}

/// The fixed shape of one contention sweep.
#[derive(Clone, Copy)]
struct SweepCfg {
    shards: usize,
    disk: u64,
    k: ChunkSize,
    costs: CostModel,
    reps: u32,
}

fn sweep_policy(
    algo: Algo,
    trace: &Trace,
    per_shard: &[Vec<Request>],
    cfg: SweepCfg,
    threads: &[usize],
) -> PolicyRun {
    let SweepCfg {
        shards,
        disk,
        k,
        costs,
        reps,
    } = cfg;
    let requests = trace.len() as f64;
    let mut baseline: Option<EngineReport> = None;
    let mut sweep = Vec::new();
    for &t in threads {
        let mut best_secs = f64::INFINITY;
        for _ in 0..reps {
            let mut engine = engine_for(algo, per_shard, shards, disk, k, costs);
            let t0 = Instant::now();
            let report = engine.run(trace, t);
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            // The determinism contract, enforced per run: every rep at
            // every thread count must produce bit-identical per-shard
            // counters (EngineReport equality covers each shard's full
            // accounting and excludes the worker count).
            if let Some(base) = &baseline {
                assert_eq!(
                    base,
                    &report,
                    "{}: shard counters diverged at {t} thread(s)",
                    algo.name()
                );
            } else {
                baseline = Some(report);
            }
        }
        eprintln!(
            "[contention] {:<8} {:>2} thread(s)  {:>12.0} req/s",
            algo.name(),
            t,
            requests / best_secs
        );
        sweep.push(Throughput {
            threads: t,
            best_secs,
        });
    }
    PolicyRun {
        report: baseline.expect("at least one thread count"),
        sweep,
    }
}

/// The run parameters recorded in the document header.
struct RunShape<'a> {
    scale: f64,
    days: u64,
    shards: usize,
    disk: u64,
    requests: u64,
    threads: &'a [usize],
    cores: usize,
}

fn json_of(shape: &RunShape<'_>, rows: &[PolicyRun]) -> Json {
    let &RunShape {
        scale,
        days,
        shards,
        disk,
        requests,
        threads,
        cores,
    } = shape;
    let policies = rows
        .iter()
        .map(|p| {
            let agg = p.report.aggregate_overall();
            let steady = p.report.aggregate_steady();
            let shard_arr = |f: fn(&vcdn_sim::engine::ShardReport) -> u64| {
                Json::Arr(
                    p.report
                        .shards
                        .iter()
                        .map(|s| Json::Int(f(s) as i128))
                        .collect(),
                )
            };
            let base = p.sweep.first().map(|t| t.best_secs).unwrap_or(f64::NAN);
            let throughput = p
                .sweep
                .iter()
                .map(|t| {
                    Json::Obj(vec![
                        ("threads".into(), Json::Int(t.threads as i128)),
                        (
                            "requests_per_sec".into(),
                            Json::Float(requests as f64 / t.best_secs),
                        ),
                        ("speedup_vs_first".into(), Json::Float(base / t.best_secs)),
                    ])
                })
                .collect();
            let policy = p.report.shards.first().map(|s| s.policy).unwrap_or("?");
            Json::Obj(vec![
                ("policy".into(), Json::Str(policy.into())),
                (
                    "efficiency_steady".into(),
                    Json::Float(p.report.efficiency()),
                ),
                (
                    "aggregate_hit_bytes".into(),
                    Json::Int(agg.hit_bytes as i128),
                ),
                (
                    "aggregate_fill_bytes".into(),
                    Json::Int(agg.fill_bytes as i128),
                ),
                (
                    "aggregate_redirect_bytes".into(),
                    Json::Int(agg.redirect_bytes as i128),
                ),
                (
                    "served_requests".into(),
                    Json::Int(agg.served_requests as i128),
                ),
                (
                    "redirected_requests".into(),
                    Json::Int(agg.redirected_requests as i128),
                ),
                (
                    "steady_hit_bytes".into(),
                    Json::Int(steady.hit_bytes as i128),
                ),
                (
                    "steady_fill_bytes".into(),
                    Json::Int(steady.fill_bytes as i128),
                ),
                (
                    "steady_redirect_bytes".into(),
                    Json::Int(steady.redirect_bytes as i128),
                ),
                ("shard_requests".into(), shard_arr(|s| s.requests)),
                ("shard_hit_bytes".into(), shard_arr(|s| s.overall.hit_bytes)),
                (
                    "shard_fill_bytes".into(),
                    shard_arr(|s| s.overall.fill_bytes),
                ),
                ("shard_used_chunks".into(), shard_arr(|s| s.used_chunks)),
                ("throughput".into(), Json::Arr(throughput)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("bench".into(), Json::Str("contention".into())),
        ("seed".into(), Json::Int(EXPERIMENT_SEED as i128)),
        ("scale".into(), Json::Float(scale)),
        ("days".into(), Json::Int(days as i128)),
        ("alpha".into(), Json::Float(2.0)),
        ("shards".into(), Json::Int(shards as i128)),
        ("disk_chunks".into(), Json::Int(disk as i128)),
        ("requests".into(), Json::Int(requests as i128)),
        (
            "threads".into(),
            Json::Arr(threads.iter().map(|&t| Json::Int(t as i128)).collect()),
        ),
        ("cores".into(), Json::Int(cores as i128)),
        ("policies".into(), Json::Arr(policies)),
    ])
}

fn parse_threads() -> Vec<usize> {
    let spec: String = arg_flag("threads").unwrap_or_else(|| "1,2,4,8,16".to_string());
    let threads: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("--threads entry {s:?}: {e}"))
                .max(1)
        })
        .collect();
    assert!(
        !threads.is_empty(),
        "--threads must name at least one count"
    );
    threads
}

fn main() {
    let scale = Scale::from_args();
    let days: u64 = arg_flag("days").unwrap_or(30);
    let shards: usize = arg_flag("shards").unwrap_or(16);
    let reps: u32 = arg_flag("reps").unwrap_or(3).max(1);
    let out: String = arg_flag("out").unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let check: Option<String> = arg_flag("check");
    let threads = parse_threads();

    // Record the machine's actual parallelism up front, and be honest on
    // stderr when the sweep asks for more workers than there are cores:
    // oversubscribed points measure scheduler interleaving, not scaling.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = threads.iter().copied().max().unwrap_or(1);
    if cores < max_threads {
        eprintln!(
            "[contention] WARNING: {cores} online core(s) < {max_threads} requested \
             worker(s); oversubscribed sweep points do not measure real scaling"
        );
    }

    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k).max(shards as u64);
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    eprintln!(
        "[contention] scale={} days={days} shards={shards} disk={disk} chunks, threads={threads:?}, reps={reps}, cores={cores}",
        scale.0
    );
    let t0 = Instant::now();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    let requests = trace.len() as u64;
    let per_shard = shard_requests(&trace, shards);
    eprintln!(
        "[contention] trace: {requests} requests ({:.2?})",
        t0.elapsed()
    );

    let sweep_cfg = SweepCfg {
        shards,
        disk,
        k,
        costs,
        reps,
    };
    let mut rows = Vec::new();
    for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
        rows.push(sweep_policy(algo, &trace, &per_shard, sweep_cfg, &threads));
    }

    let mut table = Table::new(vec![
        "policy",
        "efficiency",
        "threads:req/s",
        "best speedup",
    ]);
    for p in &rows {
        let base = p.sweep.first().map(|t| t.best_secs).unwrap_or(f64::NAN);
        let cells: Vec<String> = p
            .sweep
            .iter()
            .map(|t| format!("{}:{:.0}", t.threads, requests as f64 / t.best_secs))
            .collect();
        let best = p
            .sweep
            .iter()
            .map(|t| base / t.best_secs)
            .fold(f64::NEG_INFINITY, f64::max);
        let policy = p.report.shards.first().map(|s| s.policy).unwrap_or("?");
        table.row(vec![
            policy.to_string(),
            eff(p.report.efficiency()),
            cells.join(" "),
            format!("{best:.2}x"),
        ]);
    }
    println!("{}", table.render());

    let json = json_of(
        &RunShape {
            scale: scale.0,
            days,
            shards,
            disk,
            requests,
            threads: &threads,
            cores,
        },
        &rows,
    );
    if let Some(golden_path) = check {
        vcdn_bench::baseline::enforce_golden("contention", &json, &golden_path, &TIMING);
    }
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[contention] wrote {out}");
}
