//! Extension E3 — a two-level cache hierarchy (§2's redirect targets,
//! §10's CDN-wide direction).
//!
//! An ingress-constrained edge redirects to a deeper parent site. Sweeping
//! the edge's α shows the system-level tradeoff the paper motivates:
//! raising the edge α moves fills from the constrained edge uplink to the
//! unconstrained parent, while the origin (CDN-egress) traffic stays
//! bounded by the parent's depth.
//!
//! Usage: `ext_hierarchy [--scale f] [--days n]`

use vcdn_bench::{arg_days, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{CacheConfig, CafeCache, CafeConfig, XlruCache};
use vcdn_sim::replay_hierarchy;
use vcdn_sim::report::{bytes, Table};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let edge_disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let parent_disk = edge_disk * 4; // a "larger serving site" (§2)
    let parent_costs = CostModel::balanced();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!(
        "ext E3: {} requests, edge={edge_disk} parent={parent_disk} chunks",
        trace.len()
    );

    let mut table = Table::new(vec![
        "edge alpha",
        "edge fill",
        "parent fill",
        "origin",
        "cdn hit rate",
        "total cost (GB-eq)",
    ]);
    for alpha in [1.0, 2.0, 4.0] {
        let edge_costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let mut edge = CafeCache::new(CafeConfig::new(edge_disk, k, edge_costs));
        let mut parent = XlruCache::new(CacheConfig::new(parent_disk, k, parent_costs));
        let r = replay_hierarchy(&trace, &mut edge, &mut parent);
        let cost = r.total_cost(edge_costs.c_f(), parent_costs.c_f(), parent_costs.c_r())
            / (1u64 << 30) as f64;
        table.row(vec![
            format!("{alpha}"),
            bytes(r.edge.fill_bytes),
            bytes(r.parent.fill_bytes),
            bytes(r.origin_bytes),
            format!("{:.3}", r.cdn_hit_rate()),
            format!("{cost:.1}"),
        ]);
        eprintln!("  alpha={alpha} done");
    }
    println!("== Extension E3: two-level hierarchy (cafe edge -> xlru parent) ==");
    println!("{}", table.render());
    println!(
        "expectation: edge fills shrink as the edge alpha grows, parent \
         fills absorb the shifted load, origin traffic stays bounded by \
         parent depth"
    );
}
