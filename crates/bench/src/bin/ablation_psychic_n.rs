//! Ablation A3 — Psychic's future-list bound `N`.
//!
//! The paper (§8) bounds `|L_x| ≤ N` for efficiency, "where N = 10 has
//! proven sufficient in our experiments — no gain with higher values".
//! This sweep verifies the knee.
//!
//! Usage: `ablation_psychic_n [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{PsychicCache, PsychicConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A3: {} requests, disk={disk}", trace.len());

    let mut table = Table::new(vec!["N", "efficiency", "ingress%", "redirect%"]);
    for n in [1usize, 2, 5, 10, 20, 50] {
        let mut cache = PsychicCache::new(
            PsychicConfig::new(disk, k, costs).with_future_list_bound(n),
            &trace.requests,
        );
        let r = Replayer::new(ReplayConfig::new(k, costs)).replay(&trace, &mut cache);
        table.row(vec![
            format!("{n}{}", if n == 10 { " (paper)" } else { "" }),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
        ]);
        eprintln!("  N={n} done");
    }
    println!("== Ablation A3: Psychic future-list bound N (europe, alpha={alpha}) ==");
    println!("{}", table.render());
    println!("paper anchor: N = 10 suffices; no gain with higher values");
}
