//! Ablation A3 — Psychic's future-list bound `N`.
//!
//! The paper (§8) bounds `|L_x| ≤ N` for efficiency, "where N = 10 has
//! proven sufficient in our experiments — no gain with higher values".
//! This sweep verifies the knee.
//!
//! One grid cell per `N` runs through the deterministic parallel runner;
//! set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_psychic_n [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, sweep, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{PsychicCache, PsychicConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ablation A3: {} requests, disk={disk}", trace.len());

    let ns = [1usize, 2, 5, 10, 20, 50];
    let cells: Vec<Cell<ReplayReport>> = ns
        .iter()
        .map(|&n| {
            let trace = &trace;
            Cell::new(format!("N={n}"), move || {
                let mut cache = PsychicCache::new(
                    PsychicConfig::new(disk, k, costs).with_future_list_bound(n),
                    &trace.requests,
                );
                Replayer::new(ReplayConfig::bench(k, costs)).replay(trace, &mut cache)
            })
        })
        .collect();
    let reports: Vec<ReplayReport> = sweep("ablation A3", cells).values();

    let mut table = Table::new(vec!["N", "efficiency", "ingress%", "redirect%"]);
    for (n, r) in ns.iter().zip(&reports) {
        table.row(vec![
            format!("{n}{}", if *n == 10 { " (paper)" } else { "" }),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
        ]);
    }
    println!("== Ablation A3: Psychic future-list bound N (europe, alpha={alpha}) ==");
    println!("{}", table.render());
    println!("paper anchor: N = 10 suffices; no gain with higher values");
}
