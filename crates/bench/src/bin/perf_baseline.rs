//! Tracked throughput baseline: replays the standard generated workload
//! through all four policies (LRU, xLRU, Cafe, Psychic) single-threaded,
//! reporting simulated requests/sec and steady-state efficiency per
//! policy, and writes the result as JSON (`BENCH_PR2.json` by default) so
//! the repo carries a measured perf trajectory from PR 2 onward.
//!
//! Replay *metrics* (byte counters, efficiency) are deterministic; only
//! the timing fields vary across machines. `--check <file>` re-verifies
//! the deterministic fields against a previously written JSON — the CI
//! perf smoke job uses it to pin the replay outputs while still uploading
//! fresh timing numbers as an artifact.
//!
//! Besides whole-replay throughput, each policy gets one extra observed
//! replay that buckets per-request decide-path wall latency into the
//! vcdn-obs log histogram; the JSON carries `decide_ns_p50` /
//! `decide_ns_p99` / `decide_ns_mean` per policy (timing fields, excluded
//! from `--check` like the throughput numbers — see OBSERVABILITY.md).
//!
//! Flags: `--scale <f>` (default 1/16), `--days <n>` (default 30),
//! `--reps <n>` timed replays per policy, best-of (default 3),
//! `--out <path>` (default `BENCH_PR2.json`), `--check <path>`.

use std::time::Instant;

use vcdn_bench::{arg_flag, trace_for, Algo, Scale, EXPERIMENT_SEED, PAPER_DISK_BYTES};
use vcdn_obs::histogram::{bucket_index, HistogramSnapshot, BUCKETS};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{DecisionCtx, ReplayConfig, ReplayObserver, ReplayReport, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::json::Json;
use vcdn_types::{ChunkSize, CostModel};

/// Buckets per-request decide-path wall latency (ns) into the shared
/// vcdn-obs log-histogram layout. Runs on its own replay so the timed
/// best-of reps stay clock-free.
struct LatencyObserver {
    hist: HistogramSnapshot,
}

impl LatencyObserver {
    fn new() -> Self {
        LatencyObserver {
            hist: HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: vec![0; BUCKETS],
            },
        }
    }
}

impl ReplayObserver for LatencyObserver {
    fn wants_timing(&self) -> bool {
        true
    }

    fn on_decision(&mut self, ctx: &DecisionCtx<'_>) {
        if let Some(ns) = ctx.latency_ns {
            self.hist.count += 1;
            self.hist.sum += ns;
            self.hist.buckets[bucket_index(ns)] += 1;
        }
    }
}

/// One policy's measured row.
struct PolicyPerf {
    report: ReplayReport,
    best_secs: f64,
    decide_ns: HistogramSnapshot,
}

fn json_of(scale: f64, days: u64, requests: u64, rows: &[PolicyPerf]) -> Json {
    let policies = rows
        .iter()
        .map(|p| {
            let t = &p.report.steady;
            Json::Obj(vec![
                ("policy".into(), Json::Str(p.report.policy.into())),
                (
                    "requests_per_sec".into(),
                    Json::Float(requests as f64 / p.best_secs),
                ),
                ("replay_wall_ms".into(), Json::Float(p.best_secs * 1_000.0)),
                (
                    "decide_ns_p50".into(),
                    Json::Int(p.decide_ns.quantile_upper_bound(0.50) as i128),
                ),
                (
                    "decide_ns_p99".into(),
                    Json::Int(p.decide_ns.quantile_upper_bound(0.99) as i128),
                ),
                ("decide_ns_mean".into(), Json::Float(p.decide_ns.mean())),
                (
                    "efficiency_steady".into(),
                    Json::Float(p.report.efficiency()),
                ),
                ("steady_hit_bytes".into(), Json::Int(t.hit_bytes as i128)),
                ("steady_fill_bytes".into(), Json::Int(t.fill_bytes as i128)),
                (
                    "steady_redirect_bytes".into(),
                    Json::Int(t.redirect_bytes as i128),
                ),
                (
                    "overall_hit_bytes".into(),
                    Json::Int(p.report.overall.hit_bytes as i128),
                ),
                (
                    "overall_fill_bytes".into(),
                    Json::Int(p.report.overall.fill_bytes as i128),
                ),
                (
                    "overall_redirect_bytes".into(),
                    Json::Int(p.report.overall.redirect_bytes as i128),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("bench".into(), Json::Str("perf_baseline".into())),
        ("seed".into(), Json::Int(EXPERIMENT_SEED as i128)),
        ("scale".into(), Json::Float(scale)),
        ("days".into(), Json::Int(days as i128)),
        ("alpha".into(), Json::Float(2.0)),
        ("requests".into(), Json::Int(requests as i128)),
        ("policies".into(), Json::Arr(policies)),
    ])
}

/// Machine-dependent timing fields, excluded from golden comparison
/// (see `vcdn_bench::baseline` for the shared diff machinery).
const TIMING: [&str; 5] = [
    "requests_per_sec",
    "replay_wall_ms",
    "decide_ns_p50",
    "decide_ns_p99",
    "decide_ns_mean",
];

fn main() {
    let scale = Scale::from_args();
    let days: u64 = arg_flag("days").unwrap_or(30);
    let reps: u32 = arg_flag("reps").unwrap_or(3).max(1);
    let out: String = arg_flag("out").unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let check: Option<String> = arg_flag("check");

    let k = ChunkSize::DEFAULT;
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    eprintln!(
        "[perf_baseline] scale={} days={days} disk={disk} chunks, alpha=2, reps={reps}",
        scale.0
    );
    let t0 = Instant::now();
    let trace = trace_for(ServerProfile::europe(), scale, days);
    let requests = trace.len() as u64;
    eprintln!(
        "[perf_baseline] trace: {requests} requests ({:.2?})",
        t0.elapsed()
    );

    // Bench-mode replay: per-request invariant checks off (the test suite
    // keeps them on); single-threaded so requests/sec is a clean per-core
    // number.
    let replayer = Replayer::new(ReplayConfig::bench(k, costs));
    let mut rows = Vec::new();
    for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
        let mut best_secs = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps {
            let mut policy = algo.build(&trace, disk, k, costs);
            let t0 = Instant::now();
            let r = replayer.replay(&trace, policy.as_mut());
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
            if let Some(prev) = &report {
                assert_eq!(prev, &r, "{}: replay is not deterministic", algo.name());
            }
            report = Some(r);
        }
        let report = report.expect("reps >= 1");
        // One observed replay for the decide-path latency histogram; the
        // per-request clock reads make it slower than the timed reps, so
        // it runs separately and must reproduce the same report.
        let mut observer = LatencyObserver::new();
        let mut policy = algo.build(&trace, disk, k, costs);
        let observed = replayer.replay_observed(&trace, policy.as_mut(), &mut observer);
        assert_eq!(
            report,
            observed,
            "{}: observed replay diverged",
            algo.name()
        );
        let decide_ns = observer.hist;
        eprintln!(
            "[perf_baseline] {:<8} {:>10.0} req/s  efficiency {:.4}  decide p50/p99 {}ns/{}ns",
            report.policy,
            requests as f64 / best_secs,
            report.efficiency(),
            decide_ns.quantile_upper_bound(0.50),
            decide_ns.quantile_upper_bound(0.99),
        );
        rows.push(PolicyPerf {
            report,
            best_secs,
            decide_ns,
        });
    }

    let mut table = Table::new(vec!["policy", "req/s", "efficiency", "steady bytes h/f/r"]);
    for p in &rows {
        let t = &p.report.steady;
        table.row(vec![
            p.report.policy.to_string(),
            format!("{:.0}", requests as f64 / p.best_secs),
            eff(p.report.efficiency()),
            format!("{}/{}/{}", t.hit_bytes, t.fill_bytes, t.redirect_bytes),
        ]);
    }
    println!("{}", table.render());

    let json = json_of(scale.0, days, requests, &rows);
    if let Some(golden_path) = check {
        vcdn_bench::baseline::enforce_golden("perf_baseline", &json, &golden_path, &TIMING);
    }
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("[perf_baseline] wrote {out}");
}
