//! Extension E1 — the §10 α_F2R control loop in action.
//!
//! Compares a fixed-α Cafe cache against [`ControlledCafeCache`]s chasing
//! different ingress targets on the Europe workload. The loop should hold
//! measured ingress near its target (within the small α band) without
//! collapsing efficiency — demonstrating the "defined behavior through
//! α_F2R" that §10 proposes as the CDN-wide building block.
//!
//! Usage: `ext_alpha_control [--scale f] [--days n]`

use vcdn_bench::{arg_days, trace_for, Scale, PAPER_DISK_BYTES};
use vcdn_core::{AlphaControlConfig, CafeCache, CafeConfig, ControlledCafeCache};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let k = ChunkSize::DEFAULT;
    let base = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = scale.disk_chunks(PAPER_DISK_BYTES, k);
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("ext E1: {} requests, disk={disk}", trace.len());

    let replayer = Replayer::new(ReplayConfig::bench(k, base));
    let mut table = Table::new(vec![
        "variant",
        "efficiency",
        "ingress%",
        "redirect%",
        "final alpha",
        "adjustments",
    ]);

    // Fixed baseline.
    let mut fixed = CafeCache::new(CafeConfig::new(disk, k, base));
    let r = replayer.replay(&trace, &mut fixed);
    table.row(vec![
        "cafe (fixed a=2)".into(),
        eff(r.efficiency()),
        format!("{:.1}", r.ingress_pct()),
        format!("{:.1}", r.redirect_pct()),
        "2.00".into(),
        "-".into(),
    ]);
    eprintln!("  fixed done");

    for target in [4.0, 8.0, 15.0] {
        let inner = CafeCache::new(CafeConfig::new(disk, k, base));
        let mut ctl = ControlledCafeCache::try_new(inner, AlphaControlConfig::around(base, target))
            .expect("valid control config");
        let r = replayer.replay(&trace, &mut ctl);
        table.row(vec![
            format!("cafe+ctl (target {target}%)"),
            eff(r.efficiency()),
            format!("{:.1}", r.ingress_pct()),
            format!("{:.1}", r.redirect_pct()),
            format!("{:.2}", ctl.current_alpha()),
            ctl.adjustments().to_string(),
        ]);
        eprintln!("  target {target}% done");
    }
    println!("== Extension E1: ingress control loop (europe, base alpha=2) ==");
    println!("{}", table.render());
    println!(
        "expectation: measured ingress%% tracks each target (within the \
         [1,4] alpha band's reach) while efficiency stays near the fixed \
         baseline"
    );
}
