//! Ablation A6 — paper vs reduced LP formulation.
//!
//! The paper-faithful formulation (§7, Eqs. 10–12) carries `Θ(J·T)`
//! variables; the reduced formulation compresses presence to one variable
//! group per (chunk, occurrence). This ablation verifies on generated
//! traces that both reach the same optimum and reports the size/time
//! advantage that makes the Figure 2 experiment tractable.
//!
//! The (prefix length × α × formulation) grid runs through the
//! deterministic parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `ablation_lp_forms [--requests n]`

use std::time::Instant;

use vcdn_bench::{arg_flag, sweep, EXPERIMENT_SEED};
use vcdn_core::{lp_bound_paper, lp_bound_reduced, CacheConfig, OptimalBound};
use vcdn_lp::SolveError;
use vcdn_sim::report::Table;
use vcdn_sim::runner::Cell;
use vcdn_trace::{downsample, DownsampleConfig, ServerProfile, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs, Timestamp};

fn main() {
    let max_requests: usize = arg_flag("requests").unwrap_or(30);
    let k = ChunkSize::new(4 * 1024 * 1024).expect("non-zero");
    let profile = ServerProfile::tiny_test();
    let full = TraceGenerator::new(profile, EXPERIMENT_SEED).generate(DurationMs::from_days(2));
    let cfg_ds = DownsampleConfig {
        files: 30,
        ..DownsampleConfig::paper_default(Timestamp::EPOCH)
    };
    let mut trace = downsample(&full, &cfg_ds);
    trace.requests.truncate(max_requests);
    eprintln!("A6 trace: {} requests", trace.len());

    let ns = [10usize, 20, max_requests];
    let alphas = [1.0, 2.0];
    type Solver = fn(&[vcdn_types::Request], &CacheConfig) -> Result<OptimalBound, SolveError>;
    let solvers: [(&str, Solver); 2] = [("paper", lp_bound_paper), ("reduced", lp_bound_reduced)];
    let cells: Vec<Cell<(OptimalBound, u128)>> = ns
        .iter()
        .flat_map(|&n| {
            let trace = &trace;
            alphas.iter().flat_map(move |&alpha| {
                solvers.into_iter().map(move |(tag, solve)| {
                    Cell::new(format!("n={n} alpha={alpha} {tag}"), move || {
                        let reqs = &trace.requests[..n.min(trace.len())];
                        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
                        let cache = CacheConfig::new(8, k, costs);
                        let t0 = Instant::now();
                        let bound = solve(reqs, &cache).expect("LP should solve");
                        (bound, t0.elapsed().as_millis())
                    })
                })
            })
        })
        .collect();
    let solved: Vec<(OptimalBound, u128)> = sweep("ablation A6", cells).values();

    let mut table = Table::new(vec![
        "requests",
        "alpha",
        "paper cost",
        "paper vars",
        "paper ms",
        "reduced cost",
        "reduced vars",
        "reduced ms",
        "agree",
    ]);
    let mut it = solved.into_iter();
    for n in ns {
        for alpha in alphas {
            let (paper, t_paper) = it.next().expect("paper cell");
            let (reduced, t_reduced) = it.next().expect("reduced cell");
            let agree = (paper.lp_cost - reduced.lp_cost).abs() < 1e-5;
            table.row(vec![
                n.to_string(),
                format!("{alpha}"),
                format!("{:.4}", paper.lp_cost),
                paper.variables.to_string(),
                t_paper.to_string(),
                format!("{:.4}", reduced.lp_cost),
                reduced.variables.to_string(),
                t_reduced.to_string(),
                if agree {
                    "yes".into()
                } else {
                    "NO".to_string()
                },
            ]);
        }
    }
    println!("== Ablation A6: paper vs reduced LP formulation ==");
    println!("{}", table.render());
}
