//! Figure 6 — "Efficiency of the algorithms given different disk
//! capacities" (European server, α_F2R = 2).
//!
//! Sweeps the disk from ¼× to 4× the paper's 1 TB reference (all scaled)
//! and reports each algorithm's steady-state efficiency, plus the
//! disk-multiplier analysis behind the paper's headline: "to achieve the
//! same efficiency xLRU requires 2 to 3 times larger disk space than Cafe
//! Cache" at α=2 (and only ≤33 % more at α=1 — printed with `--alpha 1`).
//!
//! The whole disk × algorithm grid (15 cells) runs through the
//! deterministic parallel runner; set `VCDN_WORKERS` to control fan-out.
//!
//! Usage: `fig6_disk_sweep [--scale f] [--days n] [--alpha a]`

use vcdn_bench::{arg_days, arg_flag, run_algo, sweep, trace_for, Algo, Scale, PAPER_DISK_BYTES};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::runner::Cell;
use vcdn_trace::ServerProfile;
use vcdn_types::{ChunkSize, CostModel};

/// Linear interpolation of the disk multiple at which `points` (sorted by
/// disk) reaches `target` efficiency.
fn disk_needed(points: &[(f64, f64)], target: f64) -> Option<f64> {
    for w in points.windows(2) {
        let ((d0, e0), (d1, e1)) = (w[0], w[1]);
        if (e0..=e1).contains(&target) && e1 > e0 {
            return Some(d0 + (d1 - d0) * (target - e0) / (e1 - e0));
        }
    }
    None
}

fn main() {
    let scale = Scale::from_args();
    let days = arg_days();
    let alpha: f64 = arg_flag("alpha").unwrap_or(2.0);
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(alpha).expect("valid alpha");

    eprintln!(
        "fig6: europe, {days} days, alpha={alpha} (scale {})",
        scale.0
    );
    let trace = trace_for(ServerProfile::europe(), scale, days);
    eprintln!("trace: {} requests", trace.len());

    let multiples = [0.25, 0.5, 1.0, 2.0, 4.0];
    let disks: Vec<u64> = multiples
        .iter()
        .map(|&m| scale.disk_chunks((PAPER_DISK_BYTES as f64 * m) as u64, k))
        .collect();
    let cells: Vec<Cell<f64>> = multiples
        .iter()
        .zip(&disks)
        .flat_map(|(&m, &disk)| {
            let trace = &trace;
            Algo::paper_three().into_iter().map(move |algo| {
                Cell::new(format!("disk x{m} {}", algo.name()), move || {
                    run_algo(algo, trace, disk, k, costs).efficiency()
                })
            })
        })
        .collect();
    let e: Vec<f64> = sweep("fig6", cells).values();

    let mut table = Table::new(vec!["disk (x 1TB)", "chunks", "xlru", "cafe", "psychic"]);
    let mut xlru_pts = Vec::new();
    let mut cafe_pts = Vec::new();
    for (i, (&m, &disk)) in multiples.iter().zip(&disks).enumerate() {
        let g = &e[i * 3..i * 3 + 3];
        xlru_pts.push((m, g[0]));
        cafe_pts.push((m, g[1]));
        table.row(vec![
            format!("{m}"),
            disk.to_string(),
            eff(g[0]),
            eff(g[1]),
            eff(g[2]),
        ]);
    }
    println!("== Figure 6: efficiency vs disk capacity (alpha={alpha}) ==");
    println!("{}", table.render());

    // Disk-multiplier analysis: for each Cafe point, how much disk does
    // xLRU need to match it?
    let mut mult = Table::new(vec!["cafe disk", "cafe eff", "xlru disk needed", "ratio"]);
    for &(d, e) in &cafe_pts {
        if let Some(need) = disk_needed(&xlru_pts, e) {
            mult.row(vec![
                format!("{d}"),
                eff(e),
                format!("{need:.2}"),
                format!("{:.2}x", need / d),
            ]);
        }
    }
    if !mult.is_empty() {
        println!(
            "== Disk xLRU needs to match Cafe (paper: 2-3x at alpha=2, <=1.33x at alpha=1) =="
        );
        println!("{}", mult.render());
    }
}
