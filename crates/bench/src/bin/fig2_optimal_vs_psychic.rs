//! Figure 2 — "Performance of Psychic Cache compared to (LP-relaxed)
//! Optimal Cache".
//!
//! Reproduces §9.1's limited-scale experiment: a two-day trace per server,
//! down-sampled to a representative subset of distinct files selected
//! uniformly from the hit-count-sorted list, file sizes capped at 20 MB,
//! and a disk sized to hold 5 % of all requested chunks. Psychic replays
//! the reduced trace; the Optimal cache's LP relaxation provides the
//! theoretical efficiency upper bound.
//!
//! Output: (a) per-α efficiencies averaged over the six servers, and
//! (b) the average/min/max delta (Optimal − Psychic) across servers —
//! the paper finds Psychic within 5–6 % of the bound on average.
//!
//! Because a dense-tableau simplex solves the LP, the experiment keeps the
//! paper's "limited scale" spirit: `--requests` (default 120) bounds the
//! request count and a 4 MB chunk size keeps the occurrence count small.
//!
//! Usage: `fig2_optimal_vs_psychic [--profile-scale f] [--requests n] [--files n]`

use vcdn_bench::{arg_flag, EXPERIMENT_SEED};
use vcdn_core::{lp_bound_reduced, CacheConfig, PsychicCache, PsychicConfig};
use vcdn_sim::report::{eff, Table};
use vcdn_sim::{ReplayConfig, Replayer};
use vcdn_trace::{
    disk_chunks_for_fraction, downsample, DownsampleConfig, ServerProfile, Trace, TraceGenerator,
};
use vcdn_types::{ChunkSize, CostModel, DurationMs, Timestamp};

fn reduced_two_day_trace(
    profile: ServerProfile,
    profile_scale: f64,
    files: usize,
    max_requests: usize,
) -> Trace {
    let scaled = profile.scaled(profile_scale);
    let full = TraceGenerator::new(scaled, EXPERIMENT_SEED).generate(DurationMs::from_days(2));
    let cfg = DownsampleConfig {
        files,
        ..DownsampleConfig::paper_default(Timestamp::EPOCH)
    };
    let mut t = downsample(&full, &cfg);
    t.requests.truncate(max_requests);
    t
}

fn main() {
    let profile_scale: f64 = arg_flag("profile-scale").unwrap_or(1.0 / 512.0);
    let files: usize = arg_flag("files").unwrap_or(100);
    let max_requests: usize = arg_flag("requests").unwrap_or(120);
    let k = ChunkSize::new(4 * 1024 * 1024).expect("non-zero");

    println!(
        "== Figure 2: Psychic vs LP-relaxed Optimal (2-day down-sampled traces, \
         {files} files, 20 MB cap, disk = 5% of requested chunks, \
         <= {max_requests} requests) =="
    );
    let alphas = [1.0, 2.0];
    let mut per_alpha: Vec<(f64, Vec<f64>, Vec<f64>)> = Vec::new(); // (alpha, psychic, optimal)
    let mut detail = Table::new(vec![
        "server",
        "alpha",
        "requests",
        "disk",
        "psychic",
        "lp-optimal",
        "delta",
    ]);
    for alpha in alphas {
        let costs = CostModel::from_alpha(alpha).expect("valid alpha");
        let mut psychics = Vec::new();
        let mut optimals = Vec::new();
        for profile in ServerProfile::world_servers() {
            let name = profile.name.clone();
            let trace = reduced_two_day_trace(profile, profile_scale, files, max_requests);
            // Paper disk rule: 5% of requested chunks — floored at twice
            // the largest request, because the IP's constraint (10d)
            // requires every chunk of an admitted request to be present
            // simultaneously: a disk smaller than a request makes the LP
            // redirect what an online cache would serve through.
            let max_request_chunks = trace
                .requests
                .iter()
                .map(|r| r.chunk_len(k))
                .max()
                .unwrap_or(1);
            let disk = disk_chunks_for_fraction(&trace, k, 5.0).max(2 * max_request_chunks);
            // Psychic needs no warm-up (§9.1): measure the full replay.
            let mut cache = PsychicCache::new(PsychicConfig::new(disk, k, costs), &trace.requests);
            let report = Replayer::new(ReplayConfig::bench(k, costs).with_steady_after(0.0))
                .replay(&trace, &mut cache);
            let psychic_eff = report.efficiency();
            let bound = match lp_bound_reduced(&trace.requests, &CacheConfig::new(disk, k, costs)) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("  {name}: LP solve failed: {e}");
                    continue;
                }
            };
            detail.row(vec![
                name.clone(),
                format!("{alpha}"),
                trace.len().to_string(),
                disk.to_string(),
                eff(psychic_eff),
                eff(bound.efficiency_upper_bound),
                format!("{:+.3}", bound.efficiency_upper_bound - psychic_eff),
            ]);
            eprintln!(
                "  {name} alpha={alpha}: psychic {:.3}, bound {:.3} ({} vars, {} rows)",
                psychic_eff, bound.efficiency_upper_bound, bound.variables, bound.constraints
            );
            psychics.push(psychic_eff);
            optimals.push(bound.efficiency_upper_bound);
        }
        per_alpha.push((alpha, psychics, optimals));
    }

    println!("{}", detail.render());

    // Figure 2(a): averages over the six servers.
    let mut fig2a = Table::new(vec!["alpha", "psychic (avg)", "lp-optimal (avg)"]);
    // Figure 2(b): delta statistics.
    let mut fig2b = Table::new(vec!["alpha", "avg delta", "min delta", "max delta"]);
    for (alpha, psychics, optimals) in &per_alpha {
        if psychics.is_empty() {
            continue;
        }
        let n = psychics.len() as f64;
        let pavg = psychics.iter().sum::<f64>() / n;
        let oavg = optimals.iter().sum::<f64>() / n;
        let deltas: Vec<f64> = optimals.iter().zip(psychics).map(|(o, p)| o - p).collect();
        let davg = deltas.iter().sum::<f64>() / n;
        let dmin = deltas.iter().cloned().fold(f64::INFINITY, f64::min);
        let dmax = deltas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        fig2a.row(vec![format!("{alpha}"), eff(pavg), eff(oavg)]);
        fig2b.row(vec![
            format!("{alpha}"),
            format!("{davg:+.3}"),
            format!("{dmin:+.3}"),
            format!("{dmax:+.3}"),
        ]);
    }
    println!("== Figure 2(a): efficiencies averaged over the 6 servers ==");
    println!("{}", fig2a.render());
    println!("== Figure 2(b): delta (LP-relaxed Optimal - Psychic) across servers ==");
    println!("{}", fig2b.render());
    println!("paper anchor: Psychic within 5-6% of the LP-relaxed bound on average");
}
