//! Shared parsing of `vcdn-telemetry/1` JSONL documents for the bench
//! binaries (`obs_check`, `obs_report`).
//!
//! A telemetry file is one or more bundles; each bundle starts with a
//! `"type":"meta"` line and is followed by its `metric`, `topk`,
//! `window`, `alert`, `sample` and `event` lines in that order.
//! [`parse_bundles`] splits a document into [`BundleDoc`]s without
//! validating semantics — the binaries layer their own checks on top.

use vcdn_types::json::{self, Json};

/// One parsed bundle: the meta object plus its section lines, in file
/// order.
#[derive(Debug)]
pub struct BundleDoc {
    /// The bundle's `"type":"meta"` line.
    pub meta: Json,
    /// `"type":"metric"` lines in registration order.
    pub metrics: Vec<Json>,
    /// `"type":"topk"` lines, shard-major then rank order.
    pub topk: Vec<Json>,
    /// `"type":"window"` lines in window-index order.
    pub windows: Vec<Json>,
    /// `"type":"alert"` lines in window order.
    pub alerts: Vec<Json>,
    /// `"type":"sample"` lines in time order.
    pub samples: Vec<Json>,
    /// `"type":"event"` lines in replay order.
    pub events: Vec<Json>,
}

impl BundleDoc {
    /// A short label identifying the bundle in messages: its `cell`,
    /// `source` or `policy` meta entry, whichever exists first.
    pub fn label(&self) -> &str {
        for key in ["cell", "source", "policy"] {
            if let Some(s) = self.meta.get(key).and_then(Json::as_str) {
                return s;
            }
        }
        "?"
    }

    /// The meta entry `key` as a `u64`, if present and integral.
    pub fn meta_u64(&self, key: &str) -> Option<u64> {
        as_u64(self.meta.get(key))
    }

    /// The meta entry `key` as a string, if present.
    pub fn meta_str(&self, key: &str) -> Option<&str> {
        self.meta.get(key).and_then(Json::as_str)
    }
}

/// An integral JSON value as `u64`.
pub fn as_u64(j: Option<&Json>) -> Option<u64> {
    match j {
        Some(Json::Int(i)) => u64::try_from(*i).ok(),
        _ => None,
    }
}

/// A numeric JSON value as `f64` (integers widen).
pub fn as_f64(j: Option<&Json>) -> Option<f64> {
    match j {
        Some(Json::Float(x)) => Some(*x),
        Some(Json::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

/// Splits a telemetry JSONL document into bundles. Structural errors
/// (unparseable lines, lines before any meta, unknown types) are pushed
/// onto `errs` with 1-based line numbers; parsing continues past them so
/// a single bad line reports once without masking the rest.
pub fn parse_bundles(text: &str, errs: &mut Vec<String>) -> Vec<BundleDoc> {
    let mut bundles: Vec<BundleDoc> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let j = match json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                errs.push(format!("line {}: unparseable: {e}", lineno + 1));
                continue;
            }
        };
        match j.get("type").and_then(Json::as_str) {
            Some("meta") => bundles.push(BundleDoc {
                meta: j,
                metrics: Vec::new(),
                topk: Vec::new(),
                windows: Vec::new(),
                alerts: Vec::new(),
                samples: Vec::new(),
                events: Vec::new(),
            }),
            Some(kind) => {
                let Some(b) = bundles.last_mut() else {
                    errs.push(format!("line {}: {kind} before any meta line", lineno + 1));
                    continue;
                };
                match kind {
                    "metric" => b.metrics.push(j),
                    "topk" => b.topk.push(j),
                    "window" => b.windows.push(j),
                    "alert" => b.alerts.push(j),
                    "sample" => b.samples.push(j),
                    "event" => b.events.push(j),
                    _ => errs.push(format!("line {}: unknown type {kind:?}", lineno + 1)),
                }
            }
            None => errs.push(format!("line {}: missing type field", lineno + 1)),
        }
    }
    bundles
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "\
{\"type\":\"meta\",\"schema\":\"vcdn-telemetry/1\",\"policy\":\"demo\",\"metrics\":1,\"topk\":1,\"windows\":1,\"windows_dropped\":0,\"alerts\":1,\"samples\":0,\"events\":0,\"events_dropped\":0}\n\
{\"type\":\"metric\",\"name\":\"demo.x\",\"kind\":\"counter\",\"value\":4}\n\
{\"type\":\"topk\",\"shard\":0,\"rank\":1,\"video\":7,\"count\":3,\"err\":0}\n\
{\"type\":\"window\",\"index\":0,\"hit_bytes\":80,\"fill_bytes\":0,\"redirect_bytes\":0,\"served_requests\":1,\"redirected_requests\":0,\"efficiency\":1.0,\"redirect_rate\":0.0,\"filled_chunks\":0,\"evicted_chunks\":0,\"max_stream_requests\":1,\"queue_gap_count\":0,\"queue_gap_sum\":0,\"queue_gap_p99\":0,\"request_chunks_p99\":0}\n\
{\"type\":\"alert\",\"window\":0,\"rule\":\"demo-rule\",\"severity\":\"warning\",\"baseline\":0.9,\"observed\":0.5}\n";

    #[test]
    fn splits_sections_and_labels() {
        let mut errs = Vec::new();
        let bundles = parse_bundles(DOC, &mut errs);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(bundles.len(), 1);
        let b = &bundles[0];
        assert_eq!(b.label(), "demo");
        assert_eq!(b.metrics.len(), 1);
        assert_eq!(b.topk.len(), 1);
        assert_eq!(b.windows.len(), 1);
        assert_eq!(b.alerts.len(), 1);
        assert_eq!(b.meta_u64("topk"), Some(1));
        assert_eq!(b.meta_u64("windows"), Some(1));
        assert_eq!(b.meta_u64("alerts"), Some(1));
        assert_eq!(b.meta_str("schema"), Some("vcdn-telemetry/1"));
    }

    #[test]
    fn reports_structural_errors_without_stopping() {
        let bad = "not json\n{\"type\":\"metric\"}\n";
        let mut errs = Vec::new();
        let bundles = parse_bundles(bad, &mut errs);
        assert!(bundles.is_empty());
        assert_eq!(errs.len(), 2);
        assert!(errs[0].contains("line 1"));
        assert!(errs[1].contains("before any meta"));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(as_u64(Some(&Json::Int(5))), Some(5));
        assert_eq!(as_u64(Some(&Json::Int(-1))), None);
        assert_eq!(as_u64(Some(&Json::Float(5.0))), None);
        assert_eq!(as_f64(Some(&Json::Int(5))), Some(5.0));
        assert_eq!(as_f64(Some(&Json::Float(0.5))), Some(0.5));
        assert_eq!(as_f64(Some(&Json::Str("x".into()))), None);
    }
}
