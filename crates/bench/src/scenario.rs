//! Deterministic scenario traces for the watchdog validation suite.
//!
//! ROADMAP item 5 asks for scenario suites that stress the telemetry
//! plane the way production incidents do. The first one is the classic
//! CDN incident: a **flash crowd** — a video goes viral mid-trace and a
//! surge of sessions for its (previously cold) renditions slams one
//! server. The surge churns the cache: fills for the viral chunks evict
//! the working set, the cache age collapses, and xLRU's Eq. 5 defense
//! starts redirecting the long tail. Interval efficiency drops and the
//! redirect rate spikes for the duration of the burst — exactly the
//! signature the `efficiency-drop` and `redirect-spike` rules in
//! `results/default.rules` exist to catch.
//!
//! Everything here is seeded and trace-clock-driven, so the scenario's
//! windows, alerts and rendered alert log are byte-identical across
//! worker counts and machines — CI pins the alert log as a golden file.

use std::sync::Arc;

use vcdn_core::{CachePolicy, XlruCache};
use vcdn_obs::{default_rules, render_alert_log, MetricsRegistry, MetricsSink, TelemetryBundle};
use vcdn_sim::engine::{engine_bundle, EngineConfig, EngineReport, ShardedEngine};
use vcdn_trace::rng::DetRng;
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ByteRange, ChunkSize, CostModel, DurationMs, Request, Timestamp, VideoId};

use crate::EXPERIMENT_SEED;

/// Shape of the synthetic flash crowd.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowdSpec {
    /// Base trace length in days.
    pub days: u64,
    /// Burst start as a fraction of the trace duration.
    pub start_frac: f64,
    /// Burst length in hours (spanning several one-hour health windows,
    /// so the `for N` debounced rules can fire).
    pub burst_hours: u64,
    /// Requests in the burst.
    pub burst_requests: usize,
    /// Distinct renditions of the viral video (bitrates/languages); all
    /// are fresh ids above the base catalog.
    pub renditions: u64,
    /// Bytes per rendition.
    pub rendition_bytes: u64,
    /// Bytes each burst request pulls (a range within its rendition).
    pub request_bytes: u64,
}

impl Default for FlashCrowdSpec {
    fn default() -> Self {
        FlashCrowdSpec {
            days: 2,
            start_frac: 0.5,
            burst_hours: 3,
            burst_requests: 1_500,
            renditions: 6,
            rendition_bytes: 64 * 1024 * 1024,
            request_bytes: 8 * 1024 * 1024,
        }
    }
}

/// The tiny-test base trace with a flash crowd spliced in: burst
/// requests for `spec.renditions` fresh video ids, uniformly spread over
/// `[start_frac, start_frac + burst_hours]`, stably merged into the base
/// request stream by timestamp (base requests win ties, so the base
/// replay order is undisturbed).
pub fn flash_crowd_trace(spec: &FlashCrowdSpec) -> Trace {
    let base = TraceGenerator::new(ServerProfile::tiny_test(), EXPERIMENT_SEED)
        .generate(DurationMs::from_days(spec.days));
    let duration = base.meta.duration;
    let first_viral = base.requests.iter().map(|r| r.video.0).max().unwrap_or(0) + 1;

    let start_ms = (duration.as_millis() as f64 * spec.start_frac) as u64;
    let burst_ms = DurationMs::from_hours(spec.burst_hours).as_millis();
    let mut rng = DetRng::new(EXPERIMENT_SEED ^ 0xf1a5_4c40);
    let mut burst: Vec<Request> = (0..spec.burst_requests)
        .map(|i| {
            let t = start_ms.saturating_add((i as u64 * burst_ms) / spec.burst_requests as u64);
            let video = VideoId(first_viral + rng.below(spec.renditions));
            let start = rng.below(spec.rendition_bytes.saturating_sub(spec.request_bytes) + 1);
            let bytes = ByteRange::new(start, start.saturating_add(spec.request_bytes) - 1)
                .expect("start <= end by construction");
            Request::new(video, bytes, Timestamp(t))
        })
        .collect();

    // Stable two-way merge by timestamp; both inputs are sorted.
    let mut requests = Vec::with_capacity(base.requests.len() + burst.len());
    let mut bi = burst.drain(..).peekable();
    for r in &base.requests {
        while bi.peek().is_some_and(|b| b.t < r.t) {
            requests.push(bi.next().expect("peeked"));
        }
        requests.push(*r);
    }
    requests.extend(bi);

    let mut meta = base.meta.clone();
    meta.name = "flash-crowd".into();
    meta.description = format!(
        "tiny-test {}d + viral burst: {} requests over {}h from {:.0}% across {} renditions",
        spec.days,
        spec.burst_requests,
        spec.burst_hours,
        spec.start_frac * 100.0,
        spec.renditions,
    );
    Trace { meta, requests }
}

/// Outcome of the canonical flash-crowd run, ready for rendering,
/// golden comparison and CI gating.
#[derive(Debug)]
pub struct FlashCrowdRun {
    /// The engine report (windows merged across shards).
    pub report: EngineReport,
    /// The full `vcdn-telemetry/1` bundle (windows + alerts included).
    pub bundle: TelemetryBundle,
    /// The rendered watchdog alert log (the pinned golden).
    pub alert_log: String,
}

/// Runs the canonical flash-crowd scenario: the [`flash_crowd_trace`]
/// through a 4-shard xLRU engine sized so the burst's fills churn the
/// working set, instrumented, on `workers` threads, judged by the stock
/// `results/default.rules`. Deterministic: the report's windows, the
/// bundle and the alert log are byte-identical for any `workers`.
pub fn run_flash_crowd(workers: usize) -> FlashCrowdRun {
    let trace = flash_crowd_trace(&FlashCrowdSpec::default());
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let cfg = EngineConfig::new(4, 64, k, costs).expect("valid engine config");
    let mut engine = ShardedEngine::try_new(cfg, |_, cache| -> Box<dyn CachePolicy> {
        Box::new(XlruCache::new(cache))
    })
    .expect("engine builds");
    let registry = Arc::new(MetricsRegistry::new());
    let sink: Arc<dyn MetricsSink> = registry.clone();
    engine.attach_obs(&sink, "flash");
    let report = engine.run(&trace, workers);
    let bundle = engine_bundle(&report, &registry, &default_rules());
    let alert_log = render_alert_log(&bundle.alerts);
    FlashCrowdRun {
        report,
        bundle,
        alert_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_crowd_trace_is_sorted_and_spliced() {
        let spec = FlashCrowdSpec::default();
        let trace = flash_crowd_trace(&spec);
        assert_eq!(trace.meta.name, "flash-crowd");
        for pair in trace.requests.windows(2) {
            assert!(pair[0].t <= pair[1].t, "merge broke timestamp order");
        }
        // The burst's renditions are fresh ids, above the base catalog,
        // and all of its requests land inside the burst interval.
        let base = TraceGenerator::new(ServerProfile::tiny_test(), EXPERIMENT_SEED)
            .generate(DurationMs::from_days(spec.days));
        let max_base = base.requests.iter().map(|r| r.video.0).max().unwrap();
        let viral: Vec<&Request> = trace
            .requests
            .iter()
            .filter(|r| r.video.0 > max_base)
            .collect();
        assert_eq!(viral.len(), spec.burst_requests);
        let start = (base.meta.duration.as_millis() as f64 * spec.start_frac) as u64;
        let end = start + DurationMs::from_hours(spec.burst_hours).as_millis();
        for r in &viral {
            assert!(r.t.0 >= start && r.t.0 < end, "burst request at {}", r.t.0);
        }
        assert_eq!(trace.requests.len(), base.requests.len() + viral.len());
    }

    #[test]
    fn flash_crowd_run_is_deterministic_across_workers() {
        let a = run_flash_crowd(1);
        let b = run_flash_crowd(4);
        assert_eq!(a.report, b.report);
        assert_eq!(a.bundle.to_jsonl(), b.bundle.to_jsonl());
        assert_eq!(a.alert_log, b.alert_log);
    }
}
