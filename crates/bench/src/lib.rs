//! Shared harness for the figure-reproduction experiment binaries.
//!
//! Every binary in `src/bin/` reproduces one figure of the paper (see
//! `DESIGN.md` §4 for the experiment index). This library centralises the
//! pieces they share: the scale model mapping the paper's physical setup
//! (1 TB disks, month-long traces) onto laptop-sized runs, trace
//! construction per server profile, and the policy-factory used to run the
//! same trace through xLRU, Cafe and Psychic.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod scenario;
pub mod telemetry;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use vcdn_core::{
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig,
    XlruCache,
};
use vcdn_sim::runner::{run_grid, worker_count, Cell, GridRun};
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

/// The paper's reference disk size (Figures 3–5, 7): 1 TB.
pub const PAPER_DISK_BYTES: u64 = 1024 * 1024 * 1024 * 1024;

/// Experiment scale: all volumes (disk, catalog, request rate) shrink by
/// the same linear factor, preserving the disk-to-working-set ratios that
/// drive the paper's results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// The default experiment scale (1/16 of the paper's physical setup).
    pub fn default_experiment() -> Self {
        Scale(1.0 / 16.0)
    }

    /// Reads the scale from the first CLI argument (`--scale <f>`), if
    /// present; falls back to the default.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    assert!(v > 0.0 && v.is_finite(), "--scale must be positive");
                    return Scale(v);
                }
            }
        }
        Self::default_experiment()
    }

    /// The scaled chunk count for a paper-scale disk of `bytes`.
    pub fn disk_chunks(&self, bytes: u64, k: ChunkSize) -> u64 {
        (((bytes as f64 * self.0) / k.bytes() as f64).round() as u64).max(1)
    }

    /// Scales a server profile's volume knobs.
    pub fn profile(&self, p: ServerProfile) -> ServerProfile {
        p.scaled(self.0)
    }
}

/// The workload seed used across all experiments (recorded in
/// `EXPERIMENTS.md`; change it and every number changes together).
pub const EXPERIMENT_SEED: u64 = 20140413; // EuroSys'14 opening day

/// Reads a `--name <value>` CLI flag.
pub fn arg_flag<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .and_then(|w| w[1].parse().ok())
}

/// Whether a bare `--name` CLI switch is present.
pub fn arg_switch(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Experiment duration in days (`--days`, default 30 — the paper's
/// "one month period").
pub fn arg_days() -> u64 {
    arg_flag("days").unwrap_or(30)
}

/// Generates a scaled trace for a profile.
pub fn trace_for(profile: ServerProfile, scale: Scale, days: u64) -> Trace {
    TraceGenerator::new(scale.profile(profile), EXPERIMENT_SEED)
        .generate(DurationMs::from_days(days))
}

/// The three algorithms of the paper's main experiments, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Baseline LRU (context only; not in the paper's figures).
    Lru,
    /// xLRU (§5).
    Xlru,
    /// Cafe (§6).
    Cafe,
    /// Psychic (§8).
    Psychic,
}

impl Algo {
    /// The paper's three compared algorithms, in bar-group order.
    pub fn paper_three() -> [Algo; 3] {
        [Algo::Xlru, Algo::Cafe, Algo::Psychic]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Lru => "lru",
            Algo::Xlru => "xlru",
            Algo::Cafe => "cafe",
            Algo::Psychic => "psychic",
        }
    }

    /// Builds the policy for a trace (Psychic needs the trace itself).
    pub fn build(
        &self,
        trace: &Trace,
        disk_chunks: u64,
        k: ChunkSize,
        costs: CostModel,
    ) -> Box<dyn CachePolicy> {
        let cache = CacheConfig::new(disk_chunks, k, costs);
        match self {
            Algo::Lru => Box::new(LruCache::new(cache)),
            Algo::Xlru => Box::new(XlruCache::new(cache)),
            Algo::Cafe => Box::new(CafeCache::new(CafeConfig {
                cache,
                ..CafeConfig::new(disk_chunks, k, costs)
            })),
            Algo::Psychic => Box::new(PsychicCache::new(
                PsychicConfig::new(disk_chunks, k, costs),
                &trace.requests,
            )),
        }
    }
}

/// Replays `trace` through one algorithm and reports.
pub fn run_algo(
    algo: Algo,
    trace: &Trace,
    disk_chunks: u64,
    k: ChunkSize,
    costs: CostModel,
) -> ReplayReport {
    let mut policy = algo.build(trace, disk_chunks, k, costs);
    Replayer::new(ReplayConfig::bench(k, costs)).replay(trace, policy.as_mut())
}

/// Replays `trace` through xLRU, Cafe and Psychic (figure order) via the
/// deterministic grid runner, at most one worker per algorithm.
pub fn run_paper_three(
    trace: &Trace,
    disk_chunks: u64,
    k: ChunkSize,
    costs: CostModel,
) -> Vec<ReplayReport> {
    let cells: Vec<Cell<ReplayReport>> = Algo::paper_three()
        .into_iter()
        .map(|a| Cell::new(a.name(), move || run_algo(a, trace, disk_chunks, k, costs)))
        .collect();
    run_grid(cells, grid_workers().min(3)).values()
}

/// Worker threads for experiment grids: the `VCDN_WORKERS` environment
/// variable if set, else available parallelism (see
/// [`vcdn_sim::runner::worker_count`]).
pub fn grid_workers() -> usize {
    worker_count()
}

/// Runs an experiment grid with a shared progress/timing report on stderr:
/// one line per finished cell, then totals with the measured speedup over
/// a sequential run (sum of per-cell wall times / grid wall time).
///
/// Results are deterministic: identical (labels and values) for any worker
/// count — set `VCDN_WORKERS=1` to force a sequential run.
pub fn sweep<'a, T: Send>(title: &str, cells: Vec<Cell<'a, T>>) -> GridRun<T> {
    let workers = grid_workers();
    let total = cells.len();
    eprintln!("[{title}] {total} cells on {workers} worker(s)");
    let done = AtomicUsize::new(0);
    let done = &done;
    let wrapped: Vec<Cell<T>> = cells
        .into_iter()
        .map(|cell| {
            let (label, job) = cell.into_parts();
            let echo = label.clone();
            let title = title.to_string();
            Cell::new(label, move || {
                let t0 = Instant::now();
                let value = job();
                let i = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!("[{title}] {i}/{total} done: {echo} ({:.2?})", t0.elapsed());
                value
            })
        })
        .collect();
    let run = run_grid(wrapped, workers);
    eprintln!(
        "[{title}] total {:.2?}; cells sum {:.2?}; speedup {:.2}x on {} worker(s)",
        run.total_wall,
        run.cell_wall_sum(),
        run.speedup(),
        run.workers,
    );
    run
}

/// Times `iters` runs of `f` (after one warm-up run) and prints the mean
/// per-iteration time. A dependency-free stand-in for a bench harness,
/// used by the `harness = false` benches under `benches/`.
pub fn bench_report(name: &str, iters: u32, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0, "bench needs at least one iteration");
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed() / iters;
    println!("{name:<48} {iters:>6} iters   {per:>12.2?}/iter");
    per
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_paper_disk() {
        let s = Scale(1.0 / 16.0);
        let k = ChunkSize::DEFAULT;
        // 1 TiB / 16 = 64 GiB = 32768 chunks of 2 MiB.
        assert_eq!(s.disk_chunks(PAPER_DISK_BYTES, k), 32_768);
        assert_eq!(Scale(1e-12).disk_chunks(PAPER_DISK_BYTES, k), 1);
    }

    #[test]
    fn algo_names_and_order() {
        let names: Vec<&str> = Algo::paper_three().iter().map(Algo::name).collect();
        assert_eq!(names, vec!["xlru", "cafe", "psychic"]);
        assert_eq!(Algo::Lru.name(), "lru");
    }

    #[test]
    fn sweep_preserves_input_order() {
        let cells: Vec<Cell<u32>> = (0..6)
            .map(|i| Cell::new(format!("c{i}"), move || i * 3))
            .collect();
        let run = sweep("test-sweep", cells);
        assert_eq!(run.values(), vec![0, 3, 6, 9, 12, 15]);
    }

    #[test]
    fn bench_report_times_the_closure() {
        let mut n = 0u64;
        let per = bench_report("noop", 4, || n += 1);
        assert_eq!(n, 5); // warm-up + 4 timed iterations
        assert!(per <= Duration::from_secs(1));
    }

    #[test]
    fn all_algorithms_replay_a_tiny_trace() {
        let scale = Scale(1.0);
        let trace = trace_for(ServerProfile::tiny_test(), scale, 1);
        let k = ChunkSize::DEFAULT;
        let costs = CostModel::from_alpha(2.0).unwrap();
        for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
            let report = run_algo(algo, &trace, 64, k, costs);
            assert_eq!(report.policy, algo.name());
            assert!(report.overall.total_requests() as usize == trace.len());
        }
    }
}
