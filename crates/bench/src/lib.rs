//! Shared harness for the figure-reproduction experiment binaries.
//!
//! Every binary in `src/bin/` reproduces one figure of the paper (see
//! `DESIGN.md` §4 for the experiment index). This library centralises the
//! pieces they share: the scale model mapping the paper's physical setup
//! (1 TB disks, month-long traces) onto laptop-sized runs, trace
//! construction per server profile, and the policy-factory used to run the
//! same trace through xLRU, Cafe and Psychic.

use vcdn_core::{
    CacheConfig, CachePolicy, CafeCache, CafeConfig, LruCache, PsychicCache, PsychicConfig,
    XlruCache,
};
use vcdn_sim::{ReplayConfig, ReplayReport, Replayer};
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

/// The paper's reference disk size (Figures 3–5, 7): 1 TB.
pub const PAPER_DISK_BYTES: u64 = 1024 * 1024 * 1024 * 1024;

/// Experiment scale: all volumes (disk, catalog, request rate) shrink by
/// the same linear factor, preserving the disk-to-working-set ratios that
/// drive the paper's results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Scale {
    /// The default experiment scale (1/16 of the paper's physical setup).
    pub fn default_experiment() -> Self {
        Scale(1.0 / 16.0)
    }

    /// Reads the scale from the first CLI argument (`--scale <f>`), if
    /// present; falls back to the default.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        for i in 0..args.len() {
            if args[i] == "--scale" {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    assert!(v > 0.0 && v.is_finite(), "--scale must be positive");
                    return Scale(v);
                }
            }
        }
        Self::default_experiment()
    }

    /// The scaled chunk count for a paper-scale disk of `bytes`.
    pub fn disk_chunks(&self, bytes: u64, k: ChunkSize) -> u64 {
        (((bytes as f64 * self.0) / k.bytes() as f64).round() as u64).max(1)
    }

    /// Scales a server profile's volume knobs.
    pub fn profile(&self, p: ServerProfile) -> ServerProfile {
        p.scaled(self.0)
    }
}

/// The workload seed used across all experiments (recorded in
/// `EXPERIMENTS.md`; change it and every number changes together).
pub const EXPERIMENT_SEED: u64 = 20140413; // EuroSys'14 opening day

/// Reads a `--name <value>` CLI flag.
pub fn arg_flag<T: std::str::FromStr>(name: &str) -> Option<T> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .and_then(|w| w[1].parse().ok())
}

/// Whether a bare `--name` CLI switch is present.
pub fn arg_switch(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Experiment duration in days (`--days`, default 30 — the paper's
/// "one month period").
pub fn arg_days() -> u64 {
    arg_flag("days").unwrap_or(30)
}

/// Generates a scaled trace for a profile.
pub fn trace_for(profile: ServerProfile, scale: Scale, days: u64) -> Trace {
    TraceGenerator::new(scale.profile(profile), EXPERIMENT_SEED)
        .generate(DurationMs::from_days(days))
}

/// The three algorithms of the paper's main experiments, in figure order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Baseline LRU (context only; not in the paper's figures).
    Lru,
    /// xLRU (§5).
    Xlru,
    /// Cafe (§6).
    Cafe,
    /// Psychic (§8).
    Psychic,
}

impl Algo {
    /// The paper's three compared algorithms, in bar-group order.
    pub fn paper_three() -> [Algo; 3] {
        [Algo::Xlru, Algo::Cafe, Algo::Psychic]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Lru => "lru",
            Algo::Xlru => "xlru",
            Algo::Cafe => "cafe",
            Algo::Psychic => "psychic",
        }
    }

    /// Builds the policy for a trace (Psychic needs the trace itself).
    pub fn build(
        &self,
        trace: &Trace,
        disk_chunks: u64,
        k: ChunkSize,
        costs: CostModel,
    ) -> Box<dyn CachePolicy> {
        let cache = CacheConfig::new(disk_chunks, k, costs);
        match self {
            Algo::Lru => Box::new(LruCache::new(cache)),
            Algo::Xlru => Box::new(XlruCache::new(cache)),
            Algo::Cafe => Box::new(CafeCache::new(CafeConfig {
                cache,
                ..CafeConfig::new(disk_chunks, k, costs)
            })),
            Algo::Psychic => Box::new(PsychicCache::new(
                PsychicConfig::new(disk_chunks, k, costs),
                &trace.requests,
            )),
        }
    }
}

/// Replays `trace` through one algorithm and reports.
pub fn run_algo(
    algo: Algo,
    trace: &Trace,
    disk_chunks: u64,
    k: ChunkSize,
    costs: CostModel,
) -> ReplayReport {
    let mut policy = algo.build(trace, disk_chunks, k, costs);
    Replayer::new(ReplayConfig::new(k, costs)).replay(trace, policy.as_mut())
}

/// Replays `trace` through xLRU, Cafe and Psychic (figure order), one
/// worker thread per algorithm.
pub fn run_paper_three(
    trace: &Trace,
    disk_chunks: u64,
    k: ChunkSize,
    costs: CostModel,
) -> Vec<ReplayReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = Algo::paper_three()
            .into_iter()
            .map(|a| scope.spawn(move || run_algo(a, trace, disk_chunks, k, costs)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replay worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_paper_disk() {
        let s = Scale(1.0 / 16.0);
        let k = ChunkSize::DEFAULT;
        // 1 TiB / 16 = 64 GiB = 32768 chunks of 2 MiB.
        assert_eq!(s.disk_chunks(PAPER_DISK_BYTES, k), 32_768);
        assert_eq!(Scale(1e-12).disk_chunks(PAPER_DISK_BYTES, k), 1);
    }

    #[test]
    fn algo_names_and_order() {
        let names: Vec<&str> = Algo::paper_three().iter().map(Algo::name).collect();
        assert_eq!(names, vec!["xlru", "cafe", "psychic"]);
        assert_eq!(Algo::Lru.name(), "lru");
    }

    #[test]
    fn all_algorithms_replay_a_tiny_trace() {
        let scale = Scale(1.0);
        let trace = trace_for(ServerProfile::tiny_test(), scale, 1);
        let k = ChunkSize::DEFAULT;
        let costs = CostModel::from_alpha(2.0).unwrap();
        for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
            let report = run_algo(algo, &trace, 64, k, costs);
            assert_eq!(report.policy, algo.name());
            assert!(report.overall.total_requests() as usize == trace.len());
        }
    }
}
