//! Micro-benchmarks: request-handling throughput of each cache policy on a
//! realistic (tiny-profile) request stream.
//!
//! Plain `harness = false` timing mains via [`vcdn_bench::bench_report`] —
//! the workspace builds offline, so no external bench framework.

use vcdn_bench::{bench_report, Algo};
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn trace() -> Trace {
    TraceGenerator::new(ServerProfile::tiny_test(), 99).generate(DurationMs::from_days(2))
}

fn main() {
    let trace = trace();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = 512;

    println!("handle_request ({} requests per iter)", trace.len());
    for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
        bench_report(&format!("handle_request/{}", algo.name()), 10, || {
            let mut policy = algo.build(&trace, disk, k, costs);
            for r in &trace.requests {
                std::hint::black_box(policy.handle_request(r));
            }
        });
    }

    let costs = CostModel::balanced();
    bench_report("psychic_oracle_build", 10, || {
        std::hint::black_box(vcdn_core::PsychicCache::new(
            vcdn_core::PsychicConfig::new(512, k, costs),
            &trace.requests,
        ));
    });
}
