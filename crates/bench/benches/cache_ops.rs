//! Criterion micro-benchmarks: request-handling throughput of each cache
//! policy on a realistic (tiny-profile) request stream.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use vcdn_bench::Algo;
use vcdn_trace::{ServerProfile, Trace, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs};

fn trace() -> Trace {
    TraceGenerator::new(ServerProfile::tiny_test(), 99).generate(DurationMs::from_days(2))
}

fn bench_policies(c: &mut Criterion) {
    let trace = trace();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::from_alpha(2.0).expect("valid alpha");
    let disk = 512;
    let mut group = c.benchmark_group("handle_request");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for algo in [Algo::Lru, Algo::Xlru, Algo::Cafe, Algo::Psychic] {
        group.bench_function(algo.name(), |b| {
            b.iter_batched(
                || algo.build(&trace, disk, k, costs),
                |mut policy| {
                    for r in &trace.requests {
                        std::hint::black_box(policy.handle_request(r));
                    }
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_psychic_oracle_build(c: &mut Criterion) {
    let trace = trace();
    let k = ChunkSize::DEFAULT;
    let costs = CostModel::balanced();
    c.bench_function("psychic_oracle_build", |b| {
        b.iter(|| {
            std::hint::black_box(vcdn_core::PsychicCache::new(
                vcdn_core::PsychicConfig::new(512, k, costs),
                &trace.requests,
            ))
        });
    });
}

criterion_group!(benches, bench_policies, bench_psychic_oracle_build);
criterion_main!(benches);
