//! Criterion micro-benchmarks: trace generation throughput and simplex
//! solve times on Optimal-cache instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vcdn_core::{lp_bound_paper, lp_bound_reduced, CacheConfig};
use vcdn_trace::{downsample, DownsampleConfig, ServerProfile, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs, Timestamp};

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    for hours in [6u64, 24] {
        let gen = TraceGenerator::new(ServerProfile::tiny_test(), 5);
        let n = gen.generate(DurationMs::from_hours(hours)).len() as u64;
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("tiny_test", hours), &hours, |b, &h| {
            b.iter(|| std::hint::black_box(gen.generate(DurationMs::from_hours(h))));
        });
    }
    group.finish();
}

fn bench_lp_solves(c: &mut Criterion) {
    // A fixed downsampled instance, solved by both formulations.
    let full =
        TraceGenerator::new(ServerProfile::tiny_test(), 13).generate(DurationMs::from_days(1));
    let cfg_ds = DownsampleConfig {
        files: 20,
        ..DownsampleConfig::paper_default(Timestamp::EPOCH)
    };
    let mut trace = downsample(&full, &cfg_ds);
    trace.requests.truncate(40);
    let k = ChunkSize::new(4 * 1024 * 1024).expect("non-zero");
    let cache = CacheConfig::new(8, k, CostModel::from_alpha(2.0).expect("valid alpha"));

    let mut group = c.benchmark_group("optimal_lp");
    group.sample_size(10);
    group.bench_function("paper_formulation_40req", |b| {
        b.iter(|| lp_bound_paper(&trace.requests, &cache).expect("solves"));
    });
    group.bench_function("reduced_formulation_40req", |b| {
        b.iter(|| lp_bound_reduced(&trace.requests, &cache).expect("solves"));
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation, bench_lp_solves);
criterion_main!(benches);
