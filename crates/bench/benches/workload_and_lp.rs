//! Micro-benchmarks: trace generation throughput and simplex solve times
//! on Optimal-cache instances.
//!
//! Plain `harness = false` timing mains via [`vcdn_bench::bench_report`] —
//! the workspace builds offline, so no external bench framework.

use vcdn_bench::bench_report;
use vcdn_core::{lp_bound_paper, lp_bound_reduced, CacheConfig};
use vcdn_trace::{downsample, DownsampleConfig, ServerProfile, TraceGenerator};
use vcdn_types::{ChunkSize, CostModel, DurationMs, Timestamp};

fn bench_trace_generation() {
    for hours in [6u64, 24] {
        let gen = TraceGenerator::new(ServerProfile::tiny_test(), 5);
        let n = gen.generate(DurationMs::from_hours(hours)).len();
        println!("trace_generation/tiny_test_{hours}h ({n} requests per iter)");
        bench_report(&format!("trace_generation/tiny_test_{hours}h"), 10, || {
            std::hint::black_box(gen.generate(DurationMs::from_hours(hours)));
        });
    }
}

fn bench_lp_solves() {
    // A fixed downsampled instance, solved by both formulations.
    let full =
        TraceGenerator::new(ServerProfile::tiny_test(), 13).generate(DurationMs::from_days(1));
    let cfg_ds = DownsampleConfig {
        files: 20,
        ..DownsampleConfig::paper_default(Timestamp::EPOCH)
    };
    let mut trace = downsample(&full, &cfg_ds);
    trace.requests.truncate(40);
    let k = ChunkSize::new(4 * 1024 * 1024).expect("non-zero");
    let cache = CacheConfig::new(8, k, CostModel::from_alpha(2.0).expect("valid alpha"));

    bench_report("optimal_lp/paper_formulation_40req", 10, || {
        std::hint::black_box(lp_bound_paper(&trace.requests, &cache).expect("solves"));
    });
    bench_report("optimal_lp/reduced_formulation_40req", 10, || {
        std::hint::black_box(lp_bound_reduced(&trace.requests, &cache).expect("solves"));
    });
}

fn main() {
    bench_trace_generation();
    bench_lp_solves();
}
