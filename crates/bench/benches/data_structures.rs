//! Micro-benchmarks: the paper's two cache data structures — xLRU's
//! list+hashmap (O(1) ops) and Cafe's tree+hashmap (O(log n) insertions).
//!
//! Plain `harness = false` timing mains via [`vcdn_bench::bench_report`] —
//! the workspace builds offline, so no external bench framework.

use vcdn_bench::bench_report;
use vcdn_core::ds::{IndexedLruList, KeyedSet};
use vcdn_types::{ChunkId, Timestamp, VideoId};

const N: u64 = 100_000;

fn chunk(i: u64) -> ChunkId {
    ChunkId::new(VideoId(i / 64), (i % 64) as u32)
}

fn bench_lru_list() {
    println!("indexed_lru_list ({N} elements per iter)");

    bench_report("indexed_lru_list/touch_insert", 20, || {
        let mut l = IndexedLruList::new();
        for i in 0..N {
            l.touch(chunk(i), Timestamp(i));
        }
        std::hint::black_box(&l);
    });

    let mut warm = IndexedLruList::new();
    for i in 0..N {
        warm.touch(chunk(i), Timestamp(i));
    }
    bench_report("indexed_lru_list/touch_move_to_front", 20, || {
        let mut l = warm.clone();
        for i in 0..N {
            l.touch(chunk((i * 7919) % N), Timestamp(N + i));
        }
        std::hint::black_box(&l);
    });

    bench_report("indexed_lru_list/pop_oldest", 20, || {
        let mut l = warm.clone();
        while l.pop_oldest().is_some() {}
        std::hint::black_box(&l);
    });
}

fn bench_keyed_set() {
    println!("keyed_set ({N} elements per iter)");

    bench_report("keyed_set/insert", 20, || {
        let mut s = KeyedSet::new();
        for i in 0..N {
            s.insert(chunk(i), (i as f64 * 0.37) % 1e6);
        }
        std::hint::black_box(&s);
    });

    let mut warm = KeyedSet::new();
    for i in 0..N {
        warm.insert(chunk(i), i as f64);
    }
    bench_report("keyed_set/rekey", 20, || {
        let mut s = warm.clone();
        for i in 0..N {
            s.insert(chunk((i * 6151) % N), (N + i) as f64);
        }
        std::hint::black_box(&s);
    });

    let mut warm = KeyedSet::new();
    for i in 0..N {
        warm.insert(chunk(i), (i as f64 * 0.61) % 1e6);
    }
    bench_report("keyed_set/pop_smallest", 20, || {
        let mut s = warm.clone();
        while s.pop_smallest().is_some() {}
        std::hint::black_box(&s);
    });
}

fn main() {
    bench_lru_list();
    bench_keyed_set();
}
