//! Criterion micro-benchmarks: the paper's two cache data structures —
//! xLRU's list+hashmap (O(1) ops) and Cafe's tree+hashmap (O(log n)
//! insertions).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use vcdn_core::ds::{IndexedLruList, KeyedSet};
use vcdn_types::{ChunkId, Timestamp, VideoId};

const N: u64 = 100_000;

fn chunk(i: u64) -> ChunkId {
    ChunkId::new(VideoId(i / 64), (i % 64) as u32)
}

fn bench_lru_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_lru_list");
    group.throughput(Throughput::Elements(N));

    group.bench_function("touch_insert", |b| {
        b.iter_batched(
            IndexedLruList::new,
            |mut l| {
                for i in 0..N {
                    l.touch(chunk(i), Timestamp(i));
                }
                l
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("touch_move_to_front", |b| {
        let mut warm = IndexedLruList::new();
        for i in 0..N {
            warm.touch(chunk(i), Timestamp(i));
        }
        b.iter_batched(
            || warm.clone(),
            |mut l| {
                for i in 0..N {
                    l.touch(chunk((i * 7919) % N), Timestamp(N + i));
                }
                l
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("pop_oldest", |b| {
        let mut warm = IndexedLruList::new();
        for i in 0..N {
            warm.touch(chunk(i), Timestamp(i));
        }
        b.iter_batched(
            || warm.clone(),
            |mut l| {
                while l.pop_oldest().is_some() {}
                l
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_keyed_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("keyed_set");
    group.throughput(Throughput::Elements(N));

    group.bench_function("insert", |b| {
        b.iter_batched(
            KeyedSet::new,
            |mut s| {
                for i in 0..N {
                    s.insert(chunk(i), (i as f64 * 0.37) % 1e6);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("rekey", |b| {
        let mut warm = KeyedSet::new();
        for i in 0..N {
            warm.insert(chunk(i), i as f64);
        }
        b.iter_batched(
            || warm.clone(),
            |mut s| {
                for i in 0..N {
                    s.insert(chunk((i * 6151) % N), (N + i) as f64);
                }
                s
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("pop_smallest", |b| {
        let mut warm = KeyedSet::new();
        for i in 0..N {
            warm.insert(chunk(i), (i as f64 * 0.61) % 1e6);
        }
        b.iter_batched(
            || warm.clone(),
            |mut s| {
                while s.pop_smallest().is_some() {}
                s
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_lru_list, bench_keyed_set);
criterion_main!(benches);
