//! Watchdog validation on the synthetic flash crowd: a video goes viral
//! mid-trace, the burst's fills churn the working set, and the
//! `efficiency-drop` and `redirect-spike` rules must fire in the
//! expected windows — pinned against the golden alert log so any drift
//! in the window plane, the detector semantics or the stock rules shows
//! up as a reviewable diff.

use vcdn_bench::scenario::{run_flash_crowd, FlashCrowdSpec};
use vcdn_obs::Severity;

const GOLDEN: &str = include_str!("../goldens/flash_crowd_alerts.txt");

#[test]
fn flash_crowd_fires_the_expected_rules_in_the_expected_windows() {
    let run = run_flash_crowd(2);
    let spec = FlashCrowdSpec::default();
    let first_burst_window = ((spec.days * 24) as f64 * spec.start_frac) as u64;
    let last_burst_window = first_burst_window + spec.burst_hours - 1;

    // Both drift rules fire, critical, inside the burst (the `for 2`
    // debounce places them one window after the first breach).
    for rule in ["efficiency-drop", "redirect-spike"] {
        let alert = run
            .bundle
            .alerts
            .iter()
            .find(|a| a.rule == rule)
            .unwrap_or_else(|| panic!("{rule} never fired:\n{}", run.alert_log));
        assert_eq!(alert.severity, Severity::Critical, "{rule}");
        assert!(
            (first_burst_window..=last_burst_window).contains(&alert.window),
            "{rule} fired at window {}, burst spans {first_burst_window}..={last_burst_window}",
            alert.window
        );
        // A drift alert carries the pre-incident baseline, so the drop
        // is legible straight from the event.
        assert!(
            alert.baseline.is_finite() && alert.observed.is_finite(),
            "{rule}: degenerate baseline/observed"
        );
    }

    // The whole rendered log matches the pinned golden byte-for-byte.
    assert_eq!(
        run.alert_log, GOLDEN,
        "alert log drifted from crates/bench/goldens/flash_crowd_alerts.txt \
         (re-pin with obs_watch --write-golden only if the change is intended)"
    );
}

#[test]
fn flash_crowd_windows_show_the_incident() {
    let run = run_flash_crowd(1);
    let spec = FlashCrowdSpec::default();
    let first_burst_window = ((spec.days * 24) as f64 * spec.start_frac) as usize;
    let windows = &run.bundle.windows;
    assert_eq!(windows.len(), (spec.days * 24) as usize);

    // Pre-burst steady state is healthy; the burst window collapses it.
    let pre: f64 = windows[first_burst_window - 4..first_burst_window]
        .iter()
        .map(|w| w.efficiency)
        .sum::<f64>()
        / 4.0;
    let hit = &windows[first_burst_window];
    assert!(
        pre - hit.efficiency > 0.3,
        "burst window efficiency {} not far below pre-burst {pre}",
        hit.efficiency
    );
    assert!(
        hit.redirect_rate > 0.2,
        "burst window redirect rate {} too low",
        hit.redirect_rate
    );
    // The churn is visible: the viral fills evicted the working set.
    assert!(hit.evicted_chunks > 500, "evictions {}", hit.evicted_chunks);
}
