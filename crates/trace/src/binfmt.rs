//! Compact binary trace format.
//!
//! JSON lines are convenient but cost ~100 bytes per request; a month of
//! a busy server is millions of requests. This module defines `VCTB`
//! ("video-CDN trace, binary"), a little-endian record format:
//!
//! ```text
//! header:  magic "VCTB" | u32 version | u64 seed | u64 duration_ms
//!          | u32 name_len | name bytes | u32 desc_len | desc bytes
//!          | u64 request_count
//! record:  u64 video | u64 byte_start | u64 byte_end | u64 t_ms   (32 B)
//! footer:  u64 xor-checksum of all record words
//! ```
//!
//! Loading validates the magic, version, request count, timestamp
//! monotonicity, range validity and the checksum, so a truncated or
//! corrupted file is rejected rather than silently misread.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use vcdn_types::{ByteRange, DurationMs, Request, Timestamp, VideoId};

use crate::trace::{Trace, TraceMeta};

/// File magic.
const MAGIC: &[u8; 4] = b"VCTB";
/// Current format version.
const VERSION: u32 = 1;

/// Errors reading or writing binary traces.
#[derive(Debug)]
pub enum BinTraceError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the `VCTB` magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// A length or count field is implausible for the file size.
    CorruptHeader(String),
    /// A request record is invalid (range or time ordering).
    CorruptRecord { index: u64, reason: String },
    /// The footer checksum does not match.
    ChecksumMismatch,
}

impl std::fmt::Display for BinTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinTraceError::Io(e) => write!(f, "binary trace I/O error: {e}"),
            BinTraceError::BadMagic => write!(f, "not a VCTB trace file"),
            BinTraceError::UnsupportedVersion(v) => {
                write!(f, "unsupported VCTB version {v} (supported: {VERSION})")
            }
            BinTraceError::CorruptHeader(why) => write!(f, "corrupt VCTB header: {why}"),
            BinTraceError::CorruptRecord { index, reason } => {
                write!(f, "corrupt VCTB record #{index}: {reason}")
            }
            BinTraceError::ChecksumMismatch => write!(f, "VCTB checksum mismatch"),
        }
    }
}

impl std::error::Error for BinTraceError {}

impl From<std::io::Error> for BinTraceError {
    fn from(e: std::io::Error) -> Self {
        BinTraceError::Io(e)
    }
}

/// Upper bound on header string lengths (sanity check against garbage).
const MAX_STRING: u32 = 1 << 16;

fn write_u32(w: &mut impl Write, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> std::io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Saves a trace in the `VCTB` binary format.
pub fn save_binary(trace: &Trace, path: &Path) -> Result<(), BinTraceError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, trace.meta.seed)?;
    write_u64(&mut w, trace.meta.duration.as_millis())?;
    let name = trace.meta.name.as_bytes();
    let desc = trace.meta.description.as_bytes();
    write_u32(&mut w, name.len() as u32)?;
    w.write_all(name)?;
    write_u32(&mut w, desc.len() as u32)?;
    w.write_all(desc)?;
    write_u64(&mut w, trace.requests.len() as u64)?;
    let mut checksum = 0u64;
    for r in &trace.requests {
        let words = [r.video.0, r.bytes.start, r.bytes.end, r.t.as_millis()];
        for wd in words {
            write_u64(&mut w, wd)?;
            checksum ^= wd.rotate_left((checksum % 63) as u32);
        }
    }
    write_u64(&mut w, checksum)?;
    w.flush()?;
    Ok(())
}

/// Loads a trace saved by [`save_binary`], validating structure, record
/// sanity and the checksum.
pub fn load_binary(path: &Path) -> Result<Trace, BinTraceError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinTraceError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(BinTraceError::UnsupportedVersion(version));
    }
    let seed = read_u64(&mut r)?;
    let duration = DurationMs(read_u64(&mut r)?);
    let read_string = |r: &mut BufReader<File>| -> Result<String, BinTraceError> {
        let len = read_u32(r)?;
        if len > MAX_STRING {
            return Err(BinTraceError::CorruptHeader(format!(
                "string length {len} exceeds {MAX_STRING}"
            )));
        }
        let mut buf = vec![0u8; len as usize];
        r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| BinTraceError::CorruptHeader("non-UTF-8 string".into()))
    };
    let name = read_string(&mut r)?;
    let description = read_string(&mut r)?;
    let count = read_u64(&mut r)?;

    let mut requests = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut checksum = 0u64;
    let mut last_t = 0u64;
    for index in 0..count {
        let mut words = [0u64; 4];
        for wd in &mut words {
            *wd = read_u64(&mut r)?;
            checksum ^= wd.rotate_left((checksum % 63) as u32);
        }
        let [video, start, end, t] = words;
        if start > end {
            return Err(BinTraceError::CorruptRecord {
                index,
                reason: format!("inverted byte range {start}..{end}"),
            });
        }
        if t < last_t {
            return Err(BinTraceError::CorruptRecord {
                index,
                reason: format!("timestamp {t} before previous {last_t}"),
            });
        }
        last_t = t;
        requests.push(Request::new(
            VideoId(video),
            ByteRange::new(start, end).expect("checked above"),
            Timestamp(t),
        ));
    }
    let stored = read_u64(&mut r)?;
    if stored != checksum {
        return Err(BinTraceError::ChecksumMismatch);
    }
    Ok(Trace {
        meta: TraceMeta {
            name,
            seed,
            duration,
            description,
        },
        requests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::TraceGenerator, profile::ServerProfile};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vcdn-binfmt-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 3).generate(DurationMs::from_hours(6))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let p = tmp("roundtrip.vctb");
        save_binary(&t, &p).expect("save");
        let back = load_binary(&p).expect("load");
        assert_eq!(back, t);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let t = sample();
        let pb = tmp("size.vctb");
        let pj = tmp("size.jsonl");
        save_binary(&t, &pb).expect("save bin");
        t.save_jsonl(&pj).expect("save jsonl");
        let sb = std::fs::metadata(&pb).expect("bin meta").len();
        let sj = std::fs::metadata(&pj).expect("jsonl meta").len();
        assert!(
            sb < sj,
            "binary ({sb}B) should be smaller than JSONL ({sj}B)"
        );
        // Exactly 32 bytes per record plus a bounded header/footer.
        let overhead = sb - 32 * t.len() as u64;
        assert!(
            overhead < 256 + t.meta.name.len() as u64 + t.meta.description.len() as u64,
            "unexpected binary overhead: {overhead}B"
        );
        std::fs::remove_file(&pb).ok();
        std::fs::remove_file(&pj).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let p = tmp("magic.vctb");
        std::fs::write(&p, b"NOPE0000000000000000000000000000").expect("write");
        assert!(matches!(load_binary(&p), Err(BinTraceError::BadMagic)));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_wrong_version() {
        let t = sample();
        let p = tmp("version.vctb");
        save_binary(&t, &p).expect("save");
        let mut bytes = std::fs::read(&p).expect("read");
        bytes[4] = 99; // version field
        std::fs::write(&p, &bytes).expect("rewrite");
        assert!(matches!(
            load_binary(&p),
            Err(BinTraceError::UnsupportedVersion(99))
        ));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn detects_payload_corruption() {
        let t = sample();
        let p = tmp("corrupt.vctb");
        save_binary(&t, &p).expect("save");
        let mut bytes = std::fs::read(&p).expect("read");
        // Flip a bit in the middle of the record area.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).expect("rewrite");
        // Either a structural check or the checksum must catch it.
        assert!(load_binary(&p).is_err(), "corruption not detected");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn detects_truncation() {
        let t = sample();
        let p = tmp("trunc.vctb");
        save_binary(&t, &p).expect("save");
        let bytes = std::fs::read(&p).expect("read");
        std::fs::write(&p, &bytes[..bytes.len() - 9]).expect("rewrite");
        assert!(load_binary(&p).is_err(), "truncation not detected");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace {
            meta: TraceMeta {
                name: "empty".into(),
                seed: 0,
                duration: DurationMs::ZERO,
                description: String::new(),
            },
            requests: vec![],
        };
        let p = tmp("empty.vctb");
        save_binary(&t, &p).expect("save");
        assert_eq!(load_binary(&p).expect("load"), t);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn header_strings_roundtrip_unicode() {
        let mut t = sample();
        t.meta.name = "sérvér-ü".into();
        t.meta.description = "描述 with unicode ✓".into();
        let p = tmp("unicode.vctb");
        save_binary(&t, &p).expect("save");
        let back = load_binary(&p).expect("load");
        assert_eq!(back.meta.name, t.meta.name);
        assert_eq!(back.meta.description, t.meta.description);
        std::fs::remove_file(&p).ok();
    }
}
