//! Down-sampling a trace for the Optimal-cache experiment.
//!
//! The paper's §9.1 limits the data fed to the Integer-Programming Optimal
//! cache: "We use the traces of a two day period, which we down-sample to
//! contain the requests for a representative subset of 100 distinct files —
//! selected uniformly from the list of files sorted by their hit count
//! during the two days. We also cap the file size to 20 MB for this
//! experiment. We select the disk size such that it can store 5 % of all
//! requested chunks in the down-sampled data."
//!
//! [`downsample`] reproduces exactly that procedure.

use std::collections::HashSet;

use vcdn_types::{ByteRange, ChunkSize, Request, Timestamp, VideoId};

use crate::{stats::video_hit_counts, trace::Trace};

/// Parameters of the §9.1 down-sampling procedure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownsampleConfig {
    /// Number of distinct files to keep (paper: 100).
    pub files: usize,
    /// File-size cap in bytes (paper: 20 MB); requests beyond the cap are
    /// clipped, requests entirely beyond it dropped.
    pub size_cap_bytes: u64,
    /// Window start (inclusive).
    pub from: Timestamp,
    /// Window end (exclusive). Paper: a two-day period.
    pub to: Timestamp,
}

impl DownsampleConfig {
    /// The paper's configuration over `[from, from + 2 days)`.
    pub fn paper_default(from: Timestamp) -> Self {
        DownsampleConfig {
            files: 100,
            size_cap_bytes: 20 * 1024 * 1024,
            from,
            to: from + vcdn_types::DurationMs::from_days(2),
        }
    }
}

/// Down-samples `trace` per the paper's §9.1 procedure and returns the
/// reduced trace. Selection is deterministic: files are sorted by
/// (hit count, video id) descending and picked at uniformly spaced indices.
///
/// # Panics
///
/// Panics if `config.files == 0` or `config.size_cap_bytes == 0`.
pub fn downsample(trace: &Trace, config: &DownsampleConfig) -> Trace {
    assert!(config.files > 0, "files must be > 0");
    assert!(config.size_cap_bytes > 0, "size_cap_bytes must be > 0");
    let window = trace.window(config.from, config.to);

    // Rank files by hit count over the window (stable total order).
    let hits = video_hit_counts(&window);
    let mut ranked: Vec<(VideoId, u64)> = hits.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Uniform selection across the sorted list — "selected uniformly from
    // the list of files sorted by their hit count".
    let keep: HashSet<VideoId> = if ranked.len() <= config.files {
        ranked.iter().map(|(v, _)| *v).collect()
    } else {
        (0..config.files)
            .map(|i| {
                // Evenly spaced positions across the ranked list.
                let pos = i * (ranked.len() - 1) / (config.files - 1).max(1);
                ranked[pos].0
            })
            .collect()
    };

    let cap_end = config.size_cap_bytes.saturating_sub(1); // inclusive last allowed byte
    let requests: Vec<Request> = window
        .requests
        .iter()
        .filter(|r| keep.contains(&r.video))
        .filter_map(|r| {
            if r.bytes.start > cap_end {
                return None; // entirely beyond the cap
            }
            let clipped = ByteRange::new(r.bytes.start, r.bytes.end.min(cap_end))
                .expect("start <= min(end, cap) checked above");
            Some(Request::new(r.video, clipped, r.t))
        })
        .collect();

    Trace {
        meta: crate::trace::TraceMeta {
            description: format!(
                "{} [downsampled: {} files, cap {} bytes]",
                window.meta.description,
                keep.len(),
                config.size_cap_bytes
            ),
            ..window.meta.clone()
        },
        requests,
    }
}

/// The paper's disk size for the Optimal experiment: the number of chunks
/// that stores `percent`% of all *distinct* requested chunks in `trace`.
pub fn disk_chunks_for_fraction(trace: &Trace, k: ChunkSize, percent: f64) -> u64 {
    let unique = crate::stats::chunk_hit_counts(trace, k).len();
    ((unique as f64 * percent / 100.0).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::TraceGenerator, profile::ServerProfile};
    use vcdn_types::DurationMs;

    fn trace() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 21).generate(DurationMs::from_days(3))
    }

    fn cfg(files: usize) -> DownsampleConfig {
        DownsampleConfig {
            files,
            size_cap_bytes: 20 * 1024 * 1024,
            from: Timestamp::EPOCH,
            to: Timestamp(DurationMs::from_days(2).as_millis()),
        }
    }

    #[test]
    fn keeps_at_most_the_requested_number_of_files() {
        let t = trace();
        let d = downsample(&t, &cfg(50));
        let hits = video_hit_counts(&d);
        assert!(hits.len() <= 50);
        assert!(hits.len() >= 40, "selection too lossy: {}", hits.len());
    }

    #[test]
    fn respects_the_window() {
        let d = downsample(&trace(), &cfg(50));
        let end = Timestamp(DurationMs::from_days(2).as_millis());
        assert!(d.requests.iter().all(|r| r.t < end));
    }

    #[test]
    fn caps_file_size() {
        let d = downsample(&trace(), &cfg(100));
        let cap = 20 * 1024 * 1024;
        assert!(d.requests.iter().all(|r| r.bytes.end < cap));
    }

    #[test]
    fn selection_spans_popularity_spectrum() {
        // Selected files must include both popular and unpopular ones.
        let t = trace();
        let window = t.window(
            Timestamp::EPOCH,
            Timestamp(DurationMs::from_days(2).as_millis()),
        );
        let hits = video_hit_counts(&window);
        let d = downsample(&t, &cfg(30));
        let kept = video_hit_counts(&d);
        let kept_counts: Vec<u64> = kept.keys().map(|v| hits[v]).collect();
        let max_all = *hits.values().max().unwrap();
        let kept_max = *kept_counts.iter().max().unwrap();
        let kept_min = *kept_counts.iter().min().unwrap();
        assert_eq!(kept_max, max_all, "most popular file must be selected");
        assert!(
            kept_min <= 3,
            "tail file should be selected, min={kept_min}"
        );
    }

    #[test]
    fn deterministic() {
        let t = trace();
        assert_eq!(downsample(&t, &cfg(40)), downsample(&t, &cfg(40)));
    }

    #[test]
    fn small_trace_keeps_all_files() {
        let t = trace();
        let d = downsample(&t, &cfg(usize::MAX / 2));
        let before = video_hit_counts(&t.window(
            Timestamp::EPOCH,
            Timestamp(DurationMs::from_days(2).as_millis()),
        ))
        .len();
        assert_eq!(video_hit_counts(&d).len(), before);
    }

    #[test]
    fn disk_fraction_is_5pct_of_unique_chunks() {
        let t = trace();
        let k = ChunkSize::DEFAULT;
        let unique = crate::stats::chunk_hit_counts(&t, k).len() as f64;
        let disk = disk_chunks_for_fraction(&t, k, 5.0);
        assert!((disk as f64 - unique * 0.05).abs() <= 1.0);
        assert!(disk_chunks_for_fraction(&t, k, 1e-9) >= 1);
    }

    #[test]
    fn paper_default_config() {
        let c = DownsampleConfig::paper_default(Timestamp(5));
        assert_eq!(c.files, 100);
        assert_eq!(c.size_cap_bytes, 20 * 1024 * 1024);
        assert_eq!(c.to - c.from, DurationMs::from_days(2));
    }
}
