//! A small, fully deterministic pseudo-random number generator.
//!
//! Trace generation must be reproducible bit-for-bit across machines and
//! library versions — a trace seed appearing in `EXPERIMENTS.md` must
//! regenerate the identical workload years later. We therefore implement
//! the generator ourselves instead of depending on an external crate whose
//! stream may change between releases: [`DetRng`] is xoshiro256++ seeded
//! through SplitMix64, both public-domain algorithms with well-known
//! reference outputs.

/// SplitMix64 step, used to expand a single `u64` seed into the 256-bit
/// xoshiro state (the seeding procedure recommended by the xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator.
///
/// # Examples
///
/// ```
/// use vcdn_trace::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
///
/// let x = a.f64(); // uniform in [0, 1)
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid xoshiro state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1]` — safe for `ln()`.
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Forks an independent generator, deterministically derived from this
    /// generator's stream; used to give subsystems (catalog, sessions,
    /// arrivals) decoupled streams so adding draws to one does not perturb
    /// the others.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(12345);
        let mut b = DetRng::new(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = DetRng::new(17);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::new(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_500..11_500).contains(&c),
                "bucket {i} count {c} far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(0).below(0);
    }

    #[test]
    fn range_inclusive_covers_bounds() {
        let mut r = DetRng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range_inclusive(10, 13);
            assert!((10..=13).contains(&v));
            saw_lo |= v == 10;
            saw_hi |= v == 13;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(r.range_inclusive(4, 4), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent_a = DetRng::new(42);
        let mut child_a = parent_a.fork();
        let a1 = parent_a.next_u64();

        let mut parent_b = DetRng::new(42);
        let mut child_b = parent_b.fork();
        // Consuming extra draws from one child must not affect the parent.
        for _ in 0..10 {
            child_b.next_u64();
        }
        let b1 = parent_b.next_u64();
        assert_eq!(a1, b1);
        // Children forked at the same point produce identical streams.
        let skip = |r: &mut DetRng, n: usize| {
            for _ in 0..n {
                r.next_u64();
            }
        };
        skip(&mut child_a, 10);
        assert_eq!(child_a.next_u64(), child_b.next_u64());
    }
}
