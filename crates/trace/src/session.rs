//! The viewing-session model: from one "user presses play" event to the
//! sequence of HTTP byte-range requests a video client issues.
//!
//! Sessions are what give the workload its *intra-file* structure (paper
//! §2, "Diverse intra-file popularities"): players fetch the stream in
//! consecutive byte-range requests, viewers frequently abandon early, and
//! occasionally seek — so early chunks of every file see far more hits than
//! late ones, and caches must reason about partially-present files.

use vcdn_types::{ByteRange, DurationMs, Request, Timestamp, VideoId};

use crate::{dist::sample_watch_fraction, rng::DetRng};

/// Parameters of the session model.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Probability a session plays the video to the end.
    pub p_full_watch: f64,
    /// Mean watched fraction of abandoning sessions (truncated-exponential
    /// mean, in `(0, 1]`).
    pub mean_partial_fraction: f64,
    /// Probability the session starts at a random offset (a seek) instead
    /// of the beginning.
    pub p_seek_start: f64,
    /// Bytes covered by each individual range request.
    pub request_bytes: u64,
    /// Video playback bitrate in bytes per second — spaces out the range
    /// requests of one session over playback time.
    pub bitrate_bytes_per_sec: u64,
}

impl SessionConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p_full_watch) {
            return Err("p_full_watch out of [0,1]".into());
        }
        if !(self.mean_partial_fraction > 0.0 && self.mean_partial_fraction <= 1.0) {
            return Err("mean_partial_fraction out of (0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.p_seek_start) {
            return Err("p_seek_start out of [0,1]".into());
        }
        if self.request_bytes == 0 {
            return Err("request_bytes must be > 0".into());
        }
        if self.bitrate_bytes_per_sec == 0 {
            return Err("bitrate_bytes_per_sec must be > 0".into());
        }
        Ok(())
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            p_full_watch: 0.25,
            mean_partial_fraction: 0.35,
            p_seek_start: 0.08,
            request_bytes: 16 * 1024 * 1024,
            // ~2 Mbit/s video -> 256 KiB/s.
            bitrate_bytes_per_sec: 256 * 1024,
        }
    }
}

/// Expands one session (a user starting `video` at `start`) into the
/// sequence of byte-range [`Request`]s the client issues.
///
/// The session watches a prefix-biased fraction of the file (optionally
/// from a seek offset), fetching `request_bytes` per request, paced at the
/// playback bitrate. Every returned request stays within
/// `[0, video_size_bytes)` and the list is non-empty and time-ordered.
///
/// # Panics
///
/// Panics if `video_size_bytes == 0` or the config fails validation.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{rng::DetRng, session::{expand_session, SessionConfig}};
/// use vcdn_types::{Timestamp, VideoId};
///
/// let cfg = SessionConfig::default();
/// let mut rng = DetRng::new(5);
/// let reqs = expand_session(VideoId(3), 50_000_000, Timestamp(1_000), &cfg, &mut rng);
/// assert!(!reqs.is_empty());
/// assert!(reqs.windows(2).all(|w| w[0].t <= w[1].t));
/// ```
pub fn expand_session(
    video: VideoId,
    video_size_bytes: u64,
    start: Timestamp,
    config: &SessionConfig,
    rng: &mut DetRng,
) -> Vec<Request> {
    assert!(video_size_bytes > 0, "video size must be > 0");
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid SessionConfig: {e}"));

    // Where playback begins.
    let seek_offset = if rng.chance(config.p_seek_start) && video_size_bytes > 1 {
        rng.below(video_size_bytes)
    } else {
        0
    };
    let remaining = video_size_bytes.saturating_sub(seek_offset);

    // How much of the remaining stream the viewer consumes.
    let frac = sample_watch_fraction(rng, config.p_full_watch, config.mean_partial_fraction);
    let watched = ((remaining as f64 * frac) as u64).clamp(1, remaining);
    let end = seek_offset + watched - 1; // inclusive

    // Emit consecutive range requests paced at the playback bitrate.
    let mut requests = Vec::new();
    let mut cursor = seek_offset;
    let mut t = start;
    let pace = DurationMs(
        config.request_bytes.saturating_mul(1_000) / config.bitrate_bytes_per_sec.max(1),
    );
    while cursor <= end {
        let req_end = (cursor.saturating_add(config.request_bytes) - 1).min(end);
        let bytes = ByteRange::new(cursor, req_end).expect("cursor <= req_end by construction");
        requests.push(Request::new(video, bytes, t));
        cursor = req_end + 1;
        t += pace;
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SessionConfig {
        SessionConfig::default()
    }

    #[test]
    fn requests_are_consecutive_and_within_file() {
        let mut rng = DetRng::new(1);
        for _ in 0..200 {
            let size = rng.range_inclusive(1, 200_000_000);
            let reqs = expand_session(VideoId(1), size, Timestamp(0), &cfg(), &mut rng);
            assert!(!reqs.is_empty());
            for w in reqs.windows(2) {
                assert_eq!(
                    w[1].bytes.start,
                    w[0].bytes.end + 1,
                    "ranges must be consecutive"
                );
                assert!(w[0].t <= w[1].t);
            }
            assert!(reqs.last().unwrap().bytes.end < size);
        }
    }

    #[test]
    fn single_byte_video_yields_one_request() {
        let mut rng = DetRng::new(2);
        let reqs = expand_session(VideoId(0), 1, Timestamp(5), &cfg(), &mut rng);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].bytes, ByteRange::new(0, 0).unwrap());
    }

    #[test]
    fn full_watch_covers_whole_file_without_seek() {
        let config = SessionConfig {
            p_full_watch: 1.0,
            p_seek_start: 0.0,
            ..cfg()
        };
        let mut rng = DetRng::new(3);
        let size = 30_000_000;
        let reqs = expand_session(VideoId(9), size, Timestamp(0), &config, &mut rng);
        assert_eq!(reqs[0].bytes.start, 0);
        assert_eq!(reqs.last().unwrap().bytes.end, size - 1);
        let covered: u64 = reqs.iter().map(|r| r.byte_len()).sum();
        assert_eq!(covered, size);
    }

    #[test]
    fn early_chunks_are_hotter_in_aggregate() {
        // Prefix bias: over many sessions on one file, the first tenth of
        // the file must receive more request bytes than the last tenth.
        let mut rng = DetRng::new(4);
        let size = 100_000_000u64;
        let mut first_decile = 0u64;
        let mut last_decile = 0u64;
        for _ in 0..500 {
            for r in expand_session(VideoId(0), size, Timestamp(0), &cfg(), &mut rng) {
                if r.bytes.start < size / 10 {
                    first_decile += 1;
                }
                if r.bytes.end >= size / 10 * 9 {
                    last_decile += 1;
                }
            }
        }
        assert!(
            first_decile > last_decile * 2,
            "prefix bias missing: first={first_decile} last={last_decile}"
        );
    }

    #[test]
    fn pacing_spaces_requests_by_bitrate() {
        let config = SessionConfig {
            p_full_watch: 1.0,
            p_seek_start: 0.0,
            request_bytes: 1_000_000,
            bitrate_bytes_per_sec: 500_000,
            ..cfg()
        };
        let mut rng = DetRng::new(5);
        let reqs = expand_session(VideoId(0), 3_000_000, Timestamp(0), &config, &mut rng);
        assert_eq!(reqs.len(), 3);
        // 1 MB at 500 KB/s = 2 s between requests.
        assert_eq!(reqs[1].t - reqs[0].t, DurationMs::from_secs(2));
        assert_eq!(reqs[2].t - reqs[1].t, DurationMs::from_secs(2));
    }

    #[test]
    fn seek_sessions_start_mid_file() {
        let config = SessionConfig {
            p_seek_start: 1.0,
            ..cfg()
        };
        let mut rng = DetRng::new(6);
        let mut saw_nonzero_start = false;
        for _ in 0..50 {
            let reqs = expand_session(VideoId(0), 50_000_000, Timestamp(0), &config, &mut rng);
            saw_nonzero_start |= reqs[0].bytes.start > 0;
        }
        assert!(saw_nonzero_start);
    }

    #[test]
    fn config_validation_catches_errors() {
        let mut c = cfg();
        c.p_full_watch = 1.5;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.mean_partial_fraction = 0.0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.request_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.bitrate_bytes_per_sec = 0;
        assert!(c.validate().is_err());
        assert!(cfg().validate().is_ok());
    }
}
