//! Empirical statistics over traces.
//!
//! Used by tests to assert the synthetic workload has the shape the paper's
//! conclusions rely on (Zipf head, heavy tail, prefix-biased chunk
//! popularity, diurnal volume), and by experiment binaries to describe
//! the workloads they replay.

use std::collections::HashMap;

use vcdn_types::{ChunkId, ChunkSize, DurationMs, VideoId};

use crate::trace::Trace;

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total requests.
    pub requests: usize,
    /// Distinct videos requested.
    pub unique_videos: usize,
    /// Distinct chunks requested (at the given chunk size).
    pub unique_chunks: usize,
    /// Total requested bytes.
    pub requested_bytes: u64,
    /// Total requested chunk-granularity bytes (chunks × K per request).
    pub requested_chunk_bytes: u64,
    /// Fraction of videos requested at most twice (the one-timer tail).
    pub tail_fraction: f64,
    /// Fitted Zipf slope of the video rank-frequency curve (negated
    /// exponent; ~0.6–1.2 for video workloads).
    pub zipf_slope: f64,
    /// Requests per hour-of-day (length 24), for diurnal checks.
    pub hourly_histogram: Vec<u64>,
}

/// Per-video hit counts (by request count).
pub fn video_hit_counts(trace: &Trace) -> HashMap<VideoId, u64> {
    let mut hits = HashMap::new();
    for r in &trace.requests {
        *hits.entry(r.video).or_insert(0u64) += 1;
    }
    hits
}

/// Per-chunk hit counts at chunk size `k`.
pub fn chunk_hit_counts(trace: &Trace, k: ChunkSize) -> HashMap<ChunkId, u64> {
    let mut hits = HashMap::new();
    for r in &trace.requests {
        for c in r.chunk_range(k).iter() {
            *hits.entry(ChunkId::new(r.video, c)).or_insert(0u64) += 1;
        }
    }
    hits
}

/// Least-squares slope of `log(freq)` against `log(rank)` over the top
/// ranks (a crude but serviceable Zipf-exponent estimate).
fn fit_zipf_slope(sorted_counts: &[u64]) -> f64 {
    // Use the top half of ranks with >= 2 hits to avoid tail noise.
    let pts: Vec<(f64, f64)> = sorted_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= 2)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

/// Computes [`TraceStats`] for a trace at chunk size `k`.
pub fn trace_stats(trace: &Trace, k: ChunkSize) -> TraceStats {
    let hits = video_hit_counts(trace);
    let chunks = chunk_hit_counts(trace, k);
    let mut counts: Vec<u64> = hits.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let tail = counts.iter().filter(|&&c| c <= 2).count();
    let mut hourly = vec![0u64; 24];
    for r in &trace.requests {
        let h = (r.t.as_millis() / DurationMs::HOUR.as_millis()) % 24;
        hourly[h as usize] += 1;
    }
    TraceStats {
        requests: trace.len(),
        unique_videos: hits.len(),
        unique_chunks: chunks.len(),
        requested_bytes: trace.total_requested_bytes(),
        requested_chunk_bytes: trace
            .requests
            .iter()
            .map(|r| r.chunk_len(k) * k.bytes())
            .sum(),
        tail_fraction: if counts.is_empty() {
            0.0
        } else {
            tail as f64 / counts.len() as f64
        },
        zipf_slope: -fit_zipf_slope(&counts),
        hourly_histogram: hourly,
    }
}

/// Mean request hits per chunk position decile, across all videos with at
/// least 10 chunks — quantifies the intra-file prefix bias (§2 of the
/// paper).
pub fn chunk_position_profile(trace: &Trace, k: ChunkSize) -> Vec<f64> {
    // Per video: number of chunks seen (max index + 1) and hits per chunk.
    let mut per_video: HashMap<VideoId, HashMap<u32, u64>> = HashMap::new();
    for r in &trace.requests {
        let entry = per_video.entry(r.video).or_default();
        for c in r.chunk_range(k).iter() {
            *entry.entry(c).or_insert(0) += 1;
        }
    }
    let mut decile_sum = [0.0f64; 10];
    let mut decile_n = vec![0u64; 10];
    for chunk_hits in per_video.values() {
        let max_idx = *chunk_hits.keys().max().expect("non-empty per-video map");
        if max_idx < 9 {
            continue;
        }
        let len = max_idx as f64 + 1.0;
        for (&c, &h) in chunk_hits {
            let d = ((c as f64 / len * 10.0) as usize).min(9);
            decile_sum[d] += h as f64;
            decile_n[d] += 1;
        }
    }
    decile_sum
        .iter()
        .zip(&decile_n)
        .map(|(s, &n)| if n == 0 { 0.0 } else { s / n as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generator::TraceGenerator, profile::ServerProfile};

    fn trace() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 11).generate(DurationMs::from_days(2))
    }

    #[test]
    fn stats_are_internally_consistent() {
        let t = trace();
        let s = trace_stats(&t, ChunkSize::DEFAULT);
        assert_eq!(s.requests, t.len());
        assert!(s.unique_videos > 0);
        assert!(s.unique_chunks >= s.unique_videos);
        assert!(s.requested_chunk_bytes >= s.requested_bytes);
        assert_eq!(s.hourly_histogram.iter().sum::<u64>() as usize, s.requests);
    }

    #[test]
    fn synthetic_workload_is_zipf_like_with_tail() {
        let s = trace_stats(&trace(), ChunkSize::DEFAULT);
        assert!(
            s.zipf_slope > 0.3 && s.zipf_slope < 2.5,
            "zipf slope {} out of plausible band",
            s.zipf_slope
        );
        assert!(
            s.tail_fraction > 0.2,
            "tail fraction {} too small",
            s.tail_fraction
        );
    }

    #[test]
    fn prefix_bias_shows_in_position_profile() {
        let p = chunk_position_profile(&trace(), ChunkSize::new(1024 * 1024).unwrap());
        assert_eq!(p.len(), 10);
        assert!(
            p[0] > p[9],
            "first decile ({}) should out-hit last ({})",
            p[0],
            p[9]
        );
    }

    #[test]
    fn video_hit_counts_sum_to_requests() {
        let t = trace();
        let hits = video_hit_counts(&t);
        assert_eq!(hits.values().sum::<u64>() as usize, t.len());
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::new(
            crate::trace::TraceMeta {
                name: "empty".into(),
                seed: 0,
                duration: DurationMs::ZERO,
                description: String::new(),
            },
            vec![],
        );
        let s = trace_stats(&t, ChunkSize::DEFAULT);
        assert_eq!(s.requests, 0);
        assert_eq!(s.tail_fraction, 0.0);
        assert_eq!(s.zipf_slope, 0.0);
    }
}
