//! Synthetic video-CDN workload generation and trace I/O.
//!
//! The paper evaluates its caches on anonymised request logs from six
//! production CDN servers — data we cannot have. This crate is the
//! substitute substrate: a fully deterministic workload generator whose
//! traces reproduce the statistical properties the paper's results depend
//! on (see `DESIGN.md` §2 for the substitution argument):
//!
//! * Zipf-like video popularity with a heavy one-timer tail ([`dist`],
//!   [`catalog`]);
//! * popularity churn — new uploads, power-law age decay ([`catalog`]);
//! * diurnal request volume with per-server peak hours ([`profile`],
//!   [`generator`]);
//! * prefix-biased intra-file access via a viewing-session model
//!   ([`session`]);
//! * six world-server profiles of differing volume and diversity
//!   ([`profile::ServerProfile::world_servers`]).
//!
//! [`downsample()`] reproduces the paper's §9.1 trace reduction for the
//! Optimal-cache experiment, and [`stats`] provides the empirical checks
//! used across the test suite.
//!
//! # Examples
//!
//! ```
//! use vcdn_trace::{generator::TraceGenerator, profile::ServerProfile, stats};
//! use vcdn_types::{ChunkSize, DurationMs};
//!
//! let trace = TraceGenerator::new(ServerProfile::tiny_test(), 1)
//!     .generate(DurationMs::from_hours(12));
//! let s = stats::trace_stats(&trace, ChunkSize::DEFAULT);
//! assert!(s.unique_videos > 0);
//! ```

#![forbid(unsafe_code)]

pub mod binfmt;
pub mod catalog;
pub mod dist;
pub mod downsample;
pub mod generator;
pub mod profile;
pub mod rng;
pub mod session;
pub mod stats;
pub mod trace;

pub use binfmt::{load_binary, save_binary, BinTraceError};
pub use downsample::{disk_chunks_for_fraction, downsample, DownsampleConfig};
pub use generator::TraceGenerator;
pub use profile::ServerProfile;
pub use session::SessionConfig;
pub use trace::{Trace, TraceIoError, TraceMeta};
