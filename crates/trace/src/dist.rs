//! Probability distributions for workload synthesis, from scratch.
//!
//! Video-CDN workloads are characterised in the measurement literature by a
//! handful of distributions, all implemented here against [`DetRng`]:
//!
//! * [`Zipf`] — rank popularity ("the Zipfian pattern observed for video
//!   accesses", paper §1 footnote); sampled by rejection-inversion
//!   (Hörmann & Derflinger 1996), O(1) per draw for any exponent `s > 0`.
//! * [`LogNormal`] — video file sizes.
//! * [`Pareto`] — intrinsic video popularity weights (a Pareto weight
//!   distribution induces a Zipf-like rank-frequency curve).
//! * [`sample_exp`] — Poisson inter-arrival gaps.
//! * [`sample_normal`] — Box–Muller standard normal (basis of lognormal).

use crate::rng::DetRng;

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{dist::sample_normal, rng::DetRng};
///
/// let mut r = DetRng::new(1);
/// let z = sample_normal(&mut r);
/// assert!(z.is_finite());
/// ```
pub fn sample_normal(rng: &mut DetRng) -> f64 {
    let u1 = rng.f64_open();
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an exponential deviate with the given `rate` (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not finite and strictly positive.
pub fn sample_exp(rng: &mut DetRng, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be finite and > 0"
    );
    -rng.f64_open().ln() / rate
}

/// Log-normal distribution: `exp(mu + sigma * Z)`.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{dist::LogNormal, rng::DetRng};
///
/// // Median ~ e^3, all samples positive.
/// let d = LogNormal::new(3.0, 0.5).unwrap();
/// let mut r = DetRng::new(2);
/// assert!(d.sample(&mut r) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, String> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(format!("invalid lognormal params mu={mu} sigma={sigma}"));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * sample_normal(rng)).exp()
    }

    /// The distribution median, `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

/// Pareto (type I) distribution with scale `x_m` and shape `a`.
///
/// Used for intrinsic video popularity weights: a few blockbusters, a long
/// heavy tail of barely-watched files.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_m: f64,
    a: f64,
}

impl Pareto {
    /// Creates the distribution; both parameters must be finite and > 0.
    pub fn new(x_m: f64, a: f64) -> Result<Self, String> {
        if !(x_m.is_finite() && x_m > 0.0 && a.is_finite() && a > 0.0) {
            return Err(format!("invalid pareto params x_m={x_m} a={a}"));
        }
        Ok(Pareto { x_m, a })
    }

    /// Draws one sample (inverse-CDF method), always `>= x_m`.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        self.x_m / rng.f64_open().powf(1.0 / self.a)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`:
/// `P(rank = k) ∝ k^(-s)`.
///
/// Sampling uses rejection-inversion from a continuous envelope
/// (Hörmann & Derflinger), giving O(1) expected time per draw with no O(n)
/// tables, so a fresh distribution over a growing catalog stays cheap.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{dist::Zipf, rng::DetRng};
///
/// let z = Zipf::new(1000, 0.9).unwrap();
/// let mut r = DetRng::new(3);
/// let k = z.sample(&mut r);
/// assert!((1..=1000).contains(&k));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n`; requires `n >= 1` and
    /// finite `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, String> {
        if n == 0 || !s.is_finite() || s <= 0.0 {
            return Err(format!("invalid zipf params n={n} s={s}"));
        }
        let h = |x: f64| -> f64 { Self::h_static(x, s) };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        // Fast-accept threshold: points close enough to the integer are
        // always under the histogram bar (Hörmann & Derflinger).
        let threshold = 2.0 - Self::h_inv_static(h(2.5) - 2.0_f64.powf(-s), s);
        Ok(Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    // H(x) = ((x)^(1-s) - 1) / (1 - s), continuous envelope integral; for
    // s == 1 it degenerates to ln(x).
    fn h_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_inv_static(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(x, self.s)
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            // u uniform in (h_n, h_x1): the envelope's integral range.
            let u = self.h_n + rng.f64() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            // Fast accept: x close enough to k is always inside the bar.
            if k - x <= self.threshold {
                return k as u64;
            }
            // Exact accept test against the histogram bar of rank k.
            if u >= Self::h_static(k + 0.5, self.s) - k.powf(-self.s) {
                return k as u64;
            }
        }
    }

    /// The unnormalised mass of rank `k`, `k^(-s)`.
    pub fn weight(&self, k: u64) -> f64 {
        (k as f64).powf(-self.s)
    }
}

/// Samples a "watch fraction" in `(0, 1]`: how much of a video a viewing
/// session consumes before abandoning.
///
/// Measurement studies of YouTube-like traffic find strongly prefix-biased
/// viewing: with probability `p_full` the session plays the file to the
/// end; otherwise the watched fraction is exponentially biased toward the
/// beginning with mean `mean_partial`.
///
/// # Panics
///
/// Panics if `p_full` is outside `[0,1]` or `mean_partial` outside `(0,1]`.
pub fn sample_watch_fraction(rng: &mut DetRng, p_full: f64, mean_partial: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_full), "p_full out of [0,1]");
    assert!(
        mean_partial > 0.0 && mean_partial <= 1.0,
        "mean_partial out of (0,1]"
    );
    if rng.chance(p_full) {
        return 1.0;
    }
    // Truncated exponential over (0, 1].
    let lambda = 1.0 / mean_partial;
    loop {
        let f = sample_exp(rng, lambda);
        if f <= 1.0 && f > 0.0 {
            return f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(101);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(55);
        let n = 100_000;
        let mean = (0..n).map(|_| sample_exp(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn exponential_rejects_bad_rate() {
        sample_exp(&mut DetRng::new(0), 0.0);
    }

    #[test]
    fn lognormal_median() {
        let d = LogNormal::new(2.0, 0.7).unwrap();
        let mut r = DetRng::new(77);
        let n = 100_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[n / 2];
        assert!((med / d.median() - 1.0).abs() < 0.05, "median={med}");
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn pareto_lower_bound_and_tail() {
        let p = Pareto::new(1.0, 1.2).unwrap();
        let mut r = DetRng::new(13);
        let samples: Vec<f64> = (0..50_000).map(|_| p.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        // Heavy tail: some samples far above the median.
        let max = samples.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max > 100.0, "max={max}");
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(50, 0.8).unwrap();
        let mut r = DetRng::new(31);
        for _ in 0..20_000 {
            let k = z.sample(&mut r);
            assert!((1..=50).contains(&k));
        }
    }

    #[test]
    fn zipf_matches_exact_pmf() {
        // Compare empirical frequencies to the exact normalised pmf.
        for &s in &[0.6, 1.0, 1.4] {
            let n = 20u64;
            let z = Zipf::new(n, s).unwrap();
            let mut r = DetRng::new(991 + (s * 10.0) as u64);
            let draws = 400_000;
            let mut counts = vec![0u64; n as usize + 1];
            for _ in 0..draws {
                counts[z.sample(&mut r) as usize] += 1;
            }
            let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
            for k in 1..=n {
                let expect = (k as f64).powf(-s) / norm;
                let got = counts[k as usize] as f64 / draws as f64;
                assert!(
                    (got - expect).abs() < 0.01 + expect * 0.08,
                    "s={s} k={k}: got {got}, expect {expect}"
                );
            }
        }
    }

    #[test]
    fn zipf_degenerate_n1() {
        let z = Zipf::new(1, 1.0).unwrap();
        let mut r = DetRng::new(4);
        assert_eq!(z.sample(&mut r), 1);
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn watch_fraction_bounds_and_mean() {
        let mut r = DetRng::new(8);
        let n = 100_000;
        let mut full = 0u64;
        let mut partial_sum = 0.0;
        let mut partial_n = 0u64;
        for _ in 0..n {
            let f = sample_watch_fraction(&mut r, 0.3, 0.35);
            assert!(f > 0.0 && f <= 1.0);
            if f == 1.0 {
                full += 1;
            } else {
                partial_sum += f;
                partial_n += 1;
            }
        }
        let full_frac = full as f64 / n as f64;
        assert!((full_frac - 0.3).abs() < 0.02, "full={full_frac}");
        // Truncated-exponential mean is below the untruncated mean of 0.35.
        let pm = partial_sum / partial_n as f64;
        assert!(pm > 0.2 && pm < 0.35, "partial mean={pm}");
    }
}
