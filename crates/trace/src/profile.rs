//! Per-server workload profiles.
//!
//! The paper evaluates traces "of six selected servers around the world:
//! one in Africa, Asia, Australia, Europe, and North and South America"
//! (§9), noting that "the different levels of efficiency from server to
//! server indicate different request profiles ... request volume and
//! diversity" — e.g. the Asian server "is serving more limited requests
//! compared to the South American one, hence higher efficiencies".
//!
//! We encode those qualitative differences as six parameter sets: request
//! volume (sessions/day), catalog size and popularity-tail heaviness
//! (diversity), churn, and a timezone-phased diurnal load curve. A linear
//! [`ServerProfile::scaled`] factor shrinks volume and catalog together so
//! experiments can run at laptop scale while preserving the
//! disk-to-working-set ratios that drive the paper's results.

use vcdn_types::DurationMs;

use crate::{catalog::CatalogConfig, session::SessionConfig};

/// Complete description of one server's synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProfile {
    /// Human-readable name ("europe", "south-america", ...).
    pub name: String,
    /// Viewing sessions per day at the load-curve average.
    pub sessions_per_day: f64,
    /// Relative amplitude of the diurnal sine modulation, in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Local hour (0–24) at which load peaks.
    pub peak_hour: f64,
    /// Catalog (corpus, sizes, popularity, churn) parameters.
    pub catalog: CatalogConfig,
    /// Session (viewing behaviour) parameters.
    pub session: SessionConfig,
}

impl ServerProfile {
    /// Validates the profile.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.sessions_per_day > 0.0 && self.sessions_per_day.is_finite()) {
            return Err("sessions_per_day must be finite and > 0".into());
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err("diurnal_amplitude out of [0,1)".into());
        }
        if !(0.0..=24.0).contains(&self.peak_hour) {
            return Err("peak_hour out of [0,24]".into());
        }
        self.catalog.validate()?;
        self.session.validate()
    }

    /// Scales request volume and catalog size by `factor`, preserving the
    /// disk-to-working-set shape (disk sizes in experiments scale by the
    /// same factor). `factor` must be finite and positive.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive, or scales the catalog
    /// to zero videos.
    pub fn scaled(mut self, factor: f64) -> ServerProfile {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be finite and > 0"
        );
        self.sessions_per_day *= factor;
        self.catalog.arrivals_per_day *= factor;
        self.catalog.initial_videos =
            ((self.catalog.initial_videos as f64 * factor).round() as usize).max(1);
        self
    }

    /// The instantaneous session-arrival rate multiplier at hour-of-day
    /// `h` (may exceed 24 for later days): `1 + A·cos(2π(h − peak)/24)`.
    pub fn diurnal_multiplier(&self, hour_of_day: f64) -> f64 {
        1.0 + self.diurnal_amplitude
            * (std::f64::consts::TAU * (hour_of_day - self.peak_hour) / 24.0).cos()
    }

    fn base(name: &str) -> ServerProfile {
        ServerProfile {
            name: name.to_owned(),
            sessions_per_day: 40_000.0,
            diurnal_amplitude: 0.55,
            peak_hour: 20.0,
            catalog: CatalogConfig {
                initial_videos: 240_000,
                arrivals_per_day: 12_000.0,
                popularity_shape: 0.95,
                size_median_bytes: 40 * 1024 * 1024,
                size_sigma: 1.0,
                size_min_bytes: 2 * 1024 * 1024,
                size_max_bytes: 1024 * 1024 * 1024,
                decay_tau: DurationMs::from_days(10),
                decay_beta: 0.8,
                initial_age_span: DurationMs::from_days(365),
            },
            session: SessionConfig::default(),
        }
    }

    /// The European server: the paper's reference workload (Figures 3–6).
    pub fn europe() -> ServerProfile {
        Self::base("europe")
    }

    /// North America: slightly busier and more diverse than Europe.
    pub fn north_america() -> ServerProfile {
        let mut p = Self::base("north-america");
        p.sessions_per_day = 50_000.0;
        p.peak_hour = 21.0;
        p.catalog.initial_videos = 280_000;
        p.catalog.arrivals_per_day = 14_000.0;
        p.catalog.popularity_shape = 1.06;
        p
    }

    /// South America: the busiest, most diverse request profile — the
    /// paper observes the *lowest* efficiencies and the widest xLRU gap
    /// here.
    pub fn south_america() -> ServerProfile {
        let mut p = Self::base("south-america");
        p.sessions_per_day = 60_000.0;
        p.peak_hour = 21.5;
        p.catalog.initial_videos = 330_000;
        p.catalog.arrivals_per_day = 16_000.0;
        p.catalog.popularity_shape = 1.15;
        p
    }

    /// Asia: "more limited requests" — smaller active catalog, more
    /// concentrated popularity, hence the paper's highest efficiencies.
    pub fn asia() -> ServerProfile {
        let mut p = Self::base("asia");
        p.sessions_per_day = 25_000.0;
        p.peak_hour = 13.0;
        p.catalog.initial_videos = 110_000;
        p.catalog.arrivals_per_day = 5_000.0;
        p.catalog.popularity_shape = 0.88;
        p
    }

    /// Africa: modest volume, moderately concentrated demand.
    pub fn africa() -> ServerProfile {
        let mut p = Self::base("africa");
        p.sessions_per_day = 15_000.0;
        p.peak_hour = 17.0;
        p.catalog.initial_videos = 100_000;
        p.catalog.arrivals_per_day = 4_500.0;
        p.catalog.popularity_shape = 0.96;
        p
    }

    /// Australia: small but relatively diverse profile.
    pub fn australia() -> ServerProfile {
        let mut p = Self::base("australia");
        p.sessions_per_day = 20_000.0;
        p.peak_hour = 11.0;
        p.catalog.initial_videos = 130_000;
        p.catalog.arrivals_per_day = 6_000.0;
        p.catalog.popularity_shape = 1.03;
        p
    }

    /// The six world servers of the paper's evaluation, in the order of
    /// Figure 7 (Africa, Asia, Australia, Europe, N. America, S. America).
    pub fn world_servers() -> Vec<ServerProfile> {
        vec![
            Self::africa(),
            Self::asia(),
            Self::australia(),
            Self::europe(),
            Self::north_america(),
            Self::south_america(),
        ]
    }

    /// A deliberately tiny profile for unit tests, examples and doc tests:
    /// a few hundred small videos, hundreds of sessions per day.
    pub fn tiny_test() -> ServerProfile {
        ServerProfile {
            name: "tiny-test".to_owned(),
            sessions_per_day: 600.0,
            diurnal_amplitude: 0.5,
            peak_hour: 20.0,
            catalog: CatalogConfig {
                initial_videos: 200,
                arrivals_per_day: 20.0,
                popularity_shape: 0.9,
                size_median_bytes: 8 * 1024 * 1024,
                size_sigma: 0.8,
                size_min_bytes: 1024 * 1024,
                size_max_bytes: 64 * 1024 * 1024,
                decay_tau: DurationMs::from_days(5),
                decay_beta: 0.8,
                initial_age_span: DurationMs::from_days(60),
            },
            session: SessionConfig {
                request_bytes: 4 * 1024 * 1024,
                ..SessionConfig::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_profiles_validate() {
        for p in ServerProfile::world_servers()
            .into_iter()
            .chain([ServerProfile::tiny_test()])
        {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn world_servers_order_matches_figure7() {
        let names: Vec<String> = ServerProfile::world_servers()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec![
                "africa",
                "asia",
                "australia",
                "europe",
                "north-america",
                "south-america"
            ]
        );
    }

    #[test]
    fn scaling_shrinks_volume_and_catalog_together() {
        let p = ServerProfile::europe();
        let s = p.clone().scaled(0.125);
        assert!((s.sessions_per_day - p.sessions_per_day * 0.125).abs() < 1e-9);
        assert_eq!(s.catalog.initial_videos, 30_000);
        assert!((s.catalog.arrivals_per_day - p.catalog.arrivals_per_day * 0.125).abs() < 1e-9);
        // Session behaviour and file sizes are NOT scaled.
        assert_eq!(s.session, p.session);
        assert_eq!(s.catalog.size_median_bytes, p.catalog.size_median_bytes);
        s.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_rejected() {
        let _ = ServerProfile::europe().scaled(0.0);
    }

    #[test]
    fn diurnal_multiplier_peaks_at_peak_hour() {
        let p = ServerProfile::europe();
        let at_peak = p.diurnal_multiplier(p.peak_hour);
        let off_peak = p.diurnal_multiplier(p.peak_hour + 12.0);
        assert!((at_peak - (1.0 + p.diurnal_amplitude)).abs() < 1e-12);
        assert!((off_peak - (1.0 - p.diurnal_amplitude)).abs() < 1e-12);
        assert!(p.diurnal_multiplier(0.0) > 0.0);
    }

    #[test]
    fn diurnal_multiplier_has_24h_period() {
        let p = ServerProfile::asia();
        for h in 0..24 {
            let a = p.diurnal_multiplier(h as f64);
            let b = p.diurnal_multiplier(h as f64 + 24.0);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn asia_is_more_concentrated_than_south_america() {
        // The popularity-shape knob encodes the diversity ordering that
        // Figure 7 attributes to the servers: a *smaller* Pareto shape
        // means heavier blockbuster weights, i.e. more concentration.
        assert!(
            ServerProfile::asia().catalog.popularity_shape
                < ServerProfile::south_america().catalog.popularity_shape
        );
        assert!(
            ServerProfile::asia().sessions_per_day
                < ServerProfile::south_america().sessions_per_day
        );
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = ServerProfile::tiny_test();
        p.sessions_per_day = 0.0;
        assert!(p.validate().is_err());
        let mut p = ServerProfile::tiny_test();
        p.diurnal_amplitude = 1.0;
        assert!(p.validate().is_err());
        let mut p = ServerProfile::tiny_test();
        p.peak_hour = 25.0;
        assert!(p.validate().is_err());
    }
}
