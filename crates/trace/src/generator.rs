//! The trace generator: profile → time-ordered request log.
//!
//! Session start times follow an inhomogeneous Poisson process whose rate
//! tracks the profile's diurnal curve (sampled by thinning); each session
//! picks a video from the evolving catalog proportionally to its effective
//! (age-decayed) weight and expands into paced byte-range requests. Video
//! weights change continuously, so the weighted sampler is rebuilt once per
//! *epoch* (one hour), which is far finer than the popularity-decay time
//! constant.

use vcdn_types::{DurationMs, Request, Timestamp};

use crate::{
    catalog::Catalog,
    dist::sample_exp,
    profile::ServerProfile,
    rng::DetRng,
    session::expand_session,
    trace::{Trace, TraceMeta},
};

/// Sampler-rebuild granularity.
const EPOCH: DurationMs = DurationMs::HOUR;

/// Deterministic workload generator for one server profile.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{generator::TraceGenerator, profile::ServerProfile};
/// use vcdn_types::DurationMs;
///
/// let gen = TraceGenerator::new(ServerProfile::tiny_test(), 42);
/// let trace = gen.generate(DurationMs::from_hours(6));
/// assert!(!trace.is_empty());
/// // Same profile + seed => identical trace.
/// let again = TraceGenerator::new(ServerProfile::tiny_test(), 42)
///     .generate(DurationMs::from_hours(6));
/// assert_eq!(trace, again);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: ServerProfile,
    seed: u64,
}

/// FNV-1a hash, used to salt the seed with the profile name so two
/// profiles generated with the same numeric seed do not share a stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: ServerProfile, seed: u64) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid ServerProfile: {e}"));
        TraceGenerator { profile, seed }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &ServerProfile {
        &self.profile
    }

    /// Generates `duration` worth of requests starting at the replay epoch.
    pub fn generate(&self, duration: DurationMs) -> Trace {
        let p = &self.profile;
        let mut root = DetRng::new(self.seed ^ fnv1a(&p.name));
        let mut catalog_rng = root.fork();
        let mut arrival_rng = root.fork();
        let mut pick_rng = root.fork();
        let mut session_rng = root.fork();

        let catalog = Catalog::generate(&p.catalog, duration, &mut catalog_rng);

        // Session start times: thinned Poisson at rate base·(1 + A·cos).
        let base_rate_per_ms = p.sessions_per_day / DurationMs::DAY.as_millis() as f64;
        let lambda_max = base_rate_per_ms * (1.0 + p.diurnal_amplitude);
        let mut starts: Vec<Timestamp> = Vec::new();
        let mut t = 0.0f64;
        let horizon = duration.as_millis() as f64;
        loop {
            t += sample_exp(&mut arrival_rng, lambda_max);
            if t >= horizon {
                break;
            }
            let hour_of_day = t / DurationMs::HOUR.as_millis() as f64 % 24.0;
            let accept = p.diurnal_multiplier(hour_of_day) / (1.0 + p.diurnal_amplitude);
            if arrival_rng.chance(accept) {
                starts.push(Timestamp(t as u64));
            }
        }

        // Expand sessions epoch by epoch with a per-epoch weighted sampler.
        let mut requests: Vec<Request> = Vec::new();
        let mut cursor = 0usize;
        let mut epoch_start = Timestamp::EPOCH;
        while epoch_start.as_millis() < duration.as_millis() {
            let epoch_end = epoch_start + EPOCH;
            let mid = Timestamp(epoch_start.as_millis() + EPOCH.as_millis() / 2);
            let slice_end = starts[cursor..]
                .iter()
                .position(|s| *s >= epoch_end)
                .map(|off| cursor + off)
                .unwrap_or(starts.len());
            if slice_end > cursor {
                if let Some(sampler) = catalog.sampler_at(mid) {
                    for &start in &starts[cursor..slice_end] {
                        let idx = sampler.sample(&mut pick_rng);
                        let video = catalog.get(idx);
                        requests.extend(expand_session(
                            video.id,
                            video.size_bytes,
                            start,
                            &p.session,
                            &mut session_rng,
                        ));
                    }
                }
            }
            cursor = slice_end;
            epoch_start = epoch_end;
        }

        // Sessions interleave; restore global time order (stable to keep
        // per-session request order on timestamp ties).
        requests.sort_by_key(|r| r.t);

        Trace::new(
            TraceMeta {
                name: p.name.clone(),
                seed: self.seed,
                duration,
                description: format!(
                    "synthetic profile '{}', seed {}, {} sessions",
                    p.name,
                    self.seed,
                    starts.len()
                ),
            },
            requests,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vcdn_types::VideoId;

    fn small_trace(seed: u64, hours: u64) -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(hours))
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(small_trace(1, 12), small_trace(1, 12));
        assert_ne!(small_trace(1, 12).requests, small_trace(2, 12).requests);
    }

    #[test]
    fn profile_name_salts_the_stream() {
        let mut p1 = ServerProfile::tiny_test();
        p1.name = "alpha".into();
        let mut p2 = ServerProfile::tiny_test();
        p2.name = "beta".into();
        let t1 = TraceGenerator::new(p1, 9).generate(DurationMs::from_hours(6));
        let t2 = TraceGenerator::new(p2, 9).generate(DurationMs::from_hours(6));
        assert_ne!(t1.requests, t2.requests);
    }

    #[test]
    fn volume_matches_profile_rate() {
        let trace = small_trace(3, 48);
        // 600 sessions/day for 2 days -> ~1200 sessions; each session emits
        // >= 1 request. Allow generous Poisson + session-length slack.
        let sessions: f64 = 1_200.0;
        let n = trace.len() as f64;
        assert!(
            n > sessions * 0.8,
            "too few requests: {n} for ~{sessions} sessions"
        );
        assert!(n < sessions * 20.0, "implausibly many requests: {n}");
    }

    #[test]
    fn requests_are_time_ordered_within_horizon() {
        let trace = small_trace(4, 24);
        assert!(trace.requests.windows(2).all(|w| w[0].t <= w[1].t));
        // Session tails may run slightly past the horizon (a session that
        // starts before the end keeps streaming); starts must be within.
        assert!(trace.requests[0].t.as_millis() < DurationMs::from_hours(24).as_millis());
    }

    #[test]
    fn popularity_is_skewed() {
        let trace = small_trace(5, 48);
        let mut hits: HashMap<VideoId, u64> = HashMap::new();
        for r in &trace.requests {
            *hits.entry(r.video).or_default() += 1;
        }
        let mut counts: Vec<u64> = hits.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(counts.len() / 10 + 1).sum();
        // Top 10% of videos should draw well over a third of requests.
        assert!(
            top10 as f64 / total as f64 > 0.35,
            "popularity not skewed: top10%={}/{}",
            top10,
            total
        );
        // And a long tail of barely-requested videos must exist.
        let singletons = counts.iter().filter(|&&c| c <= 2).count();
        assert!(
            singletons as f64 / counts.len() as f64 > 0.2,
            "one-timer tail missing: {singletons}/{}",
            counts.len()
        );
    }

    #[test]
    fn diurnal_pattern_visible_in_hourly_volume() {
        let mut p = ServerProfile::tiny_test();
        p.sessions_per_day = 4_000.0; // enough samples per hour
        p.diurnal_amplitude = 0.7;
        let trace = TraceGenerator::new(p.clone(), 6).generate(DurationMs::from_days(4));
        let mut hourly = [0u64; 24];
        for r in &trace.requests {
            let h = (r.t.as_millis() / DurationMs::HOUR.as_millis()) % 24;
            hourly[h as usize] += 1;
        }
        let peak = hourly[p.peak_hour as usize % 24] as f64;
        let trough = hourly[(p.peak_hour as usize + 12) % 24] as f64;
        assert!(
            peak > trough * 1.5,
            "diurnal modulation missing: peak={peak} trough={trough}"
        );
    }

    #[test]
    fn empty_duration_yields_empty_trace() {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), 1).generate(DurationMs::ZERO);
        assert!(trace.is_empty());
    }
}
