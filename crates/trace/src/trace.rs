//! The trace container: an ordered request log plus its provenance, with
//! JSON-lines persistence.
//!
//! The paper replays "anonymized video request logs" (§9); here the log is
//! either generated synthetically ([`crate::generator::TraceGenerator`]) or
//! loaded from disk. The on-disk format is one JSON object per line — a
//! metadata header followed by one line per request — so multi-gigabyte
//! traces stream without loading intermediary DOM structures.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use vcdn_types::json::{self, JsonError};
use vcdn_types::{impl_json_struct, DurationMs, Request, Timestamp};

/// Provenance of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Profile or source name.
    pub name: String,
    /// Generator seed (0 for externally loaded traces).
    pub seed: u64,
    /// Covered duration from the replay epoch.
    pub duration: DurationMs,
    /// Free-form description of how the trace was produced.
    pub description: String,
}

impl_json_struct!(TraceMeta {
    name,
    seed,
    duration,
    description,
});

/// An ordered request log.
///
/// Invariant: `requests` are sorted by non-decreasing timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Provenance metadata.
    pub meta: TraceMeta,
    /// Time-ordered requests.
    pub requests: Vec<Request>,
}

/// Errors loading or saving traces.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A line failed to parse as JSON.
    Parse { line: usize, source: JsonError },
    /// The file was empty (missing the metadata header).
    MissingHeader,
    /// Requests were not in timestamp order.
    OutOfOrder { line: usize },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse { line, source } => {
                write!(f, "trace parse error on line {line}: {source}")
            }
            TraceIoError::MissingHeader => write!(f, "trace file missing metadata header"),
            TraceIoError::OutOfOrder { line } => {
                write!(f, "trace requests out of timestamp order at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl Trace {
    /// Builds a trace from already-sorted requests.
    ///
    /// # Panics
    ///
    /// Panics if requests are not sorted by non-decreasing timestamp.
    pub fn new(meta: TraceMeta, requests: Vec<Request>) -> Self {
        assert!(
            requests.windows(2).all(|w| w[0].t <= w[1].t),
            "trace requests must be time-ordered"
        );
        Trace { meta, requests }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total requested bytes across all requests.
    pub fn total_requested_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.byte_len()).sum()
    }

    /// The timestamp of the last request, or the epoch for empty traces.
    pub fn end_time(&self) -> Timestamp {
        self.requests
            .last()
            .map(|r| r.t)
            .unwrap_or(Timestamp::EPOCH)
    }

    /// Returns the sub-trace with `t` in `[from, to)`, preserving order.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Trace {
        let requests: Vec<Request> = self
            .requests
            .iter()
            .filter(|r| r.t >= from && r.t < to)
            .copied()
            .collect();
        Trace {
            meta: TraceMeta {
                description: format!("{} [window {}..{})", self.meta.description, from, to),
                duration: to - from,
                ..self.meta.clone()
            },
            requests,
        }
    }

    /// Writes the trace as JSON lines: a metadata header line followed by
    /// one request per line.
    pub fn save_jsonl(&self, path: &Path) -> Result<(), TraceIoError> {
        let mut w = BufWriter::new(File::create(path)?);
        json::to_writer(&mut w, &self.meta)?;
        w.write_all(b"\n")?;
        for r in &self.requests {
            json::to_writer(&mut w, r)?;
            w.write_all(b"\n")?;
        }
        w.flush()?;
        Ok(())
    }

    /// Loads a trace saved by [`Trace::save_jsonl`], validating request
    /// order.
    pub fn load_jsonl(path: &Path) -> Result<Trace, TraceIoError> {
        let reader = BufReader::new(File::open(path)?);
        let mut lines = reader.lines();
        let header = lines.next().ok_or(TraceIoError::MissingHeader)??;
        let meta: TraceMeta =
            json::from_str(&header).map_err(|source| TraceIoError::Parse { line: 1, source })?;
        let mut requests = Vec::new();
        let mut last = Timestamp::EPOCH;
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let r: Request = json::from_str(&line).map_err(|source| TraceIoError::Parse {
                line: i + 2,
                source,
            })?;
            if r.t < last {
                return Err(TraceIoError::OutOfOrder { line: i + 2 });
            }
            last = r.t;
            requests.push(r);
        }
        Ok(Trace { meta, requests })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcdn_types::{ByteRange, VideoId};

    fn sample_trace() -> Trace {
        let reqs = vec![
            Request::new(VideoId(1), ByteRange::new(0, 99).unwrap(), Timestamp(10)),
            Request::new(VideoId(2), ByteRange::new(0, 49).unwrap(), Timestamp(20)),
            Request::new(VideoId(1), ByteRange::new(100, 199).unwrap(), Timestamp(30)),
        ];
        Trace::new(
            TraceMeta {
                name: "test".into(),
                seed: 7,
                duration: DurationMs::from_secs(1),
                description: "unit test trace".into(),
            },
            reqs,
        )
    }

    #[test]
    fn totals() {
        let t = sample_trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_requested_bytes(), 250);
        assert_eq!(t.end_time(), Timestamp(30));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unordered_requests_rejected() {
        let reqs = vec![
            Request::new(VideoId(1), ByteRange::new(0, 9).unwrap(), Timestamp(30)),
            Request::new(VideoId(1), ByteRange::new(0, 9).unwrap(), Timestamp(10)),
        ];
        let _ = Trace::new(sample_trace().meta, reqs);
    }

    #[test]
    fn window_filters_half_open() {
        let t = sample_trace();
        let w = t.window(Timestamp(10), Timestamp(30));
        assert_eq!(w.len(), 2);
        assert!(w.requests.iter().all(|r| r.t < Timestamp(30)));
        let empty = t.window(Timestamp(100), Timestamp(200));
        assert!(empty.is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join("vcdn-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        t.save_jsonl(&path).unwrap();
        let back = Trace::load_jsonl(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage_and_disorder() {
        let dir = std::env::temp_dir().join("vcdn-trace-test");
        std::fs::create_dir_all(&dir).unwrap();

        let p = dir.join("empty.jsonl");
        std::fs::write(&p, "").unwrap();
        assert!(matches!(
            Trace::load_jsonl(&p),
            Err(TraceIoError::MissingHeader)
        ));

        let p = dir.join("badline.jsonl");
        let t = sample_trace();
        let meta = json::to_string(&t.meta);
        std::fs::write(&p, format!("{meta}\nnot-json\n")).unwrap();
        assert!(matches!(
            Trace::load_jsonl(&p),
            Err(TraceIoError::Parse { line: 2, .. })
        ));

        let p = dir.join("disorder.jsonl");
        let r1 = json::to_string(&t.requests[2]);
        let r2 = json::to_string(&t.requests[0]);
        std::fs::write(&p, format!("{meta}\n{r1}\n{r2}\n")).unwrap();
        assert!(matches!(
            Trace::load_jsonl(&p),
            Err(TraceIoError::OutOfOrder { line: 3 })
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let dir = std::env::temp_dir().join("vcdn-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("blank.jsonl");
        let t = sample_trace();
        let meta = json::to_string(&t.meta);
        let r1 = json::to_string(&t.requests[0]);
        std::fs::write(&p, format!("{meta}\n\n{r1}\n\n")).unwrap();
        let back = Trace::load_jsonl(&p).unwrap();
        assert_eq!(back.len(), 1);
    }
}
