//! The evolving video catalog: sizes, intrinsic popularity, churn.
//!
//! Each video gets an intrinsic Pareto-distributed weight (inducing a
//! Zipf-like rank-frequency curve with a heavy one-timer tail) and a birth
//! time; its *effective* weight at time `t` decays with age by a power law,
//! `w·(1 + age/τ)^(−β)`, modelling popularity churn — newly uploaded videos
//! dominate, old ones fade. Both phenomena are essential to the paper:
//! the borderline files that caches admit/evict "usually have very few
//! accesses in their lifetime" (§3), and request profiles are transient.

use vcdn_types::float::exactly_zero;
use vcdn_types::{DurationMs, Timestamp, VideoId};

use crate::{
    dist::{LogNormal, Pareto},
    rng::DetRng,
};

/// Static properties of one catalog video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Video {
    /// Identifier (dense, assigned in birth order).
    pub id: VideoId,
    /// File size in bytes.
    pub size_bytes: u64,
    /// Intrinsic (age-independent) popularity weight.
    pub weight: f64,
    /// Upload time. Initial-corpus videos have births in the "past"
    /// (before the replay epoch), encoded by `age_at_start`.
    pub birth: Timestamp,
    /// For initial-corpus videos: how old the video already was at replay
    /// start. Zero for videos uploaded during the trace.
    pub age_at_start: DurationMs,
}

impl Video {
    /// The video's age at time `t`.
    pub fn age_at(&self, t: Timestamp) -> DurationMs {
        DurationMs(t.saturating_since(self.birth).as_millis() + self.age_at_start.as_millis())
    }
}

/// Parameters of the catalog model.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogConfig {
    /// Videos already in the corpus at replay start.
    pub initial_videos: usize,
    /// New uploads per day during the trace.
    pub arrivals_per_day: f64,
    /// Shape of the intrinsic-weight Pareto distribution; smaller = heavier
    /// tail = more diverse demand.
    pub popularity_shape: f64,
    /// Median file size in bytes (log-normal).
    pub size_median_bytes: u64,
    /// Log-normal sigma of file size.
    pub size_sigma: f64,
    /// Minimum file size in bytes (clamp).
    pub size_min_bytes: u64,
    /// Maximum file size in bytes (clamp).
    pub size_max_bytes: u64,
    /// Power-law age-decay time constant τ.
    pub decay_tau: DurationMs,
    /// Power-law age-decay exponent β (0 disables churn).
    pub decay_beta: f64,
    /// How far in the past initial-corpus births are spread.
    pub initial_age_span: DurationMs,
}

impl CatalogConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_videos == 0 {
            return Err("initial_videos must be > 0".into());
        }
        if self.arrivals_per_day < 0.0 || !self.arrivals_per_day.is_finite() {
            return Err("arrivals_per_day must be finite and >= 0".into());
        }
        if self.popularity_shape <= 0.0 {
            return Err("popularity_shape must be > 0".into());
        }
        if self.size_min_bytes == 0 || self.size_min_bytes > self.size_max_bytes {
            return Err("size bounds invalid".into());
        }
        if self.decay_beta < 0.0 {
            return Err("decay_beta must be >= 0".into());
        }
        if self.decay_tau == DurationMs::ZERO && self.decay_beta > 0.0 {
            return Err("decay_tau must be > 0 when decay_beta > 0".into());
        }
        Ok(())
    }
}

/// The video corpus over the course of one trace.
#[derive(Debug, Clone)]
pub struct Catalog {
    videos: Vec<Video>,
    config: CatalogConfig,
}

impl Catalog {
    /// Builds a catalog: `initial_videos` born in the past (uniformly over
    /// `initial_age_span`), plus Poisson arrivals at `arrivals_per_day`
    /// over `duration`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CatalogConfig::validate`].
    pub fn generate(config: &CatalogConfig, duration: DurationMs, rng: &mut DetRng) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid CatalogConfig: {e}"));
        let pareto =
            Pareto::new(1.0, config.popularity_shape).expect("validated popularity_shape is > 0");
        let sizes = LogNormal::new((config.size_median_bytes as f64).ln(), config.size_sigma)
            .expect("validated size params");
        let mut videos = Vec::new();
        let mut next_id = 0u64;
        let mut push = |birth: Timestamp, age0: DurationMs, rng: &mut DetRng| {
            let size = sizes
                .sample(rng)
                .clamp(config.size_min_bytes as f64, config.size_max_bytes as f64)
                as u64;
            videos.push(Video {
                id: VideoId(next_id),
                size_bytes: size.max(1),
                weight: pareto.sample(rng),
                birth,
                age_at_start: age0,
            });
            next_id += 1;
        };
        for _ in 0..config.initial_videos {
            let age0 = DurationMs(rng.below(config.initial_age_span.as_millis().max(1)));
            push(Timestamp::EPOCH, age0, rng);
        }
        // Poisson arrivals during the trace window.
        if config.arrivals_per_day > 0.0 {
            let rate_per_ms = config.arrivals_per_day / DurationMs::DAY.as_millis() as f64;
            let mut t = 0.0f64;
            loop {
                t += crate::dist::sample_exp(rng, rate_per_ms);
                if t >= duration.as_millis() as f64 {
                    break;
                }
                push(Timestamp(t as u64), DurationMs::ZERO, rng);
            }
        }
        Catalog {
            videos,
            config: config.clone(),
        }
    }

    /// All videos, in birth order (initial corpus first).
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// Number of videos (initial + arrivals).
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// Whether the catalog is empty (never true for a generated catalog).
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Looks up a video's size in bytes.
    pub fn size_of(&self, id: VideoId) -> Option<u64> {
        self.videos.get(id.0 as usize).map(|v| v.size_bytes)
    }

    /// A video's effective popularity weight at time `t`: intrinsic weight
    /// times power-law age decay; zero for not-yet-uploaded videos.
    pub fn effective_weight(&self, v: &Video, t: Timestamp) -> f64 {
        if v.birth > t {
            return 0.0;
        }
        if exactly_zero(self.config.decay_beta) {
            return v.weight;
        }
        let age = v.age_at(t).as_millis() as f64;
        let tau = self.config.decay_tau.as_millis() as f64;
        v.weight * (1.0 + age / tau).powf(-self.config.decay_beta)
    }

    /// Builds a weighted sampler over videos uploaded by time `t`, using
    /// effective weights at `t`. Returns `None` if no video is live yet.
    pub fn sampler_at(&self, t: Timestamp) -> Option<AliasSampler> {
        let live: Vec<(usize, f64)> = self
            .videos
            .iter()
            .enumerate()
            .filter(|(_, v)| v.birth <= t)
            .map(|(i, v)| (i, self.effective_weight(v, t)))
            .collect();
        AliasSampler::new(live)
    }

    /// Looks up the full video record.
    pub fn get(&self, idx: usize) -> &Video {
        &self.videos[idx]
    }
}

/// Walker's alias method for O(1) weighted sampling over a fixed index set.
///
/// # Examples
///
/// ```
/// use vcdn_trace::{catalog::AliasSampler, rng::DetRng};
///
/// let s = AliasSampler::new(vec![(0, 3.0), (5, 1.0)]).unwrap();
/// let mut r = DetRng::new(1);
/// let idx = s.sample(&mut r);
/// assert!(idx == 0 || idx == 5);
/// ```
#[derive(Debug, Clone)]
pub struct AliasSampler {
    indices: Vec<usize>,
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds the alias table from `(index, weight)` pairs. Entries with
    /// non-finite or non-positive weight are dropped; returns `None` if no
    /// positive-weight entry remains.
    pub fn new(entries: Vec<(usize, f64)>) -> Option<Self> {
        let filtered: Vec<(usize, f64)> = entries
            .into_iter()
            .filter(|(_, w)| w.is_finite() && *w > 0.0)
            .collect();
        if filtered.is_empty() {
            return None;
        }
        let n = filtered.len();
        let total: f64 = filtered.iter().map(|(_, w)| w).sum();
        let mut prob: Vec<f64> = filtered.iter().map(|(_, w)| w / total * n as f64).collect();
        let indices: Vec<usize> = filtered.iter().map(|(i, _)| *i).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: everything remaining keeps probability 1.
        for s in small.into_iter().chain(large) {
            prob[s as usize] = 1.0;
        }
        Some(AliasSampler {
            indices,
            prob,
            alias,
        })
    }

    /// Number of sampleable entries.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the sampler has no entries (never: `new` returns `None`).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Draws one original index, proportional to its weight.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let n = self.prob.len();
        let slot = rng.below(n as u64) as usize;
        if rng.f64() < self.prob[slot] {
            self.indices[slot]
        } else {
            self.indices[self.alias[slot] as usize]
        }
    }
}

/// A reasonable default catalog for tests and examples (small but shaped
/// like the real configurations).
impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            initial_videos: 2_000,
            arrivals_per_day: 100.0,
            popularity_shape: 0.9,
            size_median_bytes: 40 * 1024 * 1024,
            size_sigma: 1.0,
            size_min_bytes: 2 * 1024 * 1024,
            size_max_bytes: 1024 * 1024 * 1024,
            decay_tau: DurationMs::from_days(10),
            decay_beta: 0.8,
            initial_age_span: DurationMs::from_days(365),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CatalogConfig {
        CatalogConfig {
            initial_videos: 500,
            arrivals_per_day: 50.0,
            ..CatalogConfig::default()
        }
    }

    #[test]
    fn generate_produces_initial_plus_arrivals() {
        let mut rng = DetRng::new(1);
        let cat = Catalog::generate(&cfg(), DurationMs::from_days(10), &mut rng);
        assert!(cat.len() >= 500);
        // ~500 arrivals expected over 10 days at 50/day.
        let arrivals = cat.len() - 500;
        assert!(
            (350..=650).contains(&arrivals),
            "arrivals={arrivals} far from expectation"
        );
    }

    #[test]
    fn ids_are_dense_birth_ordered() {
        let mut rng = DetRng::new(2);
        let cat = Catalog::generate(&cfg(), DurationMs::from_days(2), &mut rng);
        for (i, v) in cat.videos().iter().enumerate() {
            assert_eq!(v.id, VideoId(i as u64));
        }
        // Arrivals sorted by birth after the initial block.
        let births: Vec<_> = cat.videos()[500..].iter().map(|v| v.birth).collect();
        let mut sorted = births.clone();
        sorted.sort();
        assert_eq!(births, sorted);
    }

    #[test]
    fn sizes_respect_bounds() {
        let mut rng = DetRng::new(3);
        let cat = Catalog::generate(&cfg(), DurationMs::from_days(1), &mut rng);
        for v in cat.videos() {
            assert!(v.size_bytes >= cfg().size_min_bytes);
            assert!(v.size_bytes <= cfg().size_max_bytes);
        }
    }

    #[test]
    fn effective_weight_decays_with_age() {
        let mut rng = DetRng::new(4);
        let cat = Catalog::generate(&cfg(), DurationMs::from_days(1), &mut rng);
        let v = cat.get(0);
        let w_early = cat.effective_weight(v, Timestamp::EPOCH);
        let w_late = cat.effective_weight(v, Timestamp::EPOCH + DurationMs::from_days(30));
        assert!(w_late < w_early, "decay should reduce weight");
    }

    #[test]
    fn unborn_videos_have_zero_weight_and_vanish_from_sampler() {
        let config = CatalogConfig {
            initial_videos: 1,
            arrivals_per_day: 1000.0,
            ..CatalogConfig::default()
        };
        let mut rng = DetRng::new(5);
        let cat = Catalog::generate(&config, DurationMs::from_days(5), &mut rng);
        let late_arrival = cat
            .videos()
            .iter()
            .find(|v| v.birth > Timestamp(DurationMs::from_days(1).as_millis()))
            .expect("some arrival after day 1");
        assert_eq!(cat.effective_weight(late_arrival, Timestamp::EPOCH), 0.0);
        let sampler = cat.sampler_at(Timestamp::EPOCH).unwrap();
        // Only the initial video is live at t=0.
        assert_eq!(sampler.len(), 1);
    }

    #[test]
    fn alias_sampler_matches_weights() {
        let s = AliasSampler::new(vec![(7, 1.0), (8, 2.0), (9, 7.0)]).unwrap();
        let mut rng = DetRng::new(6);
        let mut counts = std::collections::HashMap::new();
        let n = 200_000;
        for _ in 0..n {
            *counts.entry(s.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let f7 = counts[&7] as f64 / n as f64;
        let f8 = counts[&8] as f64 / n as f64;
        let f9 = counts[&9] as f64 / n as f64;
        assert!((f7 - 0.1).abs() < 0.01, "f7={f7}");
        assert!((f8 - 0.2).abs() < 0.01, "f8={f8}");
        assert!((f9 - 0.7).abs() < 0.01, "f9={f9}");
    }

    #[test]
    fn alias_sampler_rejects_empty_and_bad_weights() {
        assert!(AliasSampler::new(vec![]).is_none());
        assert!(AliasSampler::new(vec![(0, 0.0), (1, -2.0), (2, f64::NAN)]).is_none());
        let s = AliasSampler::new(vec![(3, f64::NAN), (4, 5.0)]).unwrap();
        assert_eq!(s.len(), 1);
        let mut rng = DetRng::new(7);
        assert_eq!(s.sample(&mut rng), 4);
    }

    #[test]
    fn config_validation_catches_errors() {
        let mut c = cfg();
        c.initial_videos = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.size_min_bytes = 10;
        c.size_max_bytes = 5;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.popularity_shape = 0.0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.decay_beta = -0.1;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.decay_tau = DurationMs::ZERO;
        assert!(c.validate().is_err());
        c.decay_beta = 0.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn size_of_looks_up_by_id() {
        let mut rng = DetRng::new(8);
        let cat = Catalog::generate(&cfg(), DurationMs::from_days(1), &mut rng);
        assert_eq!(cat.size_of(VideoId(0)), Some(cat.get(0).size_bytes));
        assert_eq!(cat.size_of(VideoId(u64::MAX)), None);
    }
}
