//! Randomized property tests for workload generation: distribution bounds,
//! session structure, trace invariants and down-sampling soundness.
//!
//! The workspace builds offline, so instead of an external property-test
//! framework these loop over cases whose inputs come from a meta [`DetRng`];
//! failures print the case seed so a run can be reproduced.

use vcdn_trace::{
    dist::{sample_exp, sample_watch_fraction, LogNormal, Pareto, Zipf},
    downsample,
    rng::DetRng,
    session::{expand_session, SessionConfig},
    DownsampleConfig, ServerProfile, TraceGenerator,
};
use vcdn_types::{ChunkSize, DurationMs, Timestamp, VideoId};

/// Runs `cases` iterations, handing each a fresh seed from a meta-RNG.
fn for_each_seed(cases: usize, test: impl Fn(&mut DetRng, u64)) {
    let mut meta = DetRng::new(0x7ACE_0901);
    for _ in 0..cases {
        let seed = meta.next_u64();
        let mut rng = DetRng::new(seed);
        test(&mut rng, seed);
    }
}

#[test]
fn rng_streams_are_seed_deterministic() {
    for_each_seed(256, |_, seed| {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    });
}

#[test]
fn rng_below_stays_in_range() {
    for_each_seed(256, |rng, seed| {
        let n = 1 + rng.below(1_000_000);
        let mut r = DetRng::new(seed ^ 1);
        for _ in 0..64 {
            assert!(r.below(n) < n, "seed {seed}, n {n}");
        }
    });
}

#[test]
fn zipf_samples_stay_in_rank_range() {
    for_each_seed(128, |rng, seed| {
        let n = 1 + rng.below(10_000);
        let s = 0.1 + rng.f64() * 2.4;
        let z = Zipf::new(n, s).expect("valid zipf");
        for _ in 0..64 {
            let k = z.sample(rng);
            assert!((1..=n).contains(&k), "seed {seed}");
        }
    });
}

#[test]
fn pareto_respects_scale() {
    for_each_seed(128, |rng, seed| {
        let xm = 0.1 + rng.f64() * 9.9;
        let a = 0.2 + rng.f64() * 3.8;
        let p = Pareto::new(xm, a).expect("valid pareto");
        for _ in 0..64 {
            assert!(p.sample(rng) >= xm, "seed {seed}");
        }
    });
}

#[test]
fn lognormal_is_positive() {
    for_each_seed(128, |rng, seed| {
        let mu = -3.0 + rng.f64() * 13.0;
        let sigma = rng.f64() * 2.0;
        let d = LogNormal::new(mu, sigma).expect("valid lognormal");
        for _ in 0..64 {
            assert!(d.sample(rng) > 0.0, "seed {seed}");
        }
    });
}

#[test]
fn exponential_is_positive() {
    for_each_seed(128, |rng, seed| {
        let rate = 0.001 + rng.f64() * 99.999;
        for _ in 0..64 {
            assert!(sample_exp(rng, rate) >= 0.0, "seed {seed}");
        }
    });
}

#[test]
fn watch_fraction_in_unit_interval() {
    for_each_seed(128, |rng, seed| {
        let p_full = rng.f64();
        let mean = 0.01 + rng.f64() * 0.99;
        for _ in 0..32 {
            let f = sample_watch_fraction(rng, p_full, mean);
            assert!(f > 0.0 && f <= 1.0, "seed {seed}");
        }
    });
}

#[test]
fn sessions_cover_contiguous_in_file_ranges() {
    for_each_seed(128, |rng, seed| {
        let size = 1 + rng.below(500_000_000);
        let req_bytes = 1 + rng.below(64_000_000);
        let cfg = SessionConfig {
            request_bytes: req_bytes,
            ..SessionConfig::default()
        };
        let reqs = expand_session(VideoId(1), size, Timestamp(7), &cfg, rng);
        assert!(!reqs.is_empty(), "seed {seed}");
        assert!(reqs[0].t == Timestamp(7), "seed {seed}");
        for w in reqs.windows(2) {
            assert_eq!(w[1].bytes.start, w[0].bytes.end + 1, "seed {seed}");
            assert!(w[0].t <= w[1].t, "seed {seed}");
        }
        for q in &reqs {
            assert!(q.bytes.end < size, "seed {seed}");
            assert!(q.byte_len() <= req_bytes, "seed {seed}");
        }
    });
}

#[test]
fn generated_traces_are_ordered_and_deterministic() {
    for_each_seed(8, |_, seed| {
        let profile = ServerProfile::tiny_test();
        let a = TraceGenerator::new(profile.clone(), seed).generate(DurationMs::from_hours(3));
        let b = TraceGenerator::new(profile, seed).generate(DurationMs::from_hours(3));
        assert_eq!(a, b, "seed {seed}");
        assert!(
            a.requests.windows(2).all(|w| w[0].t <= w[1].t),
            "seed {seed}"
        );
    });
}

#[test]
fn downsample_never_invents_requests() {
    for_each_seed(8, |rng, seed| {
        let files = 1 + rng.below(39) as usize;
        let cap_mb = 1 + rng.below(29);
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(12));
        let cfg = DownsampleConfig {
            files,
            size_cap_bytes: cap_mb * 1024 * 1024,
            from: Timestamp::EPOCH,
            to: Timestamp(DurationMs::from_hours(12).as_millis()),
        };
        let d = downsample(&trace, &cfg);
        assert!(d.len() <= trace.len(), "seed {seed}");
        let videos: std::collections::HashSet<VideoId> =
            d.requests.iter().map(|r| r.video).collect();
        assert!(videos.len() <= files, "seed {seed}");
        for r in &d.requests {
            assert!(r.bytes.end < cap_mb * 1024 * 1024, "seed {seed}");
        }
        // Every kept request is a (possibly clipped) original request.
        for r in &d.requests {
            assert!(
                trace.requests.iter().any(|o| o.video == r.video
                    && o.t == r.t
                    && o.bytes.start == r.bytes.start
                    && o.bytes.end >= r.bytes.end),
                "seed {seed}: downsampled request {r} has no original"
            );
        }
    });
}

#[test]
fn stats_identities_hold() {
    for_each_seed(8, |_, seed| {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(8));
        let k = ChunkSize::DEFAULT;
        let s = vcdn_trace::stats::trace_stats(&trace, k);
        assert_eq!(s.requests, trace.len(), "seed {seed}");
        assert!(s.requested_chunk_bytes >= s.requested_bytes, "seed {seed}");
        assert!(s.unique_chunks >= s.unique_videos, "seed {seed}");
        assert!((0.0..=1.0).contains(&s.tail_fraction), "seed {seed}");
        assert_eq!(
            s.hourly_histogram.iter().sum::<u64>() as usize,
            s.requests,
            "seed {seed}"
        );
    });
}

#[test]
fn binary_format_roundtrips_generated_traces() {
    for_each_seed(8, |_, seed| {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(2));
        let dir = std::env::temp_dir().join("vcdn-prop-binfmt");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("t{seed}.vctb"));
        vcdn_trace::save_binary(&trace, &path).expect("save");
        let back = vcdn_trace::load_binary(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace, "seed {seed}");
    });
}

#[test]
fn jsonl_format_roundtrips_generated_traces() {
    for_each_seed(8, |_, seed| {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(2));
        let dir = std::env::temp_dir().join("vcdn-prop-jsonl");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("t{seed}.jsonl"));
        trace.save_jsonl(&path).expect("save");
        let back = vcdn_trace::Trace::load_jsonl(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace, "seed {seed}");
    });
}
