//! Property-based tests for workload generation: distribution bounds,
//! session structure, trace invariants and down-sampling soundness.

use proptest::prelude::*;
use vcdn_trace::{
    dist::{sample_exp, sample_watch_fraction, LogNormal, Pareto, Zipf},
    downsample,
    rng::DetRng,
    session::{expand_session, SessionConfig},
    DownsampleConfig, ServerProfile, TraceGenerator,
};
use vcdn_types::{ChunkSize, DurationMs, Timestamp, VideoId};

proptest! {
    #[test]
    fn rng_streams_are_seed_deterministic(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_below_stays_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(r.below(n) < n);
        }
    }

    #[test]
    fn zipf_samples_stay_in_rank_range(
        seed in any::<u64>(),
        n in 1u64..10_000,
        s in 0.1f64..2.5,
    ) {
        let z = Zipf::new(n, s).expect("valid zipf");
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            let k = z.sample(&mut r);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn pareto_respects_scale(seed in any::<u64>(), xm in 0.1f64..10.0, a in 0.2f64..4.0) {
        let p = Pareto::new(xm, a).expect("valid pareto");
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(p.sample(&mut r) >= xm);
        }
    }

    #[test]
    fn lognormal_is_positive(seed in any::<u64>(), mu in -3.0f64..10.0, sigma in 0.0f64..2.0) {
        let d = LogNormal::new(mu, sigma).expect("valid lognormal");
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn exponential_is_positive(seed in any::<u64>(), rate in 0.001f64..100.0) {
        let mut r = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(sample_exp(&mut r, rate) >= 0.0);
        }
    }

    #[test]
    fn watch_fraction_in_unit_interval(
        seed in any::<u64>(),
        p_full in 0.0f64..=1.0,
        mean in 0.01f64..=1.0,
    ) {
        let mut r = DetRng::new(seed);
        for _ in 0..32 {
            let f = sample_watch_fraction(&mut r, p_full, mean);
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn sessions_cover_contiguous_in_file_ranges(
        seed in any::<u64>(),
        size in 1u64..500_000_000,
        req_bytes in 1u64..64_000_000,
    ) {
        let cfg = SessionConfig {
            request_bytes: req_bytes,
            ..SessionConfig::default()
        };
        let mut r = DetRng::new(seed);
        let reqs = expand_session(VideoId(1), size, Timestamp(7), &cfg, &mut r);
        prop_assert!(!reqs.is_empty());
        prop_assert!(reqs[0].t == Timestamp(7));
        for w in reqs.windows(2) {
            prop_assert_eq!(w[1].bytes.start, w[0].bytes.end + 1);
            prop_assert!(w[0].t <= w[1].t);
        }
        for q in &reqs {
            prop_assert!(q.bytes.end < size);
            prop_assert!(q.byte_len() <= req_bytes);
        }
    }

    #[test]
    fn generated_traces_are_ordered_and_deterministic(seed in any::<u64>()) {
        let profile = ServerProfile::tiny_test();
        let a = TraceGenerator::new(profile.clone(), seed).generate(DurationMs::from_hours(3));
        let b = TraceGenerator::new(profile, seed).generate(DurationMs::from_hours(3));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.requests.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn downsample_never_invents_requests(
        seed in any::<u64>(),
        files in 1usize..40,
        cap_mb in 1u64..30,
    ) {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(12));
        let cfg = DownsampleConfig {
            files,
            size_cap_bytes: cap_mb * 1024 * 1024,
            from: Timestamp::EPOCH,
            to: Timestamp(DurationMs::from_hours(12).as_millis()),
        };
        let d = downsample(&trace, &cfg);
        prop_assert!(d.len() <= trace.len());
        let videos: std::collections::HashSet<VideoId> =
            d.requests.iter().map(|r| r.video).collect();
        prop_assert!(videos.len() <= files);
        for r in &d.requests {
            prop_assert!(r.bytes.end < cap_mb * 1024 * 1024);
        }
        // Every kept request is a (possibly clipped) original request.
        for r in &d.requests {
            prop_assert!(
                trace.requests.iter().any(|o| o.video == r.video
                    && o.t == r.t
                    && o.bytes.start == r.bytes.start
                    && o.bytes.end >= r.bytes.end),
                "downsampled request {r} has no original"
            );
        }
    }

    #[test]
    fn stats_identities_hold(seed in any::<u64>()) {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(8));
        let k = ChunkSize::DEFAULT;
        let s = vcdn_trace::stats::trace_stats(&trace, k);
        prop_assert_eq!(s.requests, trace.len());
        prop_assert!(s.requested_chunk_bytes >= s.requested_bytes);
        prop_assert!(s.unique_chunks >= s.unique_videos);
        prop_assert!((0.0..=1.0).contains(&s.tail_fraction));
        prop_assert_eq!(
            s.hourly_histogram.iter().sum::<u64>() as usize,
            s.requests
        );
    }
}

proptest! {
    #[test]
    fn binary_format_roundtrips_generated_traces(seed in any::<u64>()) {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(2));
        let dir = std::env::temp_dir().join("vcdn-prop-binfmt");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("t{seed}.vctb"));
        vcdn_trace::save_binary(&trace, &path).expect("save");
        let back = vcdn_trace::load_binary(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn jsonl_format_roundtrips_generated_traces(seed in any::<u64>()) {
        let trace = TraceGenerator::new(ServerProfile::tiny_test(), seed)
            .generate(DurationMs::from_hours(2));
        let dir = std::env::temp_dir().join("vcdn-prop-jsonl");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("t{seed}.jsonl"));
        trace.save_jsonl(&path).expect("save");
        let back = vcdn_trace::Trace::load_jsonl(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back, trace);
    }
}
