//! The metrics registry: named counters, gauges and log-bucketed
//! histograms behind the [`MetricsSink`] trait.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-free on the hot path.** Every update
//!    ([`MetricsSink::counter_add`], [`MetricsSink::gauge_set`],
//!    [`MetricsSink::observe`]) is a single atomic RMW on a pre-allocated
//!    slot — no locks, no allocation, no branching beyond the bounds
//!    check. Only [`MetricsSink::register`] (called at attach time, never
//!    per request) takes a mutex.
//! 2. **Zero cost when disabled.** [`NoopSink`] answers
//!    [`MetricsSink::enabled`] with `false`; instrumented code gates its
//!    bookkeeping on that flag, so a bench replay with the no-op sink
//!    stays allocation-free and at full throughput.
//! 3. **Deterministic export.** [`MetricsRegistry::snapshot`] returns
//!    metrics in registration order with plain integer values, so a
//!    per-replay registry serialises byte-identically across runs and
//!    worker counts. Wall-clock-derived metrics are registered as
//!    [`MetricKind::TimingHistogram`] and can be filtered out of
//!    deterministic exports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{bucket_index, HistogramSnapshot, BUCKETS};

/// What a registered metric measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing sum (`counter_add`).
    Counter,
    /// A last-write-wins instantaneous value (`gauge_set`).
    Gauge,
    /// A log-bucketed distribution of deterministic values (`observe`),
    /// e.g. fill chunks per request or eviction batch sizes.
    Histogram,
    /// A log-bucketed distribution of wall-clock-derived values
    /// (`observe`), e.g. decision latency in nanoseconds. Excluded from
    /// deterministic exports because timings differ across machines and
    /// runs.
    TimingHistogram,
}

impl MetricKind {
    /// Short lowercase name used in JSONL exports.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::TimingHistogram => "timing_histogram",
        }
    }

    /// Whether the metric's values are reproducible across identical
    /// replays (everything except wall-clock timings).
    pub fn deterministic(self) -> bool {
        !matches!(self, MetricKind::TimingHistogram)
    }
}

/// Opaque handle to a registered metric; indexes the registry's slot
/// table. Obtained from [`MetricsSink::register`] and passed back to the
/// update methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub(crate) u32);

impl MetricId {
    /// The id every [`NoopSink`] registration returns. Updates against it
    /// on a real registry are ignored (slot 0 is reserved as a sink-hole),
    /// so mixing a handle from a no-op attach into a live registry cannot
    /// corrupt named metrics.
    pub const NOOP: MetricId = MetricId(0);
}

/// The sink instrumented code writes through.
///
/// The hot-path methods take `&self` and must be cheap and thread-safe;
/// [`MetricsRegistry`] implements them as single atomic operations.
/// Instrumented code holds an `Arc<dyn MetricsSink>` plus the
/// [`MetricId`]s it registered up front.
pub trait MetricsSink: Send + Sync {
    /// Whether this sink records anything. Instrumentation gates optional
    /// bookkeeping (e.g. reading the clock for latency histograms) on
    /// this, so the no-op sink costs one predictable branch.
    fn enabled(&self) -> bool;

    /// Registers (or looks up) a metric by name. Not a hot-path method:
    /// call it once at attach time and keep the returned id. Registering
    /// the same name twice returns the same id; the kind must match.
    fn register(&self, name: &str, kind: MetricKind) -> MetricId;

    /// Adds `delta` to a counter.
    fn counter_add(&self, id: MetricId, delta: u64);

    /// Sets a gauge to `value`.
    fn gauge_set(&self, id: MetricId, value: u64);

    /// Records `value` into a histogram.
    fn observe(&self, id: MetricId, value: u64);
}

/// A sink that records nothing and reports itself disabled.
///
/// [`NoopSink::shared`] returns a process-wide instance so detached
/// policies don't allocate one each.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl NoopSink {
    /// A shared no-op sink.
    pub fn shared() -> Arc<NoopSink> {
        static SHARED: Mutex<Option<Arc<NoopSink>>> = Mutex::new(None);
        SHARED
            .lock()
            .expect("noop sink mutex poisoned")
            .get_or_insert_with(|| Arc::new(NoopSink))
            .clone()
    }
}

impl MetricsSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn register(&self, _name: &str, _kind: MetricKind) -> MetricId {
        MetricId::NOOP
    }

    fn counter_add(&self, _id: MetricId, _delta: u64) {}

    fn gauge_set(&self, _id: MetricId, _value: u64) {}

    fn observe(&self, _id: MetricId, _value: u64) {}
}

/// One metric's pre-allocated atomic storage.
///
/// Counters and gauges use `value`; histograms use `value` as the sample
/// count, `sum` as the sample sum, and the per-bucket counts.
struct Slot {
    value: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            value: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Registration-time metadata, guarded by a mutex (cold path only).
struct Names {
    /// `(name, kind)` per live slot, indexed by `MetricId - 1`.
    entries: Vec<(String, MetricKind)>,
}

/// The concrete sink: a fixed-capacity table of atomic slots.
///
/// Capacity is fixed at construction so the hot path indexes a stable
/// allocation without any lock. A full registry degrades gracefully:
/// [`MetricsSink::register`] returns [`MetricId::NOOP`] (updates land in
/// the slot-0 sink-hole) and bumps an overflow count that
/// [`MetricsRegistry::snapshot`] surfaces as a synthetic
/// `obs.registry_overflow` counter — observability loses a metric, the
/// replay never dies, and the loss itself is observable.
///
/// # Examples
///
/// ```
/// use vcdn_obs::{MetricKind, MetricsRegistry, MetricsSink};
///
/// let reg = MetricsRegistry::new();
/// let fills = reg.register("fill_chunks_total", MetricKind::Counter);
/// reg.counter_add(fills, 3);
/// reg.counter_add(fills, 4);
/// let snap = reg.snapshot(true);
/// assert_eq!(snap[0].name, "fill_chunks_total");
/// assert_eq!(snap[0].value, 7);
/// ```
pub struct MetricsRegistry {
    /// Slot 0 is a reserved sink-hole for [`MetricId::NOOP`]; live metrics
    /// start at slot 1.
    slots: Box<[Slot]>,
    names: Mutex<Names>,
    /// Live slot count, including the reserved slot 0.
    len: AtomicUsize,
    /// Registrations refused because every slot was taken.
    overflow: AtomicU64,
}

/// Default capacity: far above what one replay (a few dozen metrics) or
/// one fully instrumented engine registers — a 16-shard engine with span
/// accounting, per-shard sketches and per-worker timings uses ~270 slots.
/// A slot is ~0.5 KiB, so the default table stays around half a MiB.
const DEFAULT_CAPACITY: usize = 1024;

/// A metric's exported state: deterministic integers only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The registered kind.
    pub kind: MetricKind,
    /// Counter/gauge value; for histograms, the sample count.
    pub value: u64,
    /// Histogram sample sum (`0` for counters and gauges).
    pub sum: u64,
    /// Histogram bucket counts (empty for counters and gauges).
    pub histogram: Option<HistogramSnapshot>,
}

impl MetricsRegistry {
    /// Creates a registry with the default slot capacity.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a registry holding at most `capacity` metrics.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> MetricsRegistry {
        assert!(capacity > 0, "registry capacity must be > 0");
        MetricsRegistry {
            // +1 for the reserved NOOP sink-hole slot.
            slots: (0..capacity + 1).map(|_| Slot::new()).collect(),
            names: Mutex::new(Names {
                entries: Vec::new(),
            }),
            len: AtomicUsize::new(1),
            overflow: AtomicU64::new(0),
        }
    }

    /// Registrations refused because the registry was full. Also exported
    /// by [`MetricsRegistry::snapshot`] as the synthetic
    /// `obs.registry_overflow` counter whenever nonzero.
    pub fn overflow(&self) -> u64 {
        self.overflow.load(Ordering::Acquire)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) - 1
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot(&self, id: MetricId) -> Option<&Slot> {
        let i = id.0 as usize;
        // Slot 0 (NOOP) and out-of-range ids are ignored, never UB.
        if i == 0 || i >= self.len.load(Ordering::Acquire) {
            return None;
        }
        Some(&self.slots[i])
    }

    /// Exports every metric in registration order. With
    /// `deterministic_only`, wall-clock timing histograms are skipped so
    /// the result is byte-identical across identical replays. If any
    /// registration was refused by a full registry, a synthetic
    /// `obs.registry_overflow` counter is appended so the loss is visible
    /// in every export.
    pub fn snapshot(&self, deterministic_only: bool) -> Vec<MetricSnapshot> {
        let names = self.names.lock().expect("registry mutex poisoned");
        let mut out: Vec<MetricSnapshot> = names
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, kind))| !deterministic_only || kind.deterministic())
            .map(|(i, (name, kind))| {
                let slot = &self.slots[i + 1];
                let histogram = match kind {
                    MetricKind::Histogram | MetricKind::TimingHistogram => {
                        Some(HistogramSnapshot {
                            count: slot.value.load(Ordering::Acquire),
                            sum: slot.sum.load(Ordering::Acquire),
                            buckets: slot
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Acquire))
                                .collect(),
                        })
                    }
                    _ => None,
                };
                MetricSnapshot {
                    name: name.clone(),
                    kind: *kind,
                    value: slot.value.load(Ordering::Acquire),
                    sum: slot.sum.load(Ordering::Acquire),
                    histogram,
                }
            })
            .collect();
        let refused = self.overflow.load(Ordering::Acquire);
        if refused > 0 {
            out.push(MetricSnapshot {
                name: "obs.registry_overflow".to_string(),
                kind: MetricKind::Counter,
                value: refused,
                sum: 0,
                histogram: None,
            });
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("len", &self.len())
            .field("capacity", &(self.slots.len() - 1))
            .finish()
    }
}

impl MetricsSink for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn register(&self, name: &str, kind: MetricKind) -> MetricId {
        let mut names = self.names.lock().expect("registry mutex poisoned");
        if let Some(i) = names.entries.iter().position(|(n, _)| n == name) {
            assert_eq!(
                names.entries[i].1, kind,
                "metric `{name}` re-registered with a different kind"
            );
            return MetricId(i as u32 + 1);
        }
        let next = self.len.load(Ordering::Acquire);
        if next >= self.slots.len() {
            // Graceful exhaustion: refuse the slot, count the refusal
            // (surfaced as `obs.registry_overflow` in snapshots), and hand
            // back the sink-hole id so the caller's updates are ignored
            // rather than crashing the replay.
            self.overflow.fetch_add(1, Ordering::Relaxed);
            return MetricId::NOOP;
        }
        names.entries.push((name.to_string(), kind));
        // Publish the new slot only after the metadata exists; readers
        // acquire-load `len`, so they never see a slot without its name.
        self.len.store(next + 1, Ordering::Release);
        MetricId(next as u32)
    }

    fn counter_add(&self, id: MetricId, delta: u64) {
        if let Some(slot) = self.slot(id) {
            slot.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    fn gauge_set(&self, id: MetricId, value: u64) {
        if let Some(slot) = self.slot(id) {
            slot.value.store(value, Ordering::Relaxed);
        }
    }

    fn observe(&self, id: MetricId, value: u64) {
        if let Some(slot) = self.slot(id) {
            slot.value.fetch_add(1, Ordering::Relaxed);
            slot.sum.fetch_add(value, Ordering::Relaxed);
            slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.register("c", MetricKind::Counter);
        reg.counter_add(c, 1);
        reg.counter_add(c, 41);
        assert_eq!(reg.snapshot(true)[0].value, 42);
    }

    #[test]
    fn gauges_take_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.register("g", MetricKind::Gauge);
        reg.gauge_set(g, 7);
        reg.gauge_set(g, 3);
        assert_eq!(reg.snapshot(true)[0].value, 3);
    }

    #[test]
    fn histograms_track_count_sum_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.register("h", MetricKind::Histogram);
        for v in [0, 1, 5, 5, 1024] {
            reg.observe(h, v);
        }
        let snap = &reg.snapshot(true)[0];
        assert_eq!(snap.value, 5);
        assert_eq!(snap.sum, 1035);
        let hist = snap.histogram.as_ref().unwrap();
        assert_eq!(hist.count, 5);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn reregistration_returns_same_id() {
        let reg = MetricsRegistry::new();
        let a = reg.register("x", MetricKind::Counter);
        let b = reg.register("x", MetricKind::Counter);
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.register("x", MetricKind::Counter);
        reg.register("x", MetricKind::Gauge);
    }

    #[test]
    fn noop_id_is_a_sink_hole() {
        let reg = MetricsRegistry::new();
        let c = reg.register("c", MetricKind::Counter);
        reg.counter_add(MetricId::NOOP, 100);
        reg.counter_add(c, 1);
        assert_eq!(reg.snapshot(true)[0].value, 1);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let reg = MetricsRegistry::new();
        reg.register("b", MetricKind::Counter);
        reg.register("a", MetricKind::Gauge);
        let snap = reg.snapshot(true);
        let names: Vec<&str> = snap.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
    }

    #[test]
    fn deterministic_snapshot_skips_timing() {
        let reg = MetricsRegistry::new();
        reg.register("lat", MetricKind::TimingHistogram);
        reg.register("fills", MetricKind::Counter);
        assert_eq!(reg.snapshot(true).len(), 1);
        assert_eq!(reg.snapshot(false).len(), 2);
    }

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let s = NoopSink::shared();
        assert!(!s.enabled());
        let id = s.register("anything", MetricKind::Counter);
        assert_eq!(id, MetricId::NOOP);
        s.counter_add(id, 5);
        s.gauge_set(id, 5);
        s.observe(id, 5);
    }

    #[test]
    fn capacity_exhaustion_degrades_to_noop_and_counts_overflow() {
        let reg = MetricsRegistry::with_capacity(1);
        let a = reg.register("a", MetricKind::Counter);
        assert_ne!(a, MetricId::NOOP);
        // Registry is full: refused registrations return the sink-hole id.
        let b = reg.register("b", MetricKind::Counter);
        let c = reg.register("c", MetricKind::Histogram);
        assert_eq!(b, MetricId::NOOP);
        assert_eq!(c, MetricId::NOOP);
        assert_eq!(reg.overflow(), 2);
        // Updates through the refused ids are ignored, never UB or panic.
        reg.counter_add(b, 100);
        reg.observe(c, 7);
        reg.counter_add(a, 1);
        // Re-registering an existing name still works while full.
        assert_eq!(reg.register("a", MetricKind::Counter), a);
        assert_eq!(reg.overflow(), 2);
        // The loss is visible: snapshots append obs.registry_overflow.
        let snap = reg.snapshot(true);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[0].value, 1);
        assert_eq!(snap[1].name, "obs.registry_overflow");
        assert_eq!(snap[1].kind, MetricKind::Counter);
        assert_eq!(snap[1].value, 2);
    }

    #[test]
    fn snapshot_has_no_overflow_entry_when_nothing_was_refused() {
        let reg = MetricsRegistry::new();
        reg.register("a", MetricKind::Counter);
        let snap = reg.snapshot(true);
        assert!(snap.iter().all(|m| m.name != "obs.registry_overflow"));
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let c = reg.register("c", MetricKind::Counter);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        reg.counter_add(c, 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot(true)[0].value, 40_000);
    }
}
