//! The telemetry bundle: one replay's observability output as JSONL.
//!
//! A bundle collects everything a replay observed — run metadata, the
//! metric snapshots, the heavy-hitter top-K records, the health windows
//! and watchdog alerts, the time series and the retained decision events
//! — and serialises it as one JSON object per line. Line order is fixed
//! (meta, metrics in registration order, topk by shard then rank,
//! windows by index, alerts in window order, samples in time order,
//! events in replay order), and by default only deterministic metrics
//! are included, so two identical replays produce byte-identical bundles
//! regardless of worker count or machine. See `OBSERVABILITY.md` for the
//! line-by-line schema.

use vcdn_types::json::{Json, ToJson};

use crate::detect::AlertEvent;
use crate::event::DecisionEvent;
use crate::registry::MetricSnapshot;
use crate::sampler::SeriesSample;
use crate::topk::TopKRecord;
use crate::window::WindowRecord;

/// Schema tag written into every bundle's meta line.
pub const SCHEMA: &str = "vcdn-telemetry/1";

impl ToJson for MetricSnapshot {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type".into(), Json::Str("metric".into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("kind".into(), Json::Str(self.kind.name().into())),
            ("value".into(), Json::Int(self.value as i128)),
        ];
        if let Some(hist) = &self.histogram {
            fields.push(("sum".into(), Json::Int(hist.sum as i128)));
            fields.push((
                "buckets".into(),
                Json::Arr(hist.buckets.iter().map(|&b| Json::Int(b as i128)).collect()),
            ));
        }
        Json::Obj(fields)
    }
}

/// One replay's complete telemetry, ready to serialise.
#[derive(Debug, Clone, Default)]
pub struct TelemetryBundle {
    /// Free-form run metadata merged into the bundle's first line
    /// (policy name, trace profile, scale, interval — whatever identifies
    /// the run).
    pub meta: Vec<(String, Json)>,
    /// Metric snapshots in registration order.
    pub metrics: Vec<MetricSnapshot>,
    /// Heavy-hitter records, ordered by shard then rank.
    pub topk: Vec<TopKRecord>,
    /// Health windows in index order (merged across shards).
    pub windows: Vec<WindowRecord>,
    /// Watchdog alerts in window order.
    pub alerts: Vec<AlertEvent>,
    /// Closed windows the bounded ring evicted before export.
    pub windows_dropped: u64,
    /// Time series in time order.
    pub series: Vec<SeriesSample>,
    /// Retained decision events in replay order.
    pub events: Vec<DecisionEvent>,
    /// Events the ring displaced before export.
    pub events_dropped: u64,
}

impl TelemetryBundle {
    /// An empty bundle.
    pub fn new() -> TelemetryBundle {
        TelemetryBundle::default()
    }

    /// Adds a metadata entry to the meta line.
    pub fn meta_entry(&mut self, key: &str, value: Json) -> &mut Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// The bundle's meta line as a JSON object.
    fn meta_json(&self) -> Json {
        let mut fields = vec![
            ("type".into(), Json::Str("meta".into())),
            ("schema".into(), Json::Str(SCHEMA.into())),
        ];
        fields.extend(self.meta.iter().cloned());
        fields.push(("metrics".into(), Json::Int(self.metrics.len() as i128)));
        fields.push(("topk".into(), Json::Int(self.topk.len() as i128)));
        fields.push(("windows".into(), Json::Int(self.windows.len() as i128)));
        fields.push((
            "windows_dropped".into(),
            Json::Int(self.windows_dropped as i128),
        ));
        fields.push(("alerts".into(), Json::Int(self.alerts.len() as i128)));
        fields.push(("samples".into(), Json::Int(self.series.len() as i128)));
        fields.push(("events".into(), Json::Int(self.events.len() as i128)));
        fields.push((
            "events_dropped".into(),
            Json::Int(self.events_dropped as i128),
        ));
        Json::Obj(fields)
    }

    /// Serialises the bundle: one JSON object per line, trailing newline,
    /// fixed order (meta, metrics, topk, windows, alerts, samples,
    /// events).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.meta_json().to_string());
        out.push('\n');
        for metric in &self.metrics {
            out.push_str(&metric.to_json().to_string());
            out.push('\n');
        }
        for record in &self.topk {
            out.push_str(&record.to_json().to_string());
            out.push('\n');
        }
        for window in &self.windows {
            out.push_str(&window.to_json().to_string());
            out.push('\n');
        }
        for alert in &self.alerts {
            out.push_str(&alert.to_json().to_string());
            out.push('\n');
        }
        for sample in &self.series {
            out.push_str(&sample.to_json().to_string());
            out.push('\n');
        }
        for event in &self.events {
            out.push_str(&event.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Verdict;
    use crate::registry::{MetricKind, MetricsRegistry, MetricsSink};
    use std::sync::Arc;
    use vcdn_types::json;

    fn tiny_bundle() -> TelemetryBundle {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.register("demo.fill_chunks_total", MetricKind::Counter);
        reg.counter_add(c, 9);
        let h = reg.register("demo.eviction_batch_chunks", MetricKind::Histogram);
        reg.observe(h, 4);

        let mut bundle = TelemetryBundle::new();
        bundle.meta_entry("policy", Json::Str("demo".into()));
        bundle.metrics = reg.snapshot(true);
        bundle.topk.push(TopKRecord {
            shard: 0,
            rank: 1,
            video: 12,
            count: 6,
            err: 2,
        });
        let mut w = crate::window::WindowStats::empty(0);
        w.traffic.record_hit(80);
        w.traffic.served_requests += 1;
        w.max_stream_requests = 1;
        bundle.windows.push(WindowRecord::from_stats(
            &w,
            vcdn_types::CostModel::balanced(),
        ));
        bundle.alerts.push(AlertEvent {
            window: 0,
            rule: "demo-rule".into(),
            severity: crate::detect::Severity::Warning,
            baseline: 0.9,
            observed: 0.5,
        });
        bundle.events.push(DecisionEvent {
            seq: 0,
            t_ms: 10,
            video: 3,
            chunk: 0,
            chunks: 2,
            policy: "demo",
            verdict: Verdict::Serve {
                hit_chunks: 1,
                filled_chunks: 1,
            },
            cost_serve: None,
            cost_redirect: None,
            cache_age_ms: Some(5.0),
            evicted: 0,
        });
        bundle
    }

    #[test]
    fn every_line_parses_and_order_is_fixed() {
        let jsonl = tiny_bundle().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 7);
        let types: Vec<String> = lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("type")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(
            types,
            vec!["meta", "metric", "metric", "topk", "window", "alert", "event"]
        );
    }

    #[test]
    fn meta_line_counts_sections() {
        let jsonl = tiny_bundle().to_jsonl();
        let meta = json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(meta.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(meta.get("policy").and_then(Json::as_str), Some("demo"));
        assert_eq!(meta.get("metrics"), Some(&Json::Int(2)));
        assert_eq!(meta.get("topk"), Some(&Json::Int(1)));
        assert_eq!(meta.get("windows"), Some(&Json::Int(1)));
        assert_eq!(meta.get("windows_dropped"), Some(&Json::Int(0)));
        assert_eq!(meta.get("alerts"), Some(&Json::Int(1)));
        assert_eq!(meta.get("events"), Some(&Json::Int(1)));
        assert_eq!(meta.get("events_dropped"), Some(&Json::Int(0)));
    }

    #[test]
    fn counter_line_has_no_buckets_histogram_line_does() {
        let jsonl = tiny_bundle().to_jsonl();
        let lines: Vec<Json> = jsonl.lines().map(|l| json::parse(l).unwrap()).collect();
        let counter = &lines[1];
        assert_eq!(counter.get("kind").and_then(Json::as_str), Some("counter"));
        assert_eq!(counter.get("value"), Some(&Json::Int(9)));
        assert!(counter.get("buckets").is_none());
        let hist = &lines[2];
        assert_eq!(hist.get("kind").and_then(Json::as_str), Some("histogram"));
        assert_eq!(hist.get("sum"), Some(&Json::Int(4)));
        assert!(matches!(hist.get("buckets"), Some(Json::Arr(_))));
    }

    #[test]
    fn identical_bundles_serialise_identically() {
        assert_eq!(tiny_bundle().to_jsonl(), tiny_bundle().to_jsonl());
    }
}
