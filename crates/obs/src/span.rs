//! Deterministic span/stage accounting for the request lifecycle:
//! dispatch → queue → shard-decide → evict.
//!
//! The sharded engine is a pipeline: a dispatcher routes each request to
//! its shard's owning worker queue, the worker decides it on the shard,
//! and some decisions evict. Wall-clock timings of those stages are
//! machine- and schedule-dependent, so they can never appear in exported
//! bundles (the repo-wide rule: non-deterministic values are
//! [`MetricKind::TimingHistogram`], which snapshots exclude). This module
//! splits the accounting into the two planes explicitly:
//!
//! * **Logical plane** ([`DispatchSpans`], [`ShardSpans`]) — everything
//!   is derived from a *logical dispatch clock*: one tick per dispatched
//!   request, assigned by the single-threaded dispatcher in trace order,
//!   so every exported value is a pure function of the input stream and
//!   identical for any worker count.
//!   - `{scope}.engine.span.dispatched_total` — requests entering the
//!     dispatch stage.
//!   - `{scope}.s{i:02}.span.queue_gap` — per-stream histogram of the
//!     logical gap (in global dispatch ticks) between consecutive
//!     arrivals at stream `i`: a deterministic proxy for how bursty a
//!     shard's queue feed is.
//!   - `{scope}.s{i:02}.span.load_share_x1000` — the stream's running
//!     share of all dispatched requests, ×1000.
//!   - `{scope}.s{i:02}.span.processed_total` — requests that completed
//!     the shard-decide stage on shard `i`.
//!   - `{scope}.s{i:02}.span.evict_events_total` — decisions that
//!     reached the evict stage (evicted ≥ 1 chunk).
//!
//!   Conservation: at quiescence, `dispatched_total` equals the sum of
//!   per-shard `processed_total` — every dispatched request is decided
//!   exactly once (`obs_check` verifies this on engine bundles).
//!
//! * **Wall-clock plane** ([`WorkerTimings`]) — per-worker batch wait
//!   and service times and observed queue depths, all registered as
//!   [`MetricKind::TimingHistogram`] so they are visible to live
//!   snapshots (`snapshot(false)`) and the contention bench's
//!   timing-excluded JSON fields, but never to bundles.

use std::sync::Arc;

use crate::registry::{MetricId, MetricKind, MetricsSink};

/// The pipeline stages a request is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanStage {
    /// Routed by the dispatcher.
    Dispatch,
    /// Waiting in (or logically traversing) a worker queue.
    Queue,
    /// Decided on its owning shard.
    Decide,
    /// The decision evicted at least one chunk.
    Evict,
}

impl SpanStage {
    /// Short lowercase stage name used in metric names and reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Dispatch => "dispatch",
            SpanStage::Queue => "queue",
            SpanStage::Decide => "decide",
            SpanStage::Evict => "evict",
        }
    }
}

/// Per-stream state of the dispatcher's logical accounting.
struct StreamSpan {
    /// Last dispatch tick assigned to this stream, plus one (0 = never).
    last_plus1: u64,
    /// Requests dispatched to this stream so far.
    count: u64,
    queue_gap: MetricId,
    load_share: MetricId,
}

/// Dispatcher-side logical-clock accounting: owns the global dispatch
/// clock and the per-stream queue-gap/load-share metrics.
///
/// Single-threaded by design — the engine's dispatcher is the only
/// caller, which is exactly what makes the exported values
/// worker-count-invariant. The clock persists across runs of the same
/// engine (warm continuation keeps accumulating).
pub struct DispatchSpans {
    sink: Arc<dyn MetricsSink>,
    dispatched: MetricId,
    clock: u64,
    streams: Vec<StreamSpan>,
}

impl DispatchSpans {
    /// Registers the dispatch-stage metrics for `streams` shard streams
    /// under `scope` (the same scope the engine's other metrics use).
    pub fn attach(sink: &Arc<dyn MetricsSink>, scope: &str, streams: usize) -> DispatchSpans {
        let dispatched = sink.register(
            &format!("{scope}.engine.span.dispatched_total"),
            MetricKind::Counter,
        );
        let streams = (0..streams)
            .map(|i| StreamSpan {
                last_plus1: 0,
                count: 0,
                queue_gap: sink.register(
                    &format!("{scope}.s{i:02}.span.queue_gap"),
                    MetricKind::Histogram,
                ),
                load_share: sink.register(
                    &format!("{scope}.s{i:02}.span.load_share_x1000"),
                    MetricKind::Gauge,
                ),
            })
            .collect();
        DispatchSpans {
            sink: Arc::clone(sink),
            dispatched,
            clock: 0,
            streams,
        }
    }

    /// Ticks the global dispatch clock for a request routed to `stream`:
    /// counts the dispatch stage, observes the stream's logical queue gap
    /// and updates its load-share gauge.
    ///
    /// # Panics
    ///
    /// Panics if `stream` is out of range.
    pub fn record(&mut self, stream: usize) {
        let tick = self.clock;
        self.clock += 1;
        self.sink.counter_add(self.dispatched, 1);
        let st = &mut self.streams[stream];
        // First arrival measures its distance from the stream's start.
        let gap = tick + 1 - st.last_plus1;
        st.last_plus1 = tick + 1;
        st.count += 1;
        self.sink.observe(st.queue_gap, gap);
        self.sink
            .gauge_set(st.load_share, st.count * 1000 / (tick + 1));
    }

    /// Total dispatch ticks so far (requests routed over the engine's
    /// lifetime).
    pub fn clock(&self) -> u64 {
        self.clock
    }
}

/// Shard-side logical stage counters: decide and evict, recorded by the
/// worker that owns the shard. Counters are atomic, and each shard is
/// touched by exactly one worker per run, so the totals are exact.
#[derive(Debug, Clone)]
pub struct ShardSpans {
    processed: MetricId,
    evict_events: MetricId,
}

impl ShardSpans {
    /// Registers shard `i`'s decide/evict stage counters under `scope`.
    pub fn attach(sink: &Arc<dyn MetricsSink>, scope: &str, i: usize) -> ShardSpans {
        ShardSpans {
            processed: sink.register(
                &format!("{scope}.s{i:02}.span.processed_total"),
                MetricKind::Counter,
            ),
            evict_events: sink.register(
                &format!("{scope}.s{i:02}.span.evict_events_total"),
                MetricKind::Counter,
            ),
        }
    }

    /// Counts one completed shard-decide stage; `evicted` decisions also
    /// count an evict stage.
    pub fn record(&self, sink: &dyn MetricsSink, evicted: bool) {
        sink.counter_add(self.processed, 1);
        if evicted {
            sink.counter_add(self.evict_events, 1);
        }
    }
}

/// Per-worker wall-clock stage timings: batch wait (time blocked in the
/// queue pop), batch service (time deciding the batch) and the queue
/// depth observed at each pop. All three are
/// [`MetricKind::TimingHistogram`] — never exported in bundles, by the
/// determinism rule — registered as `{scope}.w{w:02}.span.*`.
#[derive(Debug, Clone)]
pub struct WorkerTimings {
    batch_wait_ns: MetricId,
    batch_service_ns: MetricId,
    queue_depth: MetricId,
}

impl WorkerTimings {
    /// Registers worker `w`'s timing histograms under `scope`.
    pub fn attach(sink: &Arc<dyn MetricsSink>, scope: &str, w: usize) -> WorkerTimings {
        let name = |metric: &str| format!("{scope}.w{w:02}.span.{metric}");
        WorkerTimings {
            batch_wait_ns: sink.register(&name("batch_wait_ns"), MetricKind::TimingHistogram),
            batch_service_ns: sink.register(&name("batch_service_ns"), MetricKind::TimingHistogram),
            queue_depth: sink.register(&name("queue_depth_batches"), MetricKind::TimingHistogram),
        }
    }

    /// Records one consumed batch: nanoseconds blocked waiting for it,
    /// nanoseconds spent deciding it, and the queue depth left behind.
    pub fn record_batch(&self, sink: &dyn MetricsSink, wait_ns: u64, service_ns: u64, depth: u64) {
        sink.observe(self.batch_wait_ns, wait_ns);
        sink.observe(self.batch_service_ns, service_ns);
        sink.observe(self.queue_depth, depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn registry() -> (Arc<MetricsRegistry>, Arc<dyn MetricsSink>) {
        let reg = Arc::new(MetricsRegistry::new());
        let sink: Arc<dyn MetricsSink> = reg.clone();
        (reg, sink)
    }

    fn value(reg: &MetricsRegistry, name: &str) -> u64 {
        reg.snapshot(false)
            .into_iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .value
    }

    #[test]
    fn stage_names() {
        let names: Vec<&str> = [
            SpanStage::Dispatch,
            SpanStage::Queue,
            SpanStage::Decide,
            SpanStage::Evict,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(names, vec!["dispatch", "queue", "decide", "evict"]);
    }

    #[test]
    fn dispatch_conserves_and_shares_sum() {
        let (reg, sink) = registry();
        let mut spans = DispatchSpans::attach(&sink, "e", 2);
        // Streams: 0,0,1,0 — clock ticks 0..4.
        for s in [0usize, 0, 1, 0] {
            spans.record(s);
        }
        assert_eq!(spans.clock(), 4);
        assert_eq!(value(&reg, "e.engine.span.dispatched_total"), 4);
        // Stream 0 got 3 of 4 → share 750; stream 1 got 1 of 3 at its
        // last update (tick 2) → share 333.
        assert_eq!(value(&reg, "e.s00.span.load_share_x1000"), 750);
        assert_eq!(value(&reg, "e.s01.span.load_share_x1000"), 333);
    }

    #[test]
    fn queue_gap_measures_logical_interarrival() {
        let (reg, sink) = registry();
        let mut spans = DispatchSpans::attach(&sink, "e", 2);
        for s in [0usize, 1, 1, 0] {
            spans.record(s);
        }
        let snap = reg.snapshot(false);
        let hist = |name: &str| {
            snap.iter()
                .find(|m| m.name == name)
                .and_then(|m| m.histogram.clone())
                .unwrap_or_else(|| panic!("histogram {name} missing"))
        };
        // Stream 0: gaps 1 (tick 0, first) and 3 (tick 3 − tick 0).
        let s0 = hist("e.s00.span.queue_gap");
        assert_eq!(s0.count, 2);
        assert_eq!(s0.sum, 4);
        // Stream 1: gaps 2 (tick 1, first) and 1 (tick 2 − tick 1).
        let s1 = hist("e.s01.span.queue_gap");
        assert_eq!(s1.count, 2);
        assert_eq!(s1.sum, 3);
    }

    #[test]
    fn shard_spans_count_decide_and_evict() {
        let (reg, sink) = registry();
        let spans = ShardSpans::attach(&sink, "e", 3);
        spans.record(sink.as_ref(), false);
        spans.record(sink.as_ref(), true);
        spans.record(sink.as_ref(), false);
        assert_eq!(value(&reg, "e.s03.span.processed_total"), 3);
        assert_eq!(value(&reg, "e.s03.span.evict_events_total"), 1);
    }

    #[test]
    fn worker_timings_are_timing_kind_and_never_deterministic() {
        let (reg, sink) = registry();
        let tm = WorkerTimings::attach(&sink, "e", 0);
        tm.record_batch(sink.as_ref(), 100, 2000, 3);
        // Visible to the live snapshot…
        assert_eq!(value(&reg, "e.w00.span.batch_wait_ns"), 1);
        // …but excluded from every deterministic export.
        assert!(reg
            .snapshot(true)
            .iter()
            .all(|m| !m.name.contains(".w00.span.")));
    }

    #[test]
    fn logical_plane_is_fully_deterministic_kind() {
        let (reg, sink) = registry();
        let mut d = DispatchSpans::attach(&sink, "e", 4);
        for i in 0..16 {
            d.record(i % 4);
        }
        for i in 0..4 {
            ShardSpans::attach(&sink, "e", i).record(sink.as_ref(), i % 2 == 0);
        }
        let det = reg.snapshot(true);
        let all = reg.snapshot(false);
        assert_eq!(det.len(), all.len(), "span logical metrics must export");
    }
}
