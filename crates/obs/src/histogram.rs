//! Log-bucketed histogram mathematics and snapshots.
//!
//! Values are `u64`s binned into power-of-two buckets: bucket `0` holds
//! the value `0`, and bucket `i ≥ 1` holds `[2^(i−1), 2^i)`. With 64
//! value bits that is [`BUCKETS`] `= 65` buckets, enough to bin any `u64`
//! — nanosecond latencies, per-request fill chunk counts and eviction
//! batch sizes all land in the same fixed, allocation-free layout.
//!
//! The bucket functions here are pure; the atomic storage lives in
//! [`crate::MetricsRegistry`], and [`HistogramSnapshot`] is the exported
//! (plain integer) form.

use vcdn_types::impl_json_struct;

/// Number of buckets: one for zero plus one per value bit.
pub const BUCKETS: usize = 65;

/// The bucket a value falls into: `0` for `0`, else `⌊log2 v⌋ + 1`.
///
/// # Examples
///
/// ```
/// use vcdn_obs::histogram::bucket_index;
///
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(4), 3);
/// assert_eq!(bucket_index(u64::MAX), 64);
/// ```
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`: `0`, then `2^(i−1)`.
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_lower(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`: `0`, then `2^i − 1` (saturating at
/// `u64::MAX` for the top bucket).
///
/// # Panics
///
/// Panics if `i >= BUCKETS`.
pub fn bucket_upper(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket {i} out of range");
    if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A histogram's exported state: total count, exact sum, and per-bucket
/// counts (length [`BUCKETS`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total samples observed.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
    /// Per-bucket sample counts.
    pub buckets: Vec<u64>,
}

impl_json_struct!(HistogramSnapshot {
    count,
    sum,
    buckets,
});

impl HistogramSnapshot {
    /// Bins one value directly into the snapshot, allocating the fixed
    /// [`BUCKETS`] layout on first use. This is the single-threaded
    /// sketch path (window accumulation); the atomic path lives in
    /// [`crate::MetricsRegistry`].
    pub fn observe(&mut self, value: u64) {
        if self.buckets.len() < BUCKETS {
            self.buckets.resize(BUCKETS, 0);
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Folds `other` into `self` bucket-wise. Sketch merging is a
    /// commutative monoid (element-wise sums), which is what makes
    /// per-shard window sketches fold into engine-level ones in any
    /// order. Handles the `Default` empty-bucket form on either side.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (into, &from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
    }

    /// Mean observed value, or `0.0` with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 ≤ q ≤ 1`): the inclusive
    /// upper edge of the bucket holding the `⌈q·count⌉`-th smallest
    /// sample, or `0` with no samples.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_the_domain() {
        // Every bucket's range starts right after the previous one ends.
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i}");
            assert!(bucket_lower(i) <= bucket_upper(i));
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn values_land_inside_their_bucket() {
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i), "v={v} i={i}");
        }
    }

    #[test]
    fn mean_and_quantile_of_empty_are_zero() {
        let h = HistogramSnapshot::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper_bound(0.99), 0);
    }

    #[test]
    fn observe_and_merge_agree_with_direct_binning() {
        let mut a = HistogramSnapshot::default();
        let mut b = HistogramSnapshot::default();
        for v in [1u64, 2, 3] {
            a.observe(v);
        }
        for v in [100u64, 1000] {
            b.observe(v);
        }
        // Merging into a Default (empty-bucket) snapshot must also work.
        let mut merged = HistogramSnapshot::default();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let mut direct = HistogramSnapshot::default();
        for v in [1u64, 2, 3, 100, 1000] {
            direct.observe(v);
        }
        assert_eq!(merged, direct);
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 1106);
    }

    #[test]
    fn quantile_bound_covers_observed_samples() {
        let mut buckets = vec![0u64; BUCKETS];
        for v in [1u64, 2, 3, 100, 1000] {
            buckets[bucket_index(v)] += 1;
        }
        let h = HistogramSnapshot {
            count: 5,
            sum: 1106,
            buckets,
        };
        assert!(h.quantile_upper_bound(1.0) >= 1000);
        assert!(h.quantile_upper_bound(0.2) >= 1);
        assert!((h.mean() - 1106.0 / 5.0).abs() < 1e-12);
    }
}
