//! Observability for the vCDN replay stack: metrics, decision traces and
//! time-series telemetry, with zero external dependencies.
//!
//! The crate has three layers, matching how a replay is observed:
//!
//! * **Metrics** — a lock-free-on-the-hot-path [`MetricsRegistry`] of
//!   named counters, gauges and log-bucketed histograms behind the
//!   [`MetricsSink`] trait, with [`NoopSink`] as the free disabled mode.
//!   Policies hold a [`PolicyObs`] handle bundling their registered ids.
//! * **Decision traces** — one [`DecisionEvent`] per replayed request
//!   (verdict, per-policy cost terms, cache age, evictions) retained in a
//!   bounded [`EventRing`], explaining individual serve-vs-redirect
//!   choices against the paper's Eq. 5 / Eqs. 6–7 / Eqs. 13–14.
//! * **Time series** — a [`ReplaySampler`] snapshotting Eq. 2 efficiency,
//!   fill/redirect byte rates, occupancy and cache age per fixed interval
//!   of trace time.
//! * **Spans** — deterministic stage accounting for the sharded engine's
//!   dispatch → queue → shard-decide → evict pipeline, driven by a
//!   logical dispatch clock ([`span`]); wall-clock stage timings stay
//!   `TimingHistogram`s and never export.
//! * **Heavy hitters** — a per-shard Space-Saving top-K sketch
//!   ([`topk::SpaceSaving`]) surfacing the hottest videos with certified
//!   error bounds, deterministically tie-broken.
//! * **Health windows** — tumbling windows on the logical trace clock
//!   ([`window`]) holding per-window counter deltas and mergeable sketch
//!   snapshots in a bounded ring, with a deterministic rules-file-driven
//!   watchdog ([`detect`]) evaluating each window as it closes.
//!
//! A [`TelemetryBundle`] gathers all of it into a deterministic JSONL
//! document (see `OBSERVABILITY.md` for the schema). Everything here
//! depends only on `vcdn-types`; the replay wiring lives in `vcdn-sim`.

#![deny(missing_docs)]

mod bundle;
pub mod detect;
mod event;
pub mod histogram;
mod policy_obs;
mod registry;
mod sampler;
pub mod span;
pub mod topk;
pub mod window;

pub use bundle::{TelemetryBundle, SCHEMA};
pub use detect::{
    default_rules, parse_rules, render_alert_log, render_rules, AlertEvent, Rule, Severity,
    Watchdog, DEFAULT_RULES_TEXT,
};
pub use event::{DecisionDetail, DecisionEvent, EventRing, Verdict};
pub use histogram::HistogramSnapshot;
pub use policy_obs::PolicyObs;
pub use registry::{MetricId, MetricKind, MetricSnapshot, MetricsRegistry, MetricsSink, NoopSink};
pub use sampler::{ReplaySampler, SeriesSample};
pub use span::{DispatchSpans, ShardSpans, SpanStage, WorkerTimings};
pub use topk::{SpaceSaving, TopKEntry, TopKRecord};
pub use window::{merge_windows, WindowInput, WindowRecord, WindowRing, WindowStats};
