//! Deterministic SLO/anomaly watchdog over the window plane.
//!
//! A [`Watchdog`] evaluates a parsed rule set against each
//! [`WindowStats`] the moment it closes (hook it into
//! [`crate::WindowRing::record`]'s `on_close`), so detection is
//! streaming, bounded-memory, and a pure function of the window sequence
//! — the alert log is byte-identical at any worker count. Three detector
//! shapes cover the operator questions from the paper's production
//! setting:
//!
//! * **EWMA-baseline drift** (`drop` / `rise`): the observed metric is
//!   compared against an exponentially weighted moving average of its own
//!   history; a breach is an *absolute* deviation beyond the rule value
//!   (e.g. "efficiency fell ≥ 0.15 below its recent baseline"). The EWMA
//!   is seeded by the first non-empty window and updated after the
//!   comparison, so a sudden step change is judged against the
//!   pre-change baseline.
//! * **Absolute threshold** (`gt` / `lt`): shard skew, queue-gap p99
//!   growth, occupancy churn.
//! * **Debouncing** (`for N`): a rule fires only after `N` consecutive
//!   breaching windows, and re-arms once the metric recovers — one alert
//!   per excursion, not one per window.
//!
//! Rules are parsed from a tiny text file (`results/default.rules`,
//! embedded as [`DEFAULT_RULES_TEXT`]), never hardcoded; see
//! [`parse_rules`] for the grammar. Empty windows are skipped entirely:
//! they carry no signal, and letting them zero an EWMA would fire false
//! efficiency-drop alerts on every traffic gap.

use vcdn_types::json::{Json, ToJson};
use vcdn_types::CostModel;

use crate::window::WindowStats;

/// The default rule set shipped in-repo (`results/default.rules`).
pub const DEFAULT_RULES_TEXT: &str = include_str!("../../../results/default.rules");

/// Weight of the newest observation in the EWMA baseline
/// (`baseline ← (1−w)·baseline + w·observed`).
pub const EWMA_WEIGHT: f64 = 0.2;

/// Alert severity. `Critical` alerts make `obs_watch` exit nonzero —
/// the CI regression-gate contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a look; does not gate CI.
    Warning,
    /// An SLO breach; gates CI via `obs_watch`'s exit status.
    Critical,
}

impl Severity {
    /// Canonical lowercase name used in the rules grammar and exports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    fn parse(s: &str) -> Option<Severity> {
        match s {
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// Which per-window metric a rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricSel {
    /// Eq. 2 interval efficiency of the window.
    Efficiency,
    /// Redirected fraction of the window's requested bytes.
    RedirectRate,
    /// Upper bound on the window's queue-gap p99 (dispatch ticks).
    QueueGapP99,
    /// Chunks filled plus evicted in the window (disk churn).
    ChurnChunks,
    /// Per-window shard imbalance, `max/mean × 1000`.
    SkewX1000,
}

impl MetricSel {
    /// Canonical name used in the rules grammar.
    pub fn name(self) -> &'static str {
        match self {
            MetricSel::Efficiency => "efficiency",
            MetricSel::RedirectRate => "redirect_rate",
            MetricSel::QueueGapP99 => "queue_gap_p99",
            MetricSel::ChurnChunks => "churn_chunks",
            MetricSel::SkewX1000 => "skew_x1000",
        }
    }

    fn parse(s: &str) -> Option<MetricSel> {
        match s {
            "efficiency" => Some(MetricSel::Efficiency),
            "redirect_rate" => Some(MetricSel::RedirectRate),
            "queue_gap_p99" => Some(MetricSel::QueueGapP99),
            "churn_chunks" => Some(MetricSel::ChurnChunks),
            "skew_x1000" => Some(MetricSel::SkewX1000),
            _ => None,
        }
    }

    /// The metric's value for one window, under `costs` and `streams`
    /// request streams (shard count; 1 for the unsharded replayer).
    pub fn value(self, w: &WindowStats, costs: CostModel, streams: u64) -> f64 {
        match self {
            MetricSel::Efficiency => w.efficiency(costs),
            MetricSel::RedirectRate => w.redirect_rate(),
            MetricSel::QueueGapP99 => w.queue_gap.quantile_upper_bound(0.99) as f64,
            MetricSel::ChurnChunks => w.churn_chunks() as f64,
            MetricSel::SkewX1000 => w.skew_x1000(streams) as f64,
        }
    }
}

/// How a rule compares the observed metric with its baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOp {
    /// Breach when observed < EWMA baseline − value.
    DropBelowEwma,
    /// Breach when observed > EWMA baseline + value.
    RiseAboveEwma,
    /// Breach when observed > value (absolute threshold).
    Gt,
    /// Breach when observed < value (absolute threshold).
    Lt,
}

impl RuleOp {
    /// Canonical name used in the rules grammar.
    pub fn name(self) -> &'static str {
        match self {
            RuleOp::DropBelowEwma => "drop",
            RuleOp::RiseAboveEwma => "rise",
            RuleOp::Gt => "gt",
            RuleOp::Lt => "lt",
        }
    }

    fn parse(s: &str) -> Option<RuleOp> {
        match s {
            "drop" => Some(RuleOp::DropBelowEwma),
            "rise" => Some(RuleOp::RiseAboveEwma),
            "gt" => Some(RuleOp::Gt),
            "lt" => Some(RuleOp::Lt),
            _ => None,
        }
    }

    /// Whether the op tracks an EWMA baseline (drift detector) rather
    /// than a fixed threshold.
    pub fn is_drift(self) -> bool {
        matches!(self, RuleOp::DropBelowEwma | RuleOp::RiseAboveEwma)
    }
}

/// One parsed watchdog rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name, reported verbatim in alerts (e.g. `efficiency-drop`).
    pub name: String,
    /// Alert severity when the rule fires.
    pub severity: Severity,
    /// The per-window metric watched.
    pub metric: MetricSel,
    /// Comparison shape.
    pub op: RuleOp,
    /// Threshold (for `gt`/`lt`) or absolute deviation vs the EWMA
    /// baseline (for `drop`/`rise`).
    pub value: f64,
    /// Debounce: fire only after this many consecutive breaching
    /// windows (≥ 1).
    pub consecutive: u32,
}

/// Parses a rules file. Grammar, one rule per line (`#` comments,
/// blank lines ignored):
///
/// ```text
/// rule <name> <severity> <metric> <op> <value> [for <N>]
/// ```
///
/// with `severity ∈ {warning, critical}`, `metric ∈ {efficiency,
/// redirect_rate, queue_gap_p99, churn_chunks, skew_x1000}` and
/// `op ∈ {drop, rise, gt, lt}`.
///
/// # Errors
///
/// Returns a message naming the offending line on any syntax error,
/// unknown keyword, non-finite value, `for 0`, or duplicate rule name.
/// An empty (or comment-only) file parses to an empty rule set.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("rules line {}: {msg}: `{line}`", lineno + 1);
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks[0] != "rule" {
            return Err(err("expected `rule`"));
        }
        if toks.len() != 6 && toks.len() != 8 {
            return Err(err(
                "expected `rule <name> <severity> <metric> <op> <value> [for <N>]`",
            ));
        }
        let severity = Severity::parse(toks[2]).ok_or_else(|| err("unknown severity"))?;
        let metric = MetricSel::parse(toks[3]).ok_or_else(|| err("unknown metric"))?;
        let op = RuleOp::parse(toks[4]).ok_or_else(|| err("unknown op"))?;
        let value: f64 = toks[5].parse().map_err(|_| err("bad value"))?;
        if !value.is_finite() {
            return Err(err("value must be finite"));
        }
        let consecutive = if toks.len() == 8 {
            if toks[6] != "for" {
                return Err(err("expected `for <N>`"));
            }
            let n: u32 = toks[7].parse().map_err(|_| err("bad window count"))?;
            if n == 0 {
                return Err(err("`for` count must be >= 1"));
            }
            n
        } else {
            1
        };
        // Rule names key alert streams and re-arm state downstream, so a
        // duplicate would silently merge two excursion trackers. Reject it
        // here with the offending line rather than last-wins later.
        if let Some(prev) = rules.iter().position(|r: &Rule| r.name == toks[1]) {
            return Err(err(&format!(
                "duplicate rule name `{}` (first defined by rule {})",
                toks[1],
                prev + 1
            )));
        }
        rules.push(Rule {
            name: toks[1].to_string(),
            severity,
            metric,
            op,
            value,
            consecutive,
        });
    }
    Ok(rules)
}

/// Renders rules back to canonical grammar text (always including the
/// `for N` clause), such that `parse_rules(render_rules(r)) == r` — the
/// round-trip `obs_check` validates.
pub fn render_rules(rules: &[Rule]) -> String {
    let mut out = String::new();
    for r in rules {
        out.push_str(&format!(
            "rule {} {} {} {} {} for {}\n",
            r.name,
            r.severity.name(),
            r.metric.name(),
            r.op.name(),
            r.value,
            r.consecutive
        ));
    }
    out
}

/// The default rule set, parsed from the embedded
/// `results/default.rules`.
///
/// # Panics
///
/// Panics if the in-repo rules file fails to parse (a build-time asset
/// defect; covered by a unit test).
pub fn default_rules() -> Vec<Rule> {
    parse_rules(DEFAULT_RULES_TEXT).expect("in-repo default.rules must parse")
}

/// One watchdog firing: which rule breached, on which window, and the
/// baseline/observed pair that crossed. Serialises as
/// `{"type":"alert",…}` in the telemetry bundle.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// Index of the window that completed the breach.
    pub window: u64,
    /// Name of the rule that fired.
    pub rule: String,
    /// Severity copied from the rule.
    pub severity: Severity,
    /// The comparison baseline: the rule threshold for `gt`/`lt`, the
    /// EWMA at comparison time for `drop`/`rise`.
    pub baseline: f64,
    /// The observed metric value in the breaching window.
    pub observed: f64,
}

impl ToJson for AlertEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("alert".into())),
            ("window".into(), Json::Int(self.window as i128)),
            ("rule".into(), Json::Str(self.rule.clone())),
            ("severity".into(), Json::Str(self.severity.name().into())),
            ("baseline".into(), Json::Float(self.baseline)),
            ("observed".into(), Json::Float(self.observed)),
        ])
    }
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    ewma: Option<f64>,
    streak: u32,
}

/// Streaming rule evaluator: feed it every closed window in order and
/// collect the deterministic alert log.
#[derive(Debug, Clone)]
pub struct Watchdog {
    rules: Vec<Rule>,
    costs: CostModel,
    streams: u64,
    state: Vec<RuleState>,
    alerts: Vec<AlertEvent>,
}

impl Watchdog {
    /// A watchdog over `rules`, evaluating metrics under `costs` with
    /// `streams` request streams (shard count; 1 for the replayer).
    pub fn new(rules: Vec<Rule>, costs: CostModel, streams: u64) -> Watchdog {
        let state = vec![RuleState::default(); rules.len()];
        Watchdog {
            rules,
            costs,
            streams,
            state,
            alerts: Vec::new(),
        }
    }

    /// Evaluates every rule against one closed window. Empty windows
    /// are skipped: they carry no signal and must not poison EWMAs.
    pub fn on_window(&mut self, w: &WindowStats) {
        if w.is_empty() {
            return;
        }
        for (rule, st) in self.rules.iter().zip(self.state.iter_mut()) {
            let x = rule.metric.value(w, self.costs, self.streams);
            let (breach, baseline) = match rule.op {
                RuleOp::Gt => (x > rule.value, rule.value),
                RuleOp::Lt => (x < rule.value, rule.value),
                RuleOp::DropBelowEwma => match st.ewma {
                    None => (false, x),
                    Some(b) => (x < b - rule.value, b),
                },
                RuleOp::RiseAboveEwma => match st.ewma {
                    None => (false, x),
                    Some(b) => (x > b + rule.value, b),
                },
            };
            if rule.op.is_drift() {
                st.ewma = Some(match st.ewma {
                    None => x,
                    Some(b) => b * (1.0 - EWMA_WEIGHT) + x * EWMA_WEIGHT,
                });
            }
            if breach {
                st.streak += 1;
                if st.streak == rule.consecutive {
                    self.alerts.push(AlertEvent {
                        window: w.index,
                        rule: rule.name.clone(),
                        severity: rule.severity,
                        baseline,
                        observed: x,
                    });
                }
            } else {
                st.streak = 0;
            }
        }
    }

    /// Alerts emitted so far, in window order.
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// Consumes the watchdog, returning its alert log.
    pub fn into_alerts(self) -> Vec<AlertEvent> {
        self.alerts
    }

    /// Batch evaluation: runs a fresh watchdog over an already-merged
    /// window sequence (the engine path, where windows are folded across
    /// shards at report time).
    pub fn run(
        rules: &[Rule],
        costs: CostModel,
        streams: u64,
        windows: &[WindowStats],
    ) -> Vec<AlertEvent> {
        let mut dog = Watchdog::new(rules.to_vec(), costs, streams);
        for w in windows {
            dog.on_window(w);
        }
        dog.into_alerts()
    }
}

/// Renders an alert log as fixed-format text lines — the form pinned by
/// the flash-crowd golden (`crates/bench/goldens/`).
pub fn render_alert_log(alerts: &[AlertEvent]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&format!(
            "window {:>4} [{}] {}: observed {:.6} baseline {:.6}\n",
            a.window,
            a.severity.name(),
            a.rule,
            a.observed,
            a.baseline
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(index: u64, hit: u64, redirect: u64) -> WindowStats {
        let mut w = WindowStats::empty(index);
        w.traffic.record_hit(hit);
        w.traffic.record_redirect(redirect);
        if redirect > 0 {
            w.traffic.redirected_requests += 1;
        }
        if hit > 0 {
            w.traffic.served_requests += 1;
        }
        w.max_stream_requests = w.traffic.total_requests();
        w
    }

    fn one_rule(op: RuleOp, metric: MetricSel, value: f64, consecutive: u32) -> Vec<Rule> {
        vec![Rule {
            name: "t".into(),
            severity: Severity::Critical,
            metric,
            op,
            value,
            consecutive,
        }]
    }

    #[test]
    fn default_rules_parse() {
        let rules = default_rules();
        assert!(rules.len() >= 4);
        assert!(rules.iter().any(|r| r.name == "efficiency-drop"));
        assert!(rules.iter().any(|r| r.name == "redirect-spike"));
    }

    #[test]
    fn rules_round_trip_through_render() {
        let rules = default_rules();
        let rendered = render_rules(&rules);
        assert_eq!(parse_rules(&rendered).unwrap(), rules);
    }

    #[test]
    fn parse_errors_name_the_line() {
        for bad in [
            "rule",
            "nope x",
            "rule a sev efficiency gt 1",
            "rule a warning nope gt 1",
            "rule a warning efficiency nope 1",
            "rule a warning efficiency gt abc",
            "rule a warning efficiency gt 1 for 0",
            "rule a warning efficiency gt 1 until 3",
        ] {
            let text = format!("# leading comment\n{bad}\n");
            let err = parse_rules(&text).unwrap_err();
            assert!(err.contains("line 2"), "{bad} -> {err}");
        }
        // Comments and blanks parse to nothing.
        assert_eq!(parse_rules("# only\n\n  \n").unwrap(), vec![]);
    }

    #[test]
    fn empty_rules_file_parses_to_no_rules() {
        assert_eq!(parse_rules("").unwrap(), vec![]);
        assert_eq!(parse_rules("\n").unwrap(), vec![]);
    }

    #[test]
    fn duplicate_rule_names_are_rejected_with_the_line() {
        let text = "rule a warning efficiency gt 1\n\
                    rule b warning efficiency gt 2\n\
                    rule a critical redirect_rate lt 3\n";
        let err = parse_rules(text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("duplicate rule name `a`"), "{err}");
        assert!(err.contains("first defined by rule 1"), "{err}");
        // Distinct names with otherwise identical bodies stay legal.
        let ok = "rule a warning efficiency gt 1\nrule b warning efficiency gt 1\n";
        assert_eq!(parse_rules(ok).unwrap().len(), 2);
    }

    #[test]
    fn threshold_rule_fires_and_debounces() {
        let rules = one_rule(RuleOp::RiseAboveEwma, MetricSel::RedirectRate, 0.3, 2);
        // Baseline windows ~0 redirect rate, then a sustained spike.
        let ws: Vec<WindowStats> = vec![
            window(0, 100, 0),
            window(1, 100, 0),
            window(2, 10, 90), // breach 1
            window(3, 10, 90), // breach 2 -> fires here
            window(4, 10, 90), // still breaching: no second alert
            window(5, 100, 0), // recovery re-arms
        ];
        let alerts = Watchdog::run(&rules, CostModel::balanced(), 1, &ws);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 3);
        assert_eq!(alerts[0].rule, "t");
        assert!(alerts[0].observed > 0.8);
        assert!(alerts[0].baseline < 0.2);
    }

    #[test]
    fn efficiency_drop_judged_against_pre_change_baseline() {
        let rules = one_rule(RuleOp::DropBelowEwma, MetricSel::Efficiency, 0.15, 1);
        let ws: Vec<WindowStats> = vec![
            window(0, 100, 0), // seeds EWMA at 1.0 (no breach possible)
            window(1, 100, 0),
            window(2, 20, 80), // efficiency craters -> fires
        ];
        let alerts = Watchdog::run(&rules, CostModel::balanced(), 1, &ws);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window, 2);
        assert!((alerts[0].baseline - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_windows_do_not_poison_the_ewma() {
        let rules = one_rule(RuleOp::DropBelowEwma, MetricSel::Efficiency, 0.15, 1);
        let ws: Vec<WindowStats> = vec![
            window(0, 100, 0),
            WindowStats::empty(1), // skipped: no false drop to 0.0
            window(2, 100, 0),
        ];
        let alerts = Watchdog::run(&rules, CostModel::balanced(), 1, &ws);
        assert!(alerts.is_empty());
    }

    #[test]
    fn absolute_threshold_rules_use_rule_value_as_baseline() {
        let rules = one_rule(RuleOp::Gt, MetricSel::ChurnChunks, 50.0, 1);
        let mut w = window(0, 100, 0);
        w.filled_chunks = 40;
        w.evicted_chunks = 30;
        let alerts = Watchdog::run(&rules, CostModel::balanced(), 1, &[w]);
        assert_eq!(alerts.len(), 1);
        assert!((alerts[0].baseline - 50.0).abs() < 1e-9);
        assert!((alerts[0].observed - 70.0).abs() < 1e-9);
    }

    #[test]
    fn alert_json_and_log_shapes() {
        let a = AlertEvent {
            window: 7,
            rule: "efficiency-drop".into(),
            severity: Severity::Critical,
            baseline: 0.75,
            observed: 0.41,
        };
        let j = a.to_json().to_string();
        let parsed = vcdn_types::json::parse(&j).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("alert"));
        assert_eq!(parsed.get("window"), Some(&Json::Int(7)));
        assert_eq!(
            parsed.get("severity").and_then(Json::as_str),
            Some("critical")
        );
        let log = render_alert_log(std::slice::from_ref(&a));
        assert_eq!(
            log,
            "window    7 [critical] efficiency-drop: observed 0.410000 baseline 0.750000\n"
        );
    }
}
