//! The per-policy instrumentation handle.
//!
//! A [`PolicyObs`] bundles a shared [`MetricsSink`] with the
//! [`MetricId`]s one cache instance registered at attach time, so the
//! policy's hot path never touches the registry's name table. Detached
//! policies hold the no-op handle; every recording method first checks
//! the cached `enabled` flag, so the disabled cost is one predictable
//! branch per call site and zero allocation.
//!
//! Metric names are scoped by an attach-time prefix (e.g. `xlru.` or
//! `s03.cafe.`), which is how several policies — or several shard
//! servers running the same policy — share one registry without
//! colliding.

use std::sync::Arc;

use vcdn_types::Decision;

use crate::registry::{MetricId, MetricKind, MetricsSink, NoopSink};

/// A policy's registered metric handles plus the sink they live in.
#[derive(Clone)]
pub struct PolicyObs {
    enabled: bool,
    sink: Arc<dyn MetricsSink>,
    serve_requests: MetricId,
    redirect_requests: MetricId,
    hit_chunks: MetricId,
    fill_chunks: MetricId,
    evicted_chunks: MetricId,
    fill_per_request: MetricId,
    eviction_batch: MetricId,
    occupancy: MetricId,
    decision_latency_ns: MetricId,
}

impl std::fmt::Debug for PolicyObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyObs")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl PolicyObs {
    /// A detached handle writing to the shared [`NoopSink`]. This is what
    /// every policy starts with; replays that don't observe never pay more
    /// than the `enabled` check.
    pub fn noop() -> PolicyObs {
        let sink: Arc<dyn MetricsSink> = NoopSink::shared();
        PolicyObs {
            enabled: false,
            serve_requests: MetricId::NOOP,
            redirect_requests: MetricId::NOOP,
            hit_chunks: MetricId::NOOP,
            fill_chunks: MetricId::NOOP,
            evicted_chunks: MetricId::NOOP,
            fill_per_request: MetricId::NOOP,
            eviction_batch: MetricId::NOOP,
            occupancy: MetricId::NOOP,
            decision_latency_ns: MetricId::NOOP,
            sink,
        }
    }

    /// Attaches to `sink`, registering this policy's metric set under
    /// `scope` (names come out as `{scope}.serve_requests_total` etc.).
    /// Registration is the only non-hot-path work; keep the handle and
    /// reuse it for the whole replay.
    pub fn attach(sink: Arc<dyn MetricsSink>, scope: &str) -> PolicyObs {
        let name = |metric: &str| format!("{scope}.{metric}");
        PolicyObs {
            enabled: sink.enabled(),
            serve_requests: sink.register(&name("serve_requests_total"), MetricKind::Counter),
            redirect_requests: sink.register(&name("redirect_requests_total"), MetricKind::Counter),
            hit_chunks: sink.register(&name("hit_chunks_total"), MetricKind::Counter),
            fill_chunks: sink.register(&name("fill_chunks_total"), MetricKind::Counter),
            evicted_chunks: sink.register(&name("evicted_chunks_total"), MetricKind::Counter),
            fill_per_request: sink
                .register(&name("fill_chunks_per_request"), MetricKind::Histogram),
            eviction_batch: sink.register(&name("eviction_batch_chunks"), MetricKind::Histogram),
            occupancy: sink.register(&name("occupancy_chunks"), MetricKind::Gauge),
            decision_latency_ns: sink
                .register(&name("decision_latency_ns"), MetricKind::TimingHistogram),
            sink,
        }
    }

    /// Whether recording does anything. Instrumented code gates optional
    /// bookkeeping (e.g. reading the clock for the latency histogram) on
    /// this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records a serve decision with its hit/fill chunk split.
    #[inline]
    pub fn record_serve(&self, hit_chunks: u64, fill_chunks: u64) {
        if !self.enabled {
            return;
        }
        self.sink.counter_add(self.serve_requests, 1);
        self.sink.counter_add(self.hit_chunks, hit_chunks);
        self.sink.counter_add(self.fill_chunks, fill_chunks);
        self.sink.observe(self.fill_per_request, fill_chunks);
    }

    /// Records a redirect decision.
    #[inline]
    pub fn record_redirect(&self) {
        if !self.enabled {
            return;
        }
        self.sink.counter_add(self.redirect_requests, 1);
    }

    /// Records one eviction batch of `chunks` chunks (call once per
    /// cleanup pass that evicted anything).
    #[inline]
    pub fn record_eviction_batch(&self, chunks: u64) {
        if !self.enabled {
            return;
        }
        self.sink.counter_add(self.evicted_chunks, chunks);
        self.sink.observe(self.eviction_batch, chunks);
    }

    /// Updates the disk-occupancy gauge (chunks resident after the
    /// current decision).
    #[inline]
    pub fn set_occupancy(&self, chunks: u64) {
        if !self.enabled {
            return;
        }
        self.sink.gauge_set(self.occupancy, chunks);
    }

    /// Records a full decision outcome — verdict counters, hit/fill
    /// chunks, the eviction batch if any — plus the resulting disk
    /// occupancy. The one call a policy makes per request.
    #[inline]
    pub fn record_decision(&self, decision: &Decision, occupancy_chunks: u64) {
        if !self.enabled {
            return;
        }
        match decision {
            Decision::Serve(o) => {
                self.record_serve(o.hit_chunks, o.filled_chunks);
                if !o.evicted.is_empty() {
                    self.record_eviction_batch(o.evicted.len() as u64);
                }
            }
            Decision::Redirect => self.record_redirect(),
        }
        self.set_occupancy(occupancy_chunks);
    }

    /// Records one decision's wall-clock latency. The metric is a
    /// [`MetricKind::TimingHistogram`], so deterministic exports skip it.
    #[inline]
    pub fn record_decision_latency_ns(&self, nanos: u64) {
        if !self.enabled {
            return;
        }
        self.sink.observe(self.decision_latency_ns, nanos);
    }
}

impl Default for PolicyObs {
    fn default() -> Self {
        PolicyObs::noop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn noop_handle_is_disabled_and_inert() {
        let obs = PolicyObs::noop();
        assert!(!obs.enabled());
        obs.record_serve(4, 2);
        obs.record_redirect();
        obs.record_eviction_batch(10);
        obs.set_occupancy(5);
        obs.record_decision_latency_ns(123);
    }

    #[test]
    fn attached_handle_routes_to_scoped_names() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = PolicyObs::attach(reg.clone(), "xlru");
        assert!(obs.enabled());
        obs.record_serve(3, 1);
        obs.record_serve(0, 4);
        obs.record_redirect();
        obs.record_eviction_batch(7);
        obs.set_occupancy(42);

        let snap = reg.snapshot(true);
        let get = |name: &str| {
            snap.iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(get("xlru.serve_requests_total").value, 2);
        assert_eq!(get("xlru.redirect_requests_total").value, 1);
        assert_eq!(get("xlru.hit_chunks_total").value, 3);
        assert_eq!(get("xlru.fill_chunks_total").value, 5);
        assert_eq!(get("xlru.evicted_chunks_total").value, 7);
        assert_eq!(get("xlru.occupancy_chunks").value, 42);
        let fills = get("xlru.fill_chunks_per_request");
        assert_eq!(fills.value, 2);
        assert_eq!(fills.sum, 5);
    }

    #[test]
    fn two_scopes_share_one_registry_without_collisions() {
        let reg = Arc::new(MetricsRegistry::new());
        let a = PolicyObs::attach(reg.clone(), "s00.cafe");
        let b = PolicyObs::attach(reg.clone(), "s01.cafe");
        a.record_redirect();
        b.record_serve(1, 0);
        let snap = reg.snapshot(true);
        let get = |name: &str| snap.iter().find(|m| m.name == name).unwrap().value;
        assert_eq!(get("s00.cafe.redirect_requests_total"), 1);
        assert_eq!(get("s00.cafe.serve_requests_total"), 0);
        assert_eq!(get("s01.cafe.serve_requests_total"), 1);
    }

    #[test]
    fn timing_metric_is_hidden_from_deterministic_snapshots() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = PolicyObs::attach(reg.clone(), "p");
        obs.record_decision_latency_ns(1_000);
        assert!(reg
            .snapshot(true)
            .iter()
            .all(|m| m.name != "p.decision_latency_ns"));
        assert!(reg
            .snapshot(false)
            .iter()
            .any(|m| m.name == "p.decision_latency_ns" && m.value == 1));
    }
}
