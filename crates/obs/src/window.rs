//! Tumbling telemetry windows on the logical trace clock, with mergeable
//! per-window sketches in a bounded ring.
//!
//! The sampler ([`crate::ReplaySampler`]) answers "what did the whole run
//! look like over time"; the *window plane* answers the operator's
//! question: "is the cache healthy **right now**" — per-window traffic
//! deltas, Eq. 2 interval efficiency, and log-bucketed sketch snapshots
//! that a watchdog ([`crate::detect`]) can evaluate the moment a window
//! closes. Three properties drive the design:
//!
//! * **Logical clock.** Windows tumble on *trace time* (default one hour
//!   of trace time), never wall-clock, so the whole plane is a pure
//!   function of the input stream — byte-identical across machines,
//!   threads and worker counts.
//! * **Mergeable.** Every field of a [`WindowStats`] is a commutative
//!   monoid under [`WindowStats::merge`] (sums for counters and
//!   bucket-wise sums for the log-bucketed [`HistogramSnapshot`] sketches,
//!   `max` for the per-stream peak), so per-shard windows fold into
//!   engine-level windows associatively and order-invariantly — the
//!   sharded engine merges at any worker count and gets the same bytes.
//! * **Bounded.** A [`WindowRing`] retains only the last `retain` closed
//!   windows; a month-long replay holds ~720 hourly windows and the ring
//!   never grows past its bound (evictions are counted in
//!   [`WindowRing::dropped`]). Detectors run *at close time*, before a
//!   window can be evicted, so bounded memory never loses an alert.
//!
//! Conservation invariant (pinned by `prop_window.rs` and `obs_check`):
//! the sum of all window traffic deltas — closed, dropped and open —
//! equals the ring's cumulative [`TrafficCounter`].

use std::collections::VecDeque;

use vcdn_types::json::{Json, ToJson};
use vcdn_types::{CostModel, TrafficCounter};

use crate::histogram::HistogramSnapshot;

/// One tumbling window's mergeable payload: counter deltas plus sketch
/// snapshots, all pure functions of the requests that fell inside the
/// window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WindowStats {
    /// Window index: the window covers trace time
    /// `[index·width, (index+1)·width)`.
    pub index: u64,
    /// Traffic served within this window alone (the per-window delta).
    pub traffic: TrafficCounter,
    /// Chunks written to disk (cache fills) within the window.
    pub filled_chunks: u64,
    /// Chunks evicted from disk within the window.
    pub evicted_chunks: u64,
    /// The largest single-stream request count merged into this window:
    /// for a one-producer ring it equals the window's own request count;
    /// merged across shards it is the hottest shard's count (merge takes
    /// the `max`), which makes per-window skew computable after the fold.
    pub max_stream_requests: u64,
    /// Log-bucketed sketch of the logical queue gap (dispatch ticks
    /// between consecutive arrivals at this stream); empty for unsharded
    /// replays.
    pub queue_gap: HistogramSnapshot,
    /// Log-bucketed sketch of request sizes in chunks.
    pub request_chunks: HistogramSnapshot,
}

impl WindowStats {
    /// An empty window at `index`.
    pub fn empty(index: u64) -> WindowStats {
        WindowStats {
            index,
            ..WindowStats::default()
        }
    }

    /// Whether the window saw no traffic and no sketch observations.
    pub fn is_empty(&self) -> bool {
        self.traffic.total_requests() == 0
            && self.filled_chunks == 0
            && self.evicted_chunks == 0
            && self.queue_gap.count == 0
            && self.request_chunks.count == 0
    }

    /// Folds `other` into `self`. Every field is a commutative monoid
    /// (sums, bucket-wise histogram sums, `max` for the stream peak), so
    /// merging is associative and order-invariant — the property
    /// `prop_window.rs` pins.
    ///
    /// # Panics
    ///
    /// Panics if the window indices differ (merging is per-index).
    pub fn merge(&mut self, other: &WindowStats) {
        assert_eq!(
            self.index, other.index,
            "window merge requires equal indices"
        );
        self.traffic += other.traffic;
        self.filled_chunks += other.filled_chunks;
        self.evicted_chunks += other.evicted_chunks;
        self.max_stream_requests = self.max_stream_requests.max(other.max_stream_requests);
        self.queue_gap.merge_from(&other.queue_gap);
        self.request_chunks.merge_from(&other.request_chunks);
    }

    /// Eq. 2 efficiency over this window's traffic alone (`0.0` for an
    /// empty window — the zero-request guard, not `NaN`).
    pub fn efficiency(&self, costs: CostModel) -> f64 {
        self.traffic.efficiency(costs)
    }

    /// Fraction of the window's requested bytes that were redirected
    /// (`0.0` for an empty window).
    pub fn redirect_rate(&self) -> f64 {
        let total = self.traffic.requested_bytes();
        if total == 0 {
            0.0
        } else {
            self.traffic.redirect_bytes as f64 / total as f64
        }
    }

    /// Disk churn within the window: chunks written plus chunks evicted —
    /// the "how hard is the disk working for its hits" signal the
    /// occupancy-churn watchdog rule thresholds.
    pub fn churn_chunks(&self) -> u64 {
        self.filled_chunks + self.evicted_chunks
    }

    /// Shard-imbalance within the window: `max/mean × 1000` over `streams`
    /// request streams (1000 = perfectly balanced; meaningful after an
    /// engine-level merge, and identically 1000 for a single stream).
    /// Returns 1000 for an empty window.
    pub fn skew_x1000(&self, streams: u64) -> u64 {
        let total = self.traffic.total_requests();
        if total == 0 || streams == 0 {
            1000
        } else {
            (self.max_stream_requests as u128 * 1000 * streams as u128 / total as u128) as u64
        }
    }
}

/// One exported window line of a `vcdn-telemetry/1` bundle: a
/// [`WindowStats`] flattened against a cost model, with the sketches
/// reduced to deterministic summary statistics. Serialises as
/// `{"type":"window","index":…,…}`; the window width lives in the
/// bundle's meta line (`window_ms`).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRecord {
    /// Window index (start = `index · window_ms`).
    pub index: u64,
    /// Bytes served from cache within the window.
    pub hit_bytes: u64,
    /// Bytes cache-filled within the window.
    pub fill_bytes: u64,
    /// Bytes redirected within the window.
    pub redirect_bytes: u64,
    /// Requests served within the window.
    pub served_requests: u64,
    /// Requests redirected within the window.
    pub redirected_requests: u64,
    /// Eq. 2 interval efficiency (0.0 for an empty window).
    pub efficiency: f64,
    /// Redirected fraction of requested bytes (0.0 for an empty window).
    pub redirect_rate: f64,
    /// Chunks filled within the window.
    pub filled_chunks: u64,
    /// Chunks evicted within the window.
    pub evicted_chunks: u64,
    /// Hottest single stream's request count (see
    /// [`WindowStats::max_stream_requests`]).
    pub max_stream_requests: u64,
    /// Queue-gap sketch sample count (0 for unsharded replays).
    pub queue_gap_count: u64,
    /// Queue-gap sketch sample sum.
    pub queue_gap_sum: u64,
    /// Upper bound on the queue-gap p99 (log-bucket edge).
    pub queue_gap_p99: u64,
    /// Upper bound on the request-size p99, in chunks.
    pub request_chunks_p99: u64,
}

impl WindowRecord {
    /// Flattens a window against `costs` into its export form.
    pub fn from_stats(w: &WindowStats, costs: CostModel) -> WindowRecord {
        WindowRecord {
            index: w.index,
            hit_bytes: w.traffic.hit_bytes,
            fill_bytes: w.traffic.fill_bytes,
            redirect_bytes: w.traffic.redirect_bytes,
            served_requests: w.traffic.served_requests,
            redirected_requests: w.traffic.redirected_requests,
            efficiency: w.efficiency(costs),
            redirect_rate: w.redirect_rate(),
            filled_chunks: w.filled_chunks,
            evicted_chunks: w.evicted_chunks,
            max_stream_requests: w.max_stream_requests,
            queue_gap_count: w.queue_gap.count,
            queue_gap_sum: w.queue_gap.sum,
            queue_gap_p99: w.queue_gap.quantile_upper_bound(0.99),
            request_chunks_p99: w.request_chunks.quantile_upper_bound(0.99),
        }
    }
}

impl ToJson for WindowRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("window".into())),
            ("index".into(), Json::Int(self.index as i128)),
            ("hit_bytes".into(), Json::Int(self.hit_bytes as i128)),
            ("fill_bytes".into(), Json::Int(self.fill_bytes as i128)),
            (
                "redirect_bytes".into(),
                Json::Int(self.redirect_bytes as i128),
            ),
            (
                "served_requests".into(),
                Json::Int(self.served_requests as i128),
            ),
            (
                "redirected_requests".into(),
                Json::Int(self.redirected_requests as i128),
            ),
            ("efficiency".into(), Json::Float(self.efficiency)),
            ("redirect_rate".into(), Json::Float(self.redirect_rate)),
            (
                "filled_chunks".into(),
                Json::Int(self.filled_chunks as i128),
            ),
            (
                "evicted_chunks".into(),
                Json::Int(self.evicted_chunks as i128),
            ),
            (
                "max_stream_requests".into(),
                Json::Int(self.max_stream_requests as i128),
            ),
            (
                "queue_gap_count".into(),
                Json::Int(self.queue_gap_count as i128),
            ),
            (
                "queue_gap_sum".into(),
                Json::Int(self.queue_gap_sum as i128),
            ),
            (
                "queue_gap_p99".into(),
                Json::Int(self.queue_gap_p99 as i128),
            ),
            (
                "request_chunks_p99".into(),
                Json::Int(self.request_chunks_p99 as i128),
            ),
        ])
    }
}

/// One decided request's contribution to the open window.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowInput {
    /// The request's trace time in ms (non-decreasing across records).
    pub t_ms: u64,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Bytes cache-filled.
    pub fill_bytes: u64,
    /// Bytes redirected (a nonzero value counts the request as
    /// redirected; zero counts it as served, matching the replay
    /// accounting).
    pub redirect_bytes: u64,
    /// Chunks written to disk by this decision.
    pub filled_chunks: u64,
    /// Chunks evicted by this decision.
    pub evicted_chunks: u64,
    /// Request size in chunks (fed to the request-size sketch).
    pub request_chunks: u64,
    /// Logical queue gap in dispatch ticks, when a dispatcher exists
    /// (`None` for unsharded replays — the gap sketch stays empty).
    pub queue_gap: Option<u64>,
}

/// Accumulates per-request deltas into tumbling windows of trace time,
/// retaining a bounded ring of closed windows.
///
/// Feed every decided request through [`WindowRing::record`]; each window
/// that closes is handed to the `on_close` callback *before* entering the
/// ring (this is where a [`crate::detect::Watchdog`] evaluates it), so
/// detection is streaming and unaffected by ring eviction. Call
/// [`WindowRing::finish`] after the run to flush the open window, or
/// [`WindowRing::snapshot_windows`] for a non-destructive view (closed
/// windows plus the open one) — what the sharded engine merges at report
/// time.
///
/// # Examples
///
/// ```
/// use vcdn_obs::window::{WindowInput, WindowRing};
///
/// let mut ring = WindowRing::new(1_000, 16);
/// let mut closed = Vec::new();
/// for t in [100u64, 2_500] {
///     ring.record(
///         &WindowInput {
///             t_ms: t,
///             hit_bytes: 80,
///             request_chunks: 1,
///             ..WindowInput::default()
///         },
///         &mut |w| closed.push(w.clone()),
///     );
/// }
/// ring.finish(&mut |w| closed.push(w.clone()));
/// // Windows [0,1s) [1s,2s) [2s,3s): the middle one is empty.
/// assert_eq!(closed.len(), 3);
/// assert!(closed[1].is_empty());
/// assert_eq!(closed[2].traffic.hit_bytes, 80);
/// ```
#[derive(Debug, Clone)]
pub struct WindowRing {
    width_ms: u64,
    retain: usize,
    open: WindowStats,
    open_dirty: bool,
    closed: VecDeque<WindowStats>,
    dropped: u64,
    cum: TrafficCounter,
    saw_request: bool,
}

impl WindowRing {
    /// Creates a ring of `width_ms`-wide tumbling windows retaining the
    /// last `retain` closed windows.
    ///
    /// # Panics
    ///
    /// Panics if `width_ms == 0` or `retain == 0`.
    pub fn new(width_ms: u64, retain: usize) -> WindowRing {
        assert!(width_ms > 0, "window width must be > 0");
        assert!(retain > 0, "window ring must retain at least one window");
        WindowRing {
            width_ms,
            retain,
            open: WindowStats::empty(0),
            open_dirty: false,
            closed: VecDeque::new(),
            dropped: 0,
            cum: TrafficCounter::default(),
            saw_request: false,
        }
    }

    /// The configured window width (ms of trace time).
    pub fn width_ms(&self) -> u64 {
        self.width_ms
    }

    /// The ring bound: closed windows retained.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Closed windows evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Cumulative traffic over every record fed to the ring — the
    /// conservation target: it equals the sum of all window deltas
    /// (closed, dropped and open).
    pub fn cum(&self) -> TrafficCounter {
        self.cum
    }

    /// The retained closed windows, oldest first.
    pub fn closed_windows(&self) -> impl Iterator<Item = &WindowStats> {
        self.closed.iter()
    }

    fn close_open(&mut self, on_close: &mut dyn FnMut(&WindowStats)) {
        let next = WindowStats::empty(self.open.index + 1);
        let done = std::mem::replace(&mut self.open, next);
        on_close(&done);
        self.closed.push_back(done);
        if self.closed.len() > self.retain {
            self.closed.pop_front();
            self.dropped += 1;
        }
        self.open_dirty = false;
    }

    /// Records one decided request, closing (and reporting via `on_close`)
    /// every window that ended before `input.t_ms` — including empty ones,
    /// so the window grid is complete and evenly spaced.
    ///
    /// # Panics
    ///
    /// Panics if `input.t_ms` falls before the open window's start (trace
    /// time is non-decreasing).
    pub fn record(&mut self, input: &WindowInput, on_close: &mut dyn FnMut(&WindowStats)) {
        let open_start = self.open.index.saturating_mul(self.width_ms);
        assert!(
            input.t_ms >= open_start,
            "window ring fed out of order: t={}ms before window start {}ms",
            input.t_ms,
            open_start
        );
        self.saw_request = true;
        while input.t_ms >= (self.open.index + 1).saturating_mul(self.width_ms) {
            self.close_open(on_close);
        }
        let w = &mut self.open;
        w.traffic.record_hit(input.hit_bytes);
        w.traffic.record_fill(input.fill_bytes);
        w.traffic.record_redirect(input.redirect_bytes);
        self.cum.record_hit(input.hit_bytes);
        self.cum.record_fill(input.fill_bytes);
        self.cum.record_redirect(input.redirect_bytes);
        if input.redirect_bytes > 0 {
            w.traffic.redirected_requests += 1;
            self.cum.redirected_requests += 1;
        } else {
            w.traffic.served_requests += 1;
            self.cum.served_requests += 1;
        }
        w.filled_chunks += input.filled_chunks;
        w.evicted_chunks += input.evicted_chunks;
        w.max_stream_requests = w.traffic.total_requests();
        w.request_chunks.observe(input.request_chunks);
        if let Some(gap) = input.queue_gap {
            w.queue_gap.observe(gap);
        }
        self.open_dirty = true;
    }

    /// Flushes the open window (if it saw any record since the last
    /// close) through `on_close` into the ring. Call once at end of run;
    /// an entirely unfed ring flushes nothing.
    pub fn finish(&mut self, on_close: &mut dyn FnMut(&WindowStats)) {
        if self.saw_request && self.open_dirty {
            self.close_open(on_close);
        }
    }

    /// A non-destructive view of the ring: the retained closed windows
    /// plus the open window if it holds data. The engine merges these
    /// snapshots across shards at report time, leaving each ring intact
    /// for warm continuation.
    pub fn snapshot_windows(&self) -> Vec<WindowStats> {
        let mut out: Vec<WindowStats> = self.closed.iter().cloned().collect();
        if self.open_dirty {
            out.push(self.open.clone());
        }
        out
    }
}

/// Folds per-producer window sets into one set keyed by window index,
/// filling index gaps with empty windows so the result is a contiguous
/// grid from the smallest to the largest index seen. Because
/// [`WindowStats::merge`] is commutative and associative, the result is
/// invariant to the order of `sets` and to how producers were grouped —
/// per-shard windows fold into engine windows identically at any worker
/// count.
pub fn merge_windows(sets: &[Vec<WindowStats>]) -> Vec<WindowStats> {
    let mut by_index: std::collections::BTreeMap<u64, WindowStats> =
        std::collections::BTreeMap::new();
    for set in sets {
        for w in set {
            by_index
                .entry(w.index)
                .and_modify(|acc| acc.merge(w))
                .or_insert_with(|| w.clone());
        }
    }
    let Some((&lo, _)) = by_index.iter().next() else {
        return Vec::new();
    };
    let (&hi, _) = by_index
        .iter()
        .next_back()
        .unwrap_or((&lo, &WindowStats::empty(lo)));
    (lo..=hi)
        .map(|i| by_index.remove(&i).unwrap_or_else(|| WindowStats::empty(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(ring: &mut WindowRing, t_ms: u64, hit: u64, red: u64) {
        ring.record(
            &WindowInput {
                t_ms,
                hit_bytes: hit,
                redirect_bytes: red,
                request_chunks: 1,
                ..WindowInput::default()
            },
            &mut |_| {},
        );
    }

    #[test]
    fn windows_tumble_on_the_trace_clock() {
        let mut ring = WindowRing::new(100, 8);
        feed(&mut ring, 10, 5, 0);
        feed(&mut ring, 120, 0, 7);
        feed(&mut ring, 450, 3, 0);
        ring.finish(&mut |_| {});
        let w: Vec<WindowStats> = ring.snapshot_windows();
        let starts: Vec<u64> = w.iter().map(|x| x.index).collect();
        assert_eq!(starts, vec![0, 1, 2, 3, 4]);
        assert_eq!(w[0].traffic.hit_bytes, 5);
        assert_eq!(w[1].traffic.redirect_bytes, 7);
        assert!(w[2].is_empty() && w[3].is_empty());
        assert_eq!(w[4].traffic.hit_bytes, 3);
    }

    #[test]
    fn on_close_sees_every_window_before_ring_eviction() {
        let mut ring = WindowRing::new(10, 2);
        let mut seen = Vec::new();
        for t in (0..70).step_by(10) {
            ring.record(
                &WindowInput {
                    t_ms: t,
                    hit_bytes: 1,
                    request_chunks: 1,
                    ..WindowInput::default()
                },
                &mut |w| seen.push(w.index),
            );
        }
        ring.finish(&mut |w| seen.push(w.index));
        // All 7 windows reported to the callback, ring keeps only 2.
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(ring.closed_windows().count(), 2);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn conservation_sum_of_deltas_equals_cum() {
        let mut ring = WindowRing::new(50, 3);
        let mut dropped_plus_closed = TrafficCounter::default();
        for t in 0..40u64 {
            ring.record(
                &WindowInput {
                    t_ms: t * 31,
                    hit_bytes: t,
                    redirect_bytes: u64::from(t % 5 == 0) * 9,
                    request_chunks: 1,
                    ..WindowInput::default()
                },
                &mut |w| dropped_plus_closed += w.traffic,
            );
        }
        ring.finish(&mut |w| dropped_plus_closed += w.traffic);
        assert_eq!(dropped_plus_closed, ring.cum());
    }

    #[test]
    fn merge_is_order_invariant_and_fills_gaps() {
        let mut a = WindowStats::empty(2);
        a.traffic.record_hit(10);
        a.traffic.served_requests += 1;
        a.max_stream_requests = 1;
        a.queue_gap.observe(4);
        let mut b = WindowStats::empty(4);
        b.traffic.record_fill(3);
        b.traffic.served_requests += 1;
        b.max_stream_requests = 1;
        let ab = merge_windows(&[vec![a.clone()], vec![b.clone()]]);
        let ba = merge_windows(&[vec![b], vec![a]]);
        assert_eq!(ab, ba);
        let idx: Vec<u64> = ab.iter().map(|w| w.index).collect();
        assert_eq!(idx, vec![2, 3, 4]);
        assert!(ab[1].is_empty());
    }

    #[test]
    fn merge_same_index_sums_and_maxes() {
        let mut a = WindowStats::empty(7);
        a.traffic.record_hit(10);
        a.traffic.served_requests += 3;
        a.max_stream_requests = 3;
        a.filled_chunks = 2;
        a.queue_gap.observe(8);
        let mut b = WindowStats::empty(7);
        b.traffic.record_redirect(6);
        b.traffic.redirected_requests += 1;
        b.max_stream_requests = 1;
        b.evicted_chunks = 5;
        b.queue_gap.observe(8);
        a.merge(&b);
        assert_eq!(a.traffic.hit_bytes, 10);
        assert_eq!(a.traffic.redirect_bytes, 6);
        assert_eq!(a.traffic.total_requests(), 4);
        assert_eq!(a.max_stream_requests, 3);
        assert_eq!(a.churn_chunks(), 7);
        assert_eq!(a.queue_gap.count, 2);
        assert_eq!(a.queue_gap.sum, 16);
    }

    #[test]
    #[should_panic(expected = "equal indices")]
    fn merge_rejects_index_mismatch() {
        let mut a = WindowStats::empty(1);
        a.merge(&WindowStats::empty(2));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn time_reversal_is_rejected() {
        let mut ring = WindowRing::new(100, 4);
        feed(&mut ring, 500, 1, 0);
        feed(&mut ring, 10, 1, 0);
    }

    #[test]
    fn skew_and_rates_have_zero_guards() {
        let w = WindowStats::empty(0);
        assert_eq!(w.skew_x1000(4), 1000);
        assert_eq!(w.redirect_rate(), 0.0);
        assert_eq!(w.efficiency(CostModel::balanced()), 0.0);
        let mut hot = WindowStats::empty(0);
        hot.traffic.served_requests = 4;
        hot.max_stream_requests = 2;
        // max/mean over 4 streams: 2 / (4/4) = 2 → 2000.
        assert_eq!(hot.skew_x1000(4), 2000);
    }

    #[test]
    fn record_json_shape() {
        let mut w = WindowStats::empty(3);
        w.traffic.record_hit(100);
        w.traffic.served_requests += 1;
        w.max_stream_requests = 1;
        w.request_chunks.observe(2);
        let rec = WindowRecord::from_stats(&w, CostModel::balanced());
        let j = rec.to_json().to_string();
        let parsed = vcdn_types::json::parse(&j).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("window"));
        assert_eq!(parsed.get("index"), Some(&Json::Int(3)));
        assert_eq!(parsed.get("hit_bytes"), Some(&Json::Int(100)));
        assert_eq!(parsed.get("efficiency"), Some(&Json::Float(1.0)));
        assert_eq!(parsed.get("queue_gap_count"), Some(&Json::Int(0)));
    }

    #[test]
    fn snapshot_includes_open_window_without_disturbing_it() {
        let mut ring = WindowRing::new(1_000, 4);
        feed(&mut ring, 100, 10, 0);
        let snap = ring.snapshot_windows();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].traffic.hit_bytes, 10);
        // Continue feeding the same open window.
        feed(&mut ring, 200, 5, 0);
        let snap = ring.snapshot_windows();
        assert_eq!(snap[0].traffic.hit_bytes, 15);
    }
}
