//! Structured per-request decision events and the bounded ring that
//! collects them.
//!
//! Every replayed request produces one compact [`DecisionEvent`] carrying
//! everything needed to explain the serve-vs-redirect decision post-hoc:
//! the per-policy cost terms (`iat·α_F2R` vs cache age for xLRU's Eq. 5;
//! `E[serve]` vs `E[redirect]` for Cafe's Eqs. 6–7 and Psychic's
//! Eqs. 13–14), the cache age at decision time, and the outcome's
//! hit/fill/evict accounting. Events flow through an [`EventRing`] — a
//! bounded buffer that keeps the most recent `capacity` events and counts
//! what it dropped, so tracing a month-long replay has fixed memory cost.

use vcdn_types::json::{Json, ToJson};
use vcdn_types::Request;

/// The cost/age detail a policy computed for its most recent decision.
///
/// Policies that skip the cost comparison on a given request (warm-up
/// admits, full hits, never-seen-video redirects, always-serve baselines)
/// leave the corresponding fields `None`; the decision is then explained
/// by the `verdict` alone.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecisionDetail {
    /// The serve-side quantity: xLRU's `IAT·α_F2R` (Eq. 5 left side),
    /// Cafe's `E[serve]` (Eq. 6), Psychic's Eq. 13.
    pub cost_serve: Option<f64>,
    /// The redirect-side quantity: xLRU's cache age (Eq. 5 right side),
    /// Cafe's `E[redirect]` (Eq. 7), Psychic's Eq. 14.
    pub cost_redirect: Option<f64>,
    /// The policy's cache age (ms) at decision time, where defined.
    pub cache_age_ms: Option<f64>,
}

impl DecisionDetail {
    /// Detail with only a cache age (cost comparison skipped).
    pub fn age_only(cache_age_ms: f64) -> DecisionDetail {
        DecisionDetail {
            cost_serve: None,
            cost_redirect: None,
            cache_age_ms: Some(cache_age_ms),
        }
    }

    /// Detail with both cost terms and the cache age.
    pub fn costs(cost_serve: f64, cost_redirect: f64, cache_age_ms: f64) -> DecisionDetail {
        DecisionDetail {
            cost_serve: Some(cost_serve),
            cost_redirect: Some(cost_redirect),
            cache_age_ms: Some(cache_age_ms),
        }
    }
}

/// The decision outcome recorded in an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Served locally with this hit/fill split.
    Serve {
        /// Requested chunks already on disk.
        hit_chunks: u64,
        /// Requested chunks cache-filled from upstream.
        filled_chunks: u64,
    },
    /// Redirected to an alternative server.
    Redirect,
}

impl Verdict {
    /// Short name used in JSONL exports: `"serve"` or `"redirect"`.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Serve { .. } => "serve",
            Verdict::Redirect => "redirect",
        }
    }
}

/// One replayed request's decision record.
///
/// Serialised as a flat JSON object (see `OBSERVABILITY.md` for the field
/// reference); `cost_serve`, `cost_redirect` and `cache_age_ms` are
/// `null` when the policy skipped the cost comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionEvent {
    /// Request sequence number within the replay (0-based).
    pub seq: u64,
    /// Request arrival time (trace ms).
    pub t_ms: u64,
    /// Requested video id.
    pub video: u64,
    /// First requested chunk index.
    pub chunk: u32,
    /// Number of requested chunks.
    pub chunks: u32,
    /// The deciding policy's name.
    pub policy: &'static str,
    /// Serve or redirect, with the hit/fill split.
    pub verdict: Verdict,
    /// Serve-side cost term (see [`DecisionDetail::cost_serve`]).
    pub cost_serve: Option<f64>,
    /// Redirect-side cost term (see [`DecisionDetail::cost_redirect`]).
    pub cost_redirect: Option<f64>,
    /// Cache age (ms) at decision time, where the policy defines one.
    pub cache_age_ms: Option<f64>,
    /// Chunks evicted by this decision.
    pub evicted: u64,
}

impl DecisionEvent {
    /// Builds an event from the replayed request plus the policy's
    /// decision outputs. `chunk`/`chunks` describe the request's chunk
    /// range under the replay's chunk size.
    #[allow(clippy::too_many_arguments)]
    pub fn from_decision(
        seq: u64,
        request: &Request,
        chunk: u32,
        chunks: u32,
        policy: &'static str,
        verdict: Verdict,
        detail: DecisionDetail,
        evicted: u64,
    ) -> DecisionEvent {
        DecisionEvent {
            seq,
            t_ms: request.t.as_millis(),
            video: request.video.0,
            chunk,
            chunks,
            policy,
            verdict,
            cost_serve: detail.cost_serve,
            cost_redirect: detail.cost_redirect,
            cache_age_ms: detail.cache_age_ms,
            evicted,
        }
    }
}

impl ToJson for DecisionEvent {
    fn to_json(&self) -> Json {
        let (hit, fill) = match self.verdict {
            Verdict::Serve {
                hit_chunks,
                filled_chunks,
            } => (hit_chunks, filled_chunks),
            Verdict::Redirect => (0, 0),
        };
        Json::Obj(vec![
            ("type".into(), Json::Str("event".into())),
            ("seq".into(), Json::Int(self.seq as i128)),
            ("t_ms".into(), Json::Int(self.t_ms as i128)),
            ("video".into(), Json::Int(self.video as i128)),
            ("chunk".into(), Json::Int(self.chunk as i128)),
            ("chunks".into(), Json::Int(self.chunks as i128)),
            ("policy".into(), Json::Str(self.policy.into())),
            ("verdict".into(), Json::Str(self.verdict.name().into())),
            ("hit_chunks".into(), Json::Int(hit as i128)),
            ("fill_chunks".into(), Json::Int(fill as i128)),
            ("cost_serve".into(), self.cost_serve.to_json()),
            ("cost_redirect".into(), self.cost_redirect.to_json()),
            ("cache_age_ms".into(), self.cache_age_ms.to_json()),
            ("evicted".into(), Json::Int(self.evicted as i128)),
        ])
    }
}

/// A bounded ring buffer of [`DecisionEvent`]s: keeps the newest
/// `capacity` events, counts the rest as dropped.
///
/// # Examples
///
/// ```
/// use vcdn_obs::{DecisionEvent, EventRing, Verdict};
///
/// let mut ring = EventRing::new(2);
/// for seq in 0..5 {
///     ring.push(DecisionEvent {
///         seq,
///         t_ms: seq,
///         video: 1,
///         chunk: 0,
///         chunks: 1,
///         policy: "lru",
///         verdict: Verdict::Redirect,
///         cost_serve: None,
///         cost_redirect: None,
///         cache_age_ms: None,
///         evicted: 0,
///     });
/// }
/// let seqs: Vec<u64> = ring.iter_oldest_first().map(|e| e.seq).collect();
/// assert_eq!(seqs, vec![3, 4]); // newest two survive, in replay order
/// assert_eq!(ring.dropped(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<DecisionEvent>,
    capacity: usize,
    /// Index of the oldest retained event within `buf`.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity > 0, "ring capacity must be > 0");
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, displacing the oldest once full.
    pub fn push(&mut self, event: DecisionEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events displaced so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events in replay (oldest-first) order.
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = &DecisionEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcdn_types::json;

    fn event(seq: u64) -> DecisionEvent {
        DecisionEvent {
            seq,
            t_ms: seq * 10,
            video: 7,
            chunk: 2,
            chunks: 3,
            policy: "cafe",
            verdict: Verdict::Serve {
                hit_chunks: 2,
                filled_chunks: 1,
            },
            cost_serve: Some(1.5),
            cost_redirect: Some(2.0),
            cache_age_ms: Some(100.0),
            evicted: 1,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut ring = EventRing::new(3);
        for seq in 0..10 {
            ring.push(event(seq));
        }
        let seqs: Vec<u64> = ring.iter_oldest_first().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(ring.dropped(), 7);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_drops_nothing() {
        let mut ring = EventRing::new(8);
        ring.push(event(0));
        ring.push(event(1));
        assert_eq!(ring.dropped(), 0);
        let seqs: Vec<u64> = ring.iter_oldest_first().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn event_serialises_with_stable_fields() {
        let j = event(4).to_json();
        let parsed = json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("event"));
        assert_eq!(parsed.get("verdict").and_then(Json::as_str), Some("serve"));
        assert_eq!(parsed.get("seq"), Some(&Json::Int(4)));
        assert_eq!(parsed.get("hit_chunks"), Some(&Json::Int(2)));
        assert_eq!(parsed.get("cost_serve"), Some(&Json::Float(1.5)));
    }

    #[test]
    fn redirect_event_serialises_null_costs() {
        let e = DecisionEvent {
            verdict: Verdict::Redirect,
            cost_serve: None,
            cost_redirect: None,
            cache_age_ms: None,
            ..event(1)
        };
        let parsed = json::parse(&e.to_json().to_string()).unwrap();
        assert_eq!(
            parsed.get("verdict").and_then(Json::as_str),
            Some("redirect")
        );
        assert_eq!(parsed.get("cost_serve"), Some(&Json::Null));
        assert_eq!(parsed.get("hit_chunks"), Some(&Json::Int(0)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        EventRing::new(0);
    }
}
