//! The replay time-series sampler: periodic snapshots of cache behavior
//! over *trace time*.
//!
//! The paper's evaluation is time-resolved — cache-efficiency warm-up
//! curves, fill/redirect byte breakdowns and cache-age dynamics per server
//! (§9, Figs. 3, 6) — but an end-of-run aggregate throws that structure
//! away. [`ReplaySampler`] closes the gap: fed once per replayed request,
//! it accumulates traffic per fixed interval of trace time and emits one
//! [`SeriesSample`] per elapsed interval, including empty ones, so the
//! series is a complete, evenly spaced grid.
//!
//! Determinism: samples carry exact integer byte counters plus floats
//! derived only from them, so a sampler fed the same replay produces
//! byte-identical output regardless of wall-clock, thread count or
//! machine. The cumulative counters reproduce the replay's aggregate
//! exactly: the last sample's `cum_*` fields equal the run's overall
//! [`TrafficCounter`], making the Eq. 2 identity testable to the bit.

use vcdn_types::json::{Json, ToJson};
use vcdn_types::{CostModel, TrafficCounter};

/// One interval's snapshot of replay behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSample {
    /// Interval start (trace ms).
    pub t_ms: u64,
    /// Traffic accumulated within this interval alone.
    pub interval: TrafficCounter,
    /// Traffic accumulated from replay start through this interval's end.
    pub cum: TrafficCounter,
    /// Eq. 2 efficiency over this interval alone (`0.0` for an interval
    /// with no requested bytes — the zero-request guard, not `NaN`).
    pub efficiency: f64,
    /// Eq. 2 efficiency from replay start through this interval's end.
    pub cum_efficiency: f64,
    /// Chunks on disk at the last decision at or before interval end.
    pub occupancy_chunks: u64,
    /// Disk capacity in chunks.
    pub capacity_chunks: u64,
    /// Policy cache age (ms) at the last decision observed, where the
    /// policy defines one.
    pub cache_age_ms: Option<f64>,
}

impl ToJson for SeriesSample {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("sample".into())),
            ("t_ms".into(), Json::Int(self.t_ms as i128)),
            (
                "hit_bytes".into(),
                Json::Int(self.interval.hit_bytes as i128),
            ),
            (
                "fill_bytes".into(),
                Json::Int(self.interval.fill_bytes as i128),
            ),
            (
                "redirect_bytes".into(),
                Json::Int(self.interval.redirect_bytes as i128),
            ),
            (
                "served_requests".into(),
                Json::Int(self.interval.served_requests as i128),
            ),
            (
                "redirected_requests".into(),
                Json::Int(self.interval.redirected_requests as i128),
            ),
            ("efficiency".into(), Json::Float(self.efficiency)),
            (
                "cum_hit_bytes".into(),
                Json::Int(self.cum.hit_bytes as i128),
            ),
            (
                "cum_fill_bytes".into(),
                Json::Int(self.cum.fill_bytes as i128),
            ),
            (
                "cum_redirect_bytes".into(),
                Json::Int(self.cum.redirect_bytes as i128),
            ),
            ("cum_efficiency".into(), Json::Float(self.cum_efficiency)),
            (
                "occupancy_chunks".into(),
                Json::Int(self.occupancy_chunks as i128),
            ),
            (
                "capacity_chunks".into(),
                Json::Int(self.capacity_chunks as i128),
            ),
            ("cache_age_ms".into(), self.cache_age_ms.to_json()),
        ])
    }
}

/// Accumulates per-request traffic into fixed trace-time intervals.
///
/// Feed every request through [`ReplaySampler::record`]; call
/// [`ReplaySampler::finish`] after the replay to flush the open interval
/// and take the samples.
///
/// # Examples
///
/// ```
/// use vcdn_obs::ReplaySampler;
/// use vcdn_types::CostModel;
///
/// let mut s = ReplaySampler::new(1_000, CostModel::balanced());
/// s.record(100, 80, 20, 0, 4, 8, None); // t=100ms: 80B hit, 20B fill
/// s.record(2_500, 0, 0, 50, 4, 8, None); // t=2.5s: 50B redirected
/// let samples = s.finish();
/// assert_eq!(samples.len(), 3); // intervals [0,1s) [1s,2s) [2s,3s)
/// assert_eq!(samples[1].interval.requested_bytes(), 0); // empty, not NaN
/// assert_eq!(samples[1].efficiency, 0.0);
/// assert_eq!(samples[2].cum.requested_bytes(), 150);
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySampler {
    interval_ms: u64,
    costs: CostModel,
    /// Start of the currently open interval (trace ms).
    open_start: u64,
    open: TrafficCounter,
    cum: TrafficCounter,
    occupancy_chunks: u64,
    capacity_chunks: u64,
    cache_age_ms: Option<f64>,
    samples: Vec<SeriesSample>,
    saw_request: bool,
}

impl ReplaySampler {
    /// Creates a sampler emitting one sample per `interval_ms` of trace
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms == 0`.
    pub fn new(interval_ms: u64, costs: CostModel) -> ReplaySampler {
        assert!(interval_ms > 0, "sample interval must be > 0");
        ReplaySampler {
            interval_ms,
            costs,
            open_start: 0,
            open: TrafficCounter::default(),
            cum: TrafficCounter::default(),
            occupancy_chunks: 0,
            capacity_chunks: 0,
            cache_age_ms: None,
            samples: Vec::new(),
            saw_request: false,
        }
    }

    /// The configured interval (ms).
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    fn close_open_interval(&mut self) {
        self.samples.push(SeriesSample {
            t_ms: self.open_start,
            interval: self.open,
            cum: self.cum,
            efficiency: self.open.efficiency(self.costs),
            cum_efficiency: self.cum.efficiency(self.costs),
            occupancy_chunks: self.occupancy_chunks,
            capacity_chunks: self.capacity_chunks,
            cache_age_ms: self.cache_age_ms,
        });
        self.open = TrafficCounter::default();
        self.open_start = self.open_start.saturating_add(self.interval_ms);
    }

    /// Records one decided request. Bytes are chunk-granularity byte
    /// counts (exactly one of `fill`+`hit` or `redirect` is nonzero per
    /// the replay accounting); `occupancy`/`capacity` are the policy's
    /// disk state after the decision, and `cache_age_ms` the policy's
    /// cache age where defined.
    ///
    /// # Panics
    ///
    /// Panics if `t_ms` moves backwards past an already closed interval
    /// (replay time is non-decreasing).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t_ms: u64,
        hit_bytes: u64,
        fill_bytes: u64,
        redirect_bytes: u64,
        occupancy: u64,
        capacity: u64,
        cache_age_ms: Option<f64>,
    ) {
        assert!(
            t_ms >= self.open_start,
            "sampler fed out of order: t={t_ms}ms before interval start {}ms",
            self.open_start
        );
        self.saw_request = true;
        // Close every interval that ended before this request.
        while t_ms >= self.open_start.saturating_add(self.interval_ms) {
            self.close_open_interval();
        }
        self.open.record_hit(hit_bytes);
        self.open.record_fill(fill_bytes);
        self.open.record_redirect(redirect_bytes);
        self.cum.record_hit(hit_bytes);
        self.cum.record_fill(fill_bytes);
        self.cum.record_redirect(redirect_bytes);
        if redirect_bytes > 0 {
            self.open.redirected_requests += 1;
            self.cum.redirected_requests += 1;
        } else {
            self.open.served_requests += 1;
            self.cum.served_requests += 1;
        }
        self.occupancy_chunks = occupancy;
        self.capacity_chunks = capacity;
        if cache_age_ms.is_some() {
            self.cache_age_ms = cache_age_ms;
        }
    }

    /// Flushes the open interval and returns the complete series. An
    /// entirely unfed sampler returns no samples.
    pub fn finish(mut self) -> Vec<SeriesSample> {
        if self.saw_request {
            self.close_open_interval();
        }
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_counters_match_total_exactly() {
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut s = ReplaySampler::new(500, costs);
        let mut total = TrafficCounter::default();
        for i in 0..50u64 {
            let (h, f, r) = match i % 3 {
                0 => (100, 20, 0),
                1 => (0, 0, 70),
                _ => (40, 0, 0),
            };
            s.record(i * 97, h, f, r, i, 100, Some(i as f64));
            total.record_hit(h);
            total.record_fill(f);
            total.record_redirect(r);
            if r > 0 {
                total.redirected_requests += 1;
            } else {
                total.served_requests += 1;
            }
        }
        let samples = s.finish();
        let last = samples.last().unwrap();
        assert_eq!(last.cum, total);
        assert_eq!(last.cum_efficiency, total.efficiency(costs));
        // Interval counters sum to the total too.
        let sum = samples
            .iter()
            .fold(TrafficCounter::default(), |acc, w| acc + w.interval);
        assert_eq!(sum, total);
    }

    #[test]
    fn empty_intervals_are_emitted_with_zero_efficiency() {
        let mut s = ReplaySampler::new(100, CostModel::balanced());
        s.record(50, 10, 0, 0, 1, 4, None);
        s.record(950, 10, 0, 0, 2, 4, None);
        let samples = s.finish();
        assert_eq!(samples.len(), 10);
        for sample in &samples[1..9] {
            assert_eq!(sample.interval.requested_bytes(), 0);
            assert_eq!(sample.efficiency, 0.0);
            assert!(sample.efficiency.is_finite());
            // Cumulative state persists through the gap.
            assert_eq!(sample.cum.hit_bytes, 10);
            assert_eq!(sample.occupancy_chunks, 1);
        }
    }

    #[test]
    fn sample_grid_is_evenly_spaced() {
        let mut s = ReplaySampler::new(250, CostModel::balanced());
        s.record(0, 1, 0, 0, 1, 1, None);
        s.record(1_100, 1, 0, 0, 1, 1, None);
        let samples = s.finish();
        let starts: Vec<u64> = samples.iter().map(|x| x.t_ms).collect();
        assert_eq!(starts, vec![0, 250, 500, 750, 1000]);
    }

    #[test]
    fn unfed_sampler_yields_no_samples() {
        let s = ReplaySampler::new(1000, CostModel::balanced());
        assert!(s.finish().is_empty());
    }

    #[test]
    fn cache_age_holds_last_known_value() {
        let mut s = ReplaySampler::new(100, CostModel::balanced());
        s.record(10, 1, 0, 0, 1, 2, Some(42.0));
        s.record(150, 1, 0, 0, 1, 2, None);
        let samples = s.finish();
        assert_eq!(samples[0].cache_age_ms, Some(42.0));
        assert_eq!(samples[1].cache_age_ms, Some(42.0));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn time_reversal_is_rejected() {
        let mut s = ReplaySampler::new(100, CostModel::balanced());
        s.record(500, 1, 0, 0, 1, 1, None);
        s.record(10, 1, 0, 0, 1, 1, None);
    }

    #[test]
    fn sample_serialises_to_flat_object() {
        let mut s = ReplaySampler::new(100, CostModel::balanced());
        s.record(10, 80, 20, 0, 3, 8, Some(7.5));
        let sample = &s.finish()[0];
        let parsed = vcdn_types::json::parse(&sample.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("type").and_then(Json::as_str), Some("sample"));
        assert_eq!(parsed.get("hit_bytes"), Some(&Json::Int(80)));
        assert_eq!(parsed.get("occupancy_chunks"), Some(&Json::Int(3)));
        assert_eq!(parsed.get("cache_age_ms"), Some(&Json::Float(7.5)));
        assert_eq!(parsed.get("efficiency"), Some(&Json::Float(0.8)));
    }
}
