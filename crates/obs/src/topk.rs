//! Space-Saving heavy-hitter sketch: the hottest keys of a stream in
//! bounded memory, with per-key error bounds.
//!
//! The engine wants "which videos dominate this shard?" without holding a
//! counter per video — a month-long trace touches far more videos than a
//! shard should track. [`SpaceSaving`] is the classic Metwally et al.
//! *Space-Saving* algorithm over `k` slots:
//!
//! * a tracked key increments its exact slot counter;
//! * an untracked key with a free slot takes it with `count = 1`,
//!   `err = 0`;
//! * an untracked key with no free slot **evicts the minimum-count slot**
//!   and inherits its counter: `count = min + 1`, `err = min`.
//!
//! The inherited counter makes every slot an *over*-estimate, which is
//! what gives the classic bound per tracked key `x`:
//!
//! ```text
//! count(x) − err(x) ≤ true_count(x) ≤ count(x),   err(x) ≤ n / k
//! ```
//!
//! where `n` is the total number of recorded keys. Any key whose true
//! count exceeds `n / k` is guaranteed to be tracked.
//!
//! **Determinism.** The only free choice in the algorithm is which slot
//! to evict when several share the minimum count. We break that tie by
//! the *largest key* (so numerically smaller keys are stickier), making
//! the surviving set — and therefore the exported bundle — a pure
//! function of the input stream. The engine keys sketches by the packed
//! [`vcdn_types::ChunkId`] of a video's first chunk, whose ordering
//! equals the video-id ordering, so ties resolve identically on every
//! machine and worker count. [`SpaceSaving::entries`] returns the slots
//! sorted by `(count desc, key asc)` for the same reason.
//!
//! Zero external dependencies: storage is a `Vec` of slots plus a
//! [`FastMap`] key index; [`SpaceSaving::record`] is O(1) for tracked
//! keys and O(k) on eviction (k is small — the default is 8).

use vcdn_types::fasthash::FastMap;
use vcdn_types::json::{Json, ToJson};

/// One tracked key exported from the sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKEntry {
    /// The tracked key (for the engine: a packed `ChunkId`).
    pub key: u64,
    /// Over-estimated occurrence count (`≥` the true count).
    pub count: u64,
    /// Maximum over-estimation: the count inherited when this key last
    /// took its slot. `count − err` is a guaranteed lower bound on the
    /// true count; always `err < count`.
    pub err: u64,
}

/// One exported top-K JSONL record: a rank within a shard's sketch.
///
/// Serialises as `{"type":"topk","shard":…,"rank":…,"video":…,"count":…,
/// "err":…}` — ranks are 1-based and sorted by `(count desc, video asc)`
/// within a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKRecord {
    /// The shard whose sketch produced this entry (0 for unsharded
    /// replays).
    pub shard: u32,
    /// 1-based rank within the shard's sketch.
    pub rank: u32,
    /// The video id the tracked key denotes.
    pub video: u64,
    /// Over-estimated request count.
    pub count: u64,
    /// Maximum over-estimation (`err < count`).
    pub err: u64,
}

impl ToJson for TopKRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("type".into(), Json::Str("topk".into())),
            ("shard".into(), Json::Int(self.shard as i128)),
            ("rank".into(), Json::Int(self.rank as i128)),
            ("video".into(), Json::Int(self.video as i128)),
            ("count".into(), Json::Int(self.count as i128)),
            ("err".into(), Json::Int(self.err as i128)),
        ])
    }
}

/// A slot of the sketch (internal storage, unordered).
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: u64,
    count: u64,
    err: u64,
}

/// The Space-Saving sketch: at most `k` tracked keys. See the module
/// docs for the algorithm, bounds and tie-breaking rule.
///
/// # Examples
///
/// ```
/// use vcdn_obs::topk::SpaceSaving;
///
/// let mut sketch = SpaceSaving::new(2);
/// for key in [7, 7, 7, 5, 9] {
///     sketch.record(key);
/// }
/// let top = sketch.entries();
/// assert_eq!(top[0].key, 7);
/// assert_eq!(top[0].count, 3);
/// // Every entry's count-err is a certified lower bound.
/// assert!(top.iter().all(|e| e.err < e.count));
/// ```
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    slots: Vec<Slot>,
    index: FastMap<u64, usize>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a sketch tracking at most `k` keys.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> SpaceSaving {
        assert!(k > 0, "space-saving sketch needs at least one slot");
        SpaceSaving {
            k,
            slots: Vec::with_capacity(k),
            index: FastMap::default(),
            total: 0,
        }
    }

    /// The slot capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total keys recorded (the `n` of the `err ≤ n / k` bound).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of currently tracked keys (`≤ k`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Records one occurrence of `key`. O(1) for tracked keys and when a
    /// free slot remains; O(k) when an eviction scan is needed.
    pub fn record(&mut self, key: u64) {
        self.total += 1;
        if let Some(&i) = self.index.get(&key) {
            self.slots[i].count += 1;
            return;
        }
        if self.slots.len() < self.k {
            self.index.insert(key, self.slots.len());
            self.slots.push(Slot {
                key,
                count: 1,
                err: 0,
            });
            return;
        }
        // Evict the minimum-count slot; among equal counts the *largest*
        // key loses, so the outcome is independent of slot order.
        let mut victim = 0;
        for (i, slot) in self.slots.iter().enumerate().skip(1) {
            let v = &self.slots[victim];
            if slot.count < v.count || (slot.count == v.count && slot.key > v.key) {
                victim = i;
            }
        }
        let inherited = self.slots[victim].count;
        self.index.remove(&self.slots[victim].key);
        self.index.insert(key, victim);
        self.slots[victim] = Slot {
            key,
            count: inherited + 1,
            err: inherited,
        };
    }

    /// The over-estimated count of `key`, or `None` if untracked.
    pub fn count(&self, key: u64) -> Option<u64> {
        self.index.get(&key).map(|&i| self.slots[i].count)
    }

    /// The tracked keys sorted by `(count desc, key asc)` — the
    /// deterministic export order.
    pub fn entries(&self) -> Vec<TopKEntry> {
        let mut out: Vec<TopKEntry> = self
            .slots
            .iter()
            .map(|s| TopKEntry {
                key: s.key,
                count: s.count,
                err: s.err,
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.key.cmp(&b.key)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        SpaceSaving::new(0);
    }

    #[test]
    fn tracked_keys_count_exactly_without_eviction() {
        let mut s = SpaceSaving::new(4);
        for key in [1, 2, 1, 3, 1, 2] {
            s.record(key);
        }
        assert_eq!(s.count(1), Some(3));
        assert_eq!(s.count(2), Some(2));
        assert_eq!(s.count(3), Some(1));
        assert_eq!(s.total(), 6);
        assert!(s.entries().iter().all(|e| e.err == 0));
    }

    #[test]
    fn eviction_inherits_min_count_as_error() {
        let mut s = SpaceSaving::new(2);
        s.record(10); // {10:1}
        s.record(10); // {10:2}
        s.record(20); // {10:2, 20:1}
        s.record(30); // 20 evicted: {10:2, 30:2(err 1)}
        assert_eq!(s.count(20), None);
        assert_eq!(s.count(30), Some(2));
        let e30 = s.entries().into_iter().find(|e| e.key == 30).unwrap();
        assert_eq!(e30.err, 1);
        assert!(e30.count - e30.err <= 1); // true count of 30 is 1
    }

    #[test]
    fn min_count_tie_evicts_largest_key() {
        let mut s = SpaceSaving::new(3);
        for key in [5, 9, 2] {
            s.record(key); // all count 1
        }
        s.record(7); // tie on count 1 → largest key (9) evicted
        assert_eq!(s.count(9), None);
        assert_eq!(s.count(5), Some(1));
        assert_eq!(s.count(2), Some(1));
        assert_eq!(s.count(7), Some(2));
    }

    #[test]
    fn entries_sorted_by_count_desc_then_key_asc() {
        let mut s = SpaceSaving::new(4);
        for key in [8, 3, 3, 11, 8] {
            s.record(key);
        }
        let e: Vec<(u64, u64)> = s.entries().iter().map(|x| (x.key, x.count)).collect();
        assert_eq!(e, vec![(3, 2), (8, 2), (11, 1)]);
    }

    #[test]
    fn error_bound_holds_on_a_skewed_stream() {
        // Zipf-ish: key i appears 100/i times; k=4 tracks the head.
        let mut stream = Vec::new();
        for key in 1u64..=20 {
            for _ in 0..(100 / key) {
                stream.push(key);
            }
        }
        let mut s = SpaceSaving::new(4);
        let mut truth = std::collections::HashMap::new();
        for &key in &stream {
            s.record(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        for e in s.entries() {
            let t = truth[&e.key];
            assert!(e.count >= t, "count must over-estimate");
            assert!(e.count - e.err <= t, "count-err must lower-bound");
            assert!(e.err <= s.total() / 4, "err bounded by n/k");
        }
        // The undisputed heavy hitter is tracked with rank 1.
        assert_eq!(s.entries()[0].key, 1);
    }

    #[test]
    fn record_json_shape() {
        let rec = TopKRecord {
            shard: 2,
            rank: 1,
            video: 17,
            count: 9,
            err: 3,
        };
        assert_eq!(
            rec.to_json().to_string(),
            r#"{"type":"topk","shard":2,"rank":1,"video":17,"count":9,"err":3}"#
        );
    }
}
