//! Property tests for the window plane: seeded random request streams
//! exercising the algebra the engine's determinism contract rests on.
//!
//! The load-bearing properties:
//!
//! * **Merge is a commutative monoid** — associative, commutative, with
//!   the empty window as identity — so per-shard windows fold into
//!   engine-level windows identically at any worker count and in any
//!   order.
//! * **Conservation** — Σ(window traffic deltas) over closed + open
//!   windows equals the ring's cumulative counter, regardless of window
//!   width, gaps, or ring eviction (detectors see every window at close
//!   time, so eviction loses no signal).
//! * **Partition invariance** — splitting one stream across P rings and
//!   merging equals one ring fed everything (the shard model).

use vcdn_obs::window::{merge_windows, WindowInput, WindowRing, WindowStats};
use vcdn_obs::HistogramSnapshot;
use vcdn_trace::rng::DetRng;

/// A deterministic random request stream with non-decreasing timestamps
/// and occasional redirects, fills and evictions.
fn random_inputs(rng: &mut DetRng, len: usize, max_step_ms: u64) -> Vec<WindowInput> {
    let mut t = 0u64;
    (0..len)
        .map(|_| {
            t += rng.below(max_step_ms);
            let redirect = rng.f64() < 0.2;
            let chunks = 1 + rng.below(16);
            WindowInput {
                t_ms: t,
                hit_bytes: if redirect { 0 } else { chunks * 100 },
                fill_bytes: if redirect {
                    0
                } else {
                    rng.below(chunks + 1) * 100
                },
                redirect_bytes: if redirect { chunks * 100 } else { 0 },
                filled_chunks: if redirect { 0 } else { rng.below(chunks + 1) },
                evicted_chunks: rng.below(3),
                request_chunks: chunks,
                queue_gap: {
                    let magnitude = rng.below(20);
                    Some(rng.below(1 << magnitude))
                },
            }
        })
        .collect()
}

/// Random non-empty window stats at `index` (for pure algebra tests).
fn random_window(rng: &mut DetRng, index: u64) -> WindowStats {
    let mut w = WindowStats::empty(index);
    let n = 1 + rng.below(20);
    for _ in 0..n {
        if rng.f64() < 0.25 {
            w.traffic.record_redirect(100 + rng.below(1000));
            w.traffic.redirected_requests += 1;
        } else {
            w.traffic.record_hit(100 + rng.below(1000));
            w.traffic.record_fill(rng.below(500));
            w.traffic.served_requests += 1;
        }
        w.queue_gap.observe(rng.below(100_000));
        w.request_chunks.observe(1 + rng.below(32));
    }
    w.filled_chunks = rng.below(50);
    w.evicted_chunks = rng.below(50);
    w.max_stream_requests = 1 + rng.below(n);
    w
}

#[test]
fn merge_is_associative_and_commutative() {
    for seed in [1u64, 42, 20140413] {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let index = rng.below(100);
            let a = random_window(&mut rng, index);
            let b = random_window(&mut rng, index);
            let c = random_window(&mut rng, index);

            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert_eq!(ab_c, a_bc, "seed {seed}: merge not associative");

            // a ⊕ b == b ⊕ a
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "seed {seed}: merge not commutative");

            // empty is the identity.
            let mut a_e = a.clone();
            a_e.merge(&WindowStats::empty(index));
            assert_eq!(a_e, a, "seed {seed}: empty window not an identity");
        }
    }
}

#[test]
fn merge_windows_is_invariant_to_set_order_and_grouping() {
    let mut rng = DetRng::new(7);
    // Three producers with overlapping, gappy index sets.
    let sets: Vec<Vec<WindowStats>> = (0..3)
        .map(|_| {
            let mut indices: Vec<u64> = (0..8).map(|_| rng.below(12)).collect();
            indices.sort_unstable();
            indices.dedup();
            indices
                .into_iter()
                .map(|i| random_window(&mut rng, i))
                .collect()
        })
        .collect();
    let abc = merge_windows(&sets);
    let cba = merge_windows(&[sets[2].clone(), sets[1].clone(), sets[0].clone()]);
    assert_eq!(abc, cba, "set order changed the merge");
    // Grouping invariance: merge(merge(a,b), c) == merge(a,b,c).
    let ab = merge_windows(&sets[0..2]);
    let ab_c = merge_windows(&[ab, sets[2].clone()]);
    assert_eq!(abc, ab_c, "grouping changed the merge");
    // The output grid is contiguous in index.
    for pair in abc.windows(2) {
        assert_eq!(
            pair[1].index,
            pair[0].index + 1,
            "index gap in merge output"
        );
    }
}

#[test]
fn conservation_sum_of_deltas_equals_cumulative_counter() {
    for seed in [3u64, 99, 20140413] {
        let mut rng = DetRng::new(seed);
        for (width, retain, len, max_step) in [
            (1000u64, 4usize, 500usize, 700u64),
            (50, 2, 300, 40),
            (10_000, 64, 200, 5000),
        ] {
            let inputs = random_inputs(&mut rng, len, max_step);
            let mut ring = WindowRing::new(width, retain);
            let mut sum = vcdn_types::TrafficCounter::default();
            let mut gap_samples = 0u64;
            for input in &inputs {
                ring.record(input, &mut |w| {
                    sum += w.traffic;
                    gap_samples += w.queue_gap.count;
                });
            }
            ring.finish(&mut |w| {
                sum += w.traffic;
                gap_samples += w.queue_gap.count;
            });
            assert_eq!(
                sum,
                ring.cum(),
                "seed {seed} width {width}: traffic not conserved"
            );
            assert_eq!(sum.total_requests(), len as u64);
            assert_eq!(gap_samples, len as u64, "gap sketch lost samples");
            // The ring stayed bounded and accounted for every eviction.
            assert!(ring.closed_windows().count() <= retain);
            let total_closed = ring.closed_windows().count() as u64 + ring.dropped();
            assert!(total_closed >= 1);
        }
    }
}

#[test]
fn partitioned_rings_merge_to_the_single_ring_result() {
    for seed in [11u64, 12, 13] {
        let mut rng = DetRng::new(seed);
        let inputs = random_inputs(&mut rng, 600, 300);
        let width = 2_000u64;
        let retain = 1_000usize; // no eviction: compare complete sets

        let mut single = WindowRing::new(width, retain);
        for input in &inputs {
            single.record(input, &mut |_| {});
        }
        let single_set = single.snapshot_windows();

        for parts in [2usize, 3, 5] {
            // Round-robin partition; each ring sees a subsequence with
            // non-decreasing timestamps, like a shard's request stream.
            let mut rings: Vec<WindowRing> =
                (0..parts).map(|_| WindowRing::new(width, retain)).collect();
            for (i, input) in inputs.iter().enumerate() {
                rings[i % parts].record(input, &mut |_| {});
            }
            let sets: Vec<Vec<WindowStats>> =
                rings.iter().map(WindowRing::snapshot_windows).collect();
            let merged = merge_windows(&sets);

            // Merged traffic, churn and sketches must match the single
            // ring exactly per index; max_stream_requests legitimately
            // differs (per-partition peak vs whole-stream count), so
            // compare everything else.
            let offset = merged[0].index - single_set[0].index;
            assert_eq!(offset, 0, "seed {seed} parts {parts}: first index differs");
            assert_eq!(merged.len(), single_set.len(), "seed {seed} parts {parts}");
            for (m, s) in merged.iter().zip(single_set.iter()) {
                assert_eq!(m.index, s.index);
                assert_eq!(m.traffic, s.traffic, "seed {seed} parts {parts}");
                assert_eq!(m.filled_chunks, s.filled_chunks);
                assert_eq!(m.evicted_chunks, s.evicted_chunks);
                assert_eq!(m.queue_gap, s.queue_gap, "seed {seed} parts {parts}");
                assert_eq!(m.request_chunks, s.request_chunks);
                assert!(m.max_stream_requests <= s.max_stream_requests);
            }
        }
    }
}

#[test]
fn sketch_merge_matches_direct_observation() {
    for seed in [21u64, 22] {
        let mut rng = DetRng::new(seed);
        let values: Vec<u64> = (0..500)
            .map(|_| {
                let magnitude = rng.below(30);
                rng.below(1 << magnitude)
            })
            .collect();
        let mut direct = HistogramSnapshot::default();
        for &v in &values {
            direct.observe(v);
        }
        for parts in [2usize, 4, 7] {
            let mut shards = vec![HistogramSnapshot::default(); parts];
            for (i, &v) in values.iter().enumerate() {
                shards[i % parts].observe(v);
            }
            let mut merged = HistogramSnapshot::default();
            // Fold in a rotated order to also exercise commutativity.
            for i in 0..parts {
                merged.merge_from(&shards[(i + parts / 2) % parts]);
            }
            assert_eq!(merged, direct, "seed {seed} parts {parts}");
        }
    }
}
