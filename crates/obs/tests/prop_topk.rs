//! Property tests for the Space-Saving sketch: seeded random streams
//! against an exact-count oracle, plus the determinism guarantees the
//! telemetry contract depends on.
//!
//! The central property is the classic Space-Saving bound — for every
//! tracked key `x` after `n` records into a `k`-slot sketch:
//!
//! ```text
//! count(x) − err(x) ≤ true_count(x) ≤ count(x),   err(x) ≤ n / k
//! ```
//!
//! and any key with `true_count > n / k` is guaranteed tracked.

use std::collections::HashMap;

use vcdn_obs::topk::SpaceSaving;
use vcdn_trace::rng::DetRng;

/// A skewed random stream: key drawn as `floor(u^3 · universe)`, which
/// concentrates mass on small keys (a cheap Zipf-ish surrogate).
fn skewed_stream(rng: &mut DetRng, len: usize, universe: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            let u = rng.f64();
            (u * u * u * universe as f64) as u64
        })
        .collect()
}

fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
    let mut truth = HashMap::new();
    for &key in stream {
        *truth.entry(key).or_insert(0u64) += 1;
    }
    truth
}

#[test]
fn error_bound_holds_on_seeded_random_streams() {
    for seed in [1u64, 42, 20140413] {
        let mut rng = DetRng::new(seed);
        for (k, len, universe) in [(4usize, 2000usize, 50u64), (16, 10_000, 500), (8, 5000, 40)] {
            let stream = skewed_stream(&mut rng, len, universe);
            let truth = exact_counts(&stream);
            let mut sketch = SpaceSaving::new(k);
            for &key in &stream {
                sketch.record(key);
            }
            assert_eq!(sketch.total(), len as u64, "seed {seed} k {k}");
            let n_over_k = sketch.total() / k as u64;
            for e in sketch.entries() {
                let t = truth.get(&e.key).copied().unwrap_or(0);
                assert!(
                    e.count >= t,
                    "seed {seed} k {k}: count {} under-estimates true {t} for key {}",
                    e.count,
                    e.key
                );
                assert!(
                    e.count - e.err <= t,
                    "seed {seed} k {k}: lower bound {} exceeds true {t} for key {}",
                    e.count - e.err,
                    e.key
                );
                assert!(
                    e.err <= n_over_k,
                    "seed {seed} k {k}: err {} exceeds n/k {n_over_k}",
                    e.err
                );
            }
            // Completeness: every key with true count > n/k must be tracked.
            for (&key, &t) in &truth {
                if t > n_over_k {
                    assert!(
                        sketch.count(key).is_some(),
                        "seed {seed} k {k}: heavy key {key} (true {t} > {n_over_k}) untracked"
                    );
                }
            }
        }
    }
}

#[test]
fn identical_streams_yield_identical_exports() {
    let mut rng = DetRng::new(77);
    let stream = skewed_stream(&mut rng, 4000, 200);
    let run = || {
        let mut sketch = SpaceSaving::new(8);
        for &key in &stream {
            sketch.record(key);
        }
        sketch.entries()
    };
    assert_eq!(run(), run());
}

/// With no evictions (distinct keys ≤ k), the exported entries are a pure
/// function of the key *multiset* — any permutation of an equal-frequency
/// stream produces the identical export, because the sort order
/// `(count desc, key asc)` ignores arrival order.
#[test]
fn permuted_equal_frequency_ties_export_identically() {
    let keys: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
    let mut rng = DetRng::new(7);
    let mut sketches = Vec::new();
    for _ in 0..16 {
        // Fisher–Yates with the deterministic RNG.
        let mut perm = keys.clone();
        for i in (1..perm.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            perm.swap(i, j);
        }
        let mut sketch = SpaceSaving::new(keys.len());
        for &key in &perm {
            sketch.record(key);
        }
        sketches.push(sketch.entries());
    }
    for s in &sketches[1..] {
        assert_eq!(&sketches[0], s, "permutation changed the export");
    }
    // And equal-count runs are ordered by ascending key.
    let first = &sketches[0];
    for pair in first.windows(2) {
        assert!(
            pair[0].count > pair[1].count
                || (pair[0].count == pair[1].count && pair[0].key < pair[1].key),
            "export not sorted (count desc, key asc): {first:?}"
        );
    }
}

/// Under eviction pressure the surviving *set* may legitimately depend on
/// arrival order (classic Space-Saving), but for one fixed stream the
/// outcome must be exactly reproducible — and the eviction tie-break
/// (largest key loses) must never let an equal-count smaller key be
/// displaced before a larger one.
#[test]
fn eviction_tie_break_prefers_smaller_keys() {
    for seed in [5u64, 6, 7] {
        let mut rng = DetRng::new(seed);
        let mut sketch = SpaceSaving::new(4);
        // Saturate with four equal-count keys, then insert new ones:
        // evictions must consume the largest keys first.
        for key in [100u64, 200, 300, 400] {
            sketch.record(key);
        }
        let newcomer = 1 + rng.below(50);
        sketch.record(newcomer);
        assert!(sketch.count(400).is_none(), "largest key must evict first");
        assert!(sketch.count(100).is_some());
        assert!(sketch.count(newcomer).is_some());
    }
}

#[test]
fn uniform_stream_respects_bounds_even_when_sketch_is_useless() {
    // Uniform traffic has no heavy hitters; the sketch may track noise,
    // but the bounds must still hold.
    let mut rng = DetRng::new(99);
    let stream: Vec<u64> = (0..5000).map(|_| rng.below(2000)).collect();
    let truth = exact_counts(&stream);
    let mut sketch = SpaceSaving::new(8);
    for &key in &stream {
        sketch.record(key);
    }
    for e in sketch.entries() {
        let t = truth.get(&e.key).copied().unwrap_or(0);
        assert!(e.count >= t && e.count - e.err <= t, "entry {e:?} true {t}");
    }
}
