//! Randomized property tests for the log-bucketed histogram: bucket
//! geometry, sample conservation and exact count/sum recovery through the
//! registry's atomic slots.
//!
//! The workspace builds offline, so instead of an external property-test
//! framework these run a fixed number of cases drawn from a small
//! deterministic SplitMix64 generator; failures print the case seed.

use std::sync::Arc;

use vcdn_obs::histogram::{bucket_index, bucket_lower, bucket_upper, BUCKETS};
use vcdn_obs::{MetricKind, MetricsRegistry, MetricsSink};

const CASES: u64 = 512;

/// Minimal deterministic generator (SplitMix64) for test-case inputs.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// A value spanning the full bucket spectrum: uniform bit width, then
    /// uniform within that width (plain uniform u64s almost never land in
    /// low buckets).
    fn spread(&mut self) -> u64 {
        let bits = self.range(0, 65);
        if bits == 0 {
            return 0;
        }
        let lo = 1u64 << (bits - 1);
        let hi = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        lo + self.next() % (hi - lo + 1)
    }
}

fn for_each_case(test: impl Fn(&mut TestRng, u64)) {
    for case in 0..CASES {
        let mut rng = TestRng(0x0B5E ^ case.wrapping_mul(0x2545F4914F6CDD1D));
        test(&mut rng, case);
    }
}

#[test]
fn bucket_edges_are_monotone_and_contiguous() {
    // Bucket i's range starts exactly one past bucket i-1's end, and the
    // edges strictly increase — no gaps, no overlaps, full u64 coverage.
    assert_eq!(bucket_lower(0), 0);
    assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    for i in 1..BUCKETS {
        assert!(
            bucket_lower(i) > bucket_upper(i - 1) || bucket_upper(i - 1) == bucket_lower(i) - 1,
            "gap/overlap at bucket {i}"
        );
        assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1, "bucket {i} edge");
        assert!(bucket_lower(i) <= bucket_upper(i), "inverted bucket {i}");
        assert!(bucket_upper(i - 1) < bucket_upper(i), "non-monotone at {i}");
    }
}

#[test]
fn every_value_lands_inside_its_bucket() {
    for_each_case(|rng, case| {
        let v = rng.spread();
        let i = bucket_index(v);
        assert!(i < BUCKETS, "case {case}: index {i} out of range for {v}");
        assert!(
            (bucket_lower(i)..=bucket_upper(i)).contains(&v),
            "case {case}: {v} outside bucket {i} [{}, {}]",
            bucket_lower(i),
            bucket_upper(i)
        );
    });
}

#[test]
fn no_sample_is_lost_and_count_sum_recover_exactly() {
    for_each_case(|rng, case| {
        let registry = Arc::new(MetricsRegistry::new());
        let id = registry.register("t.h", MetricKind::Histogram);
        let n = rng.range(1, 200);
        let mut expected_count = 0u64;
        let mut expected_sum = 0u128;
        for _ in 0..n {
            let v = rng.spread();
            registry.observe(id, v);
            expected_count += 1;
            expected_sum += v as u128;
        }
        let snap = registry.snapshot(true);
        let h = snap[0].histogram.as_ref().expect("histogram snapshot");
        // Conservation: bucket counts sum to the observation count.
        assert_eq!(
            h.buckets.iter().sum::<u64>(),
            expected_count,
            "case {case}: samples lost"
        );
        assert_eq!(h.count, expected_count, "case {case}: count mismatch");
        // Sum recovers exactly (modulo u64 wrap, which the atomic shares).
        assert_eq!(h.sum, expected_sum as u64, "case {case}: sum mismatch");
    });
}

#[test]
fn bucketed_samples_bound_the_true_values() {
    // Replaying the snapshot's buckets as (count, lower, upper) triples
    // brackets the true sum — the guarantee quantile estimates rest on.
    for_each_case(|rng, case| {
        let registry = Arc::new(MetricsRegistry::new());
        let id = registry.register("t.h", MetricKind::Histogram);
        let n = rng.range(1, 100);
        let mut true_sum = 0u128;
        for _ in 0..n {
            // Cap at 2^32 so the upper-bound sum cannot overflow u128.
            let v = rng.spread() & 0xFFFF_FFFF;
            registry.observe(id, v);
            true_sum += v as u128;
        }
        let snap = registry.snapshot(true);
        let h = snap[0].histogram.as_ref().expect("histogram snapshot");
        let lower: u128 = h
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as u128 * bucket_lower(i) as u128)
            .sum();
        let upper: u128 = h
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c as u128 * bucket_upper(i) as u128)
            .sum();
        assert!(
            lower <= true_sum && true_sum <= upper,
            "case {case}: true sum {true_sum} outside bucket bounds [{lower}, {upper}]"
        );
    });
}
