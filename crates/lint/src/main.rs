//! `vcdn-lint` CLI.
//!
//! ```text
//! vcdn-lint --check [--json] [--root <dir>]   # exit 0 clean, 1 findings, 2 usage
//! vcdn-lint --explain <rule>
//! vcdn-lint --list-rules
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use vcdn_lint::rules::rule_by_name;
use vcdn_lint::{check_workspace, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => mode = Mode::Check,
            "--json" => json = true,
            "--list-rules" => mode = Mode::ListRules,
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--explain requires a rule name; try --list-rules");
                    return ExitCode::from(2);
                };
                mode = Mode::Explain(name.clone());
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--root requires a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match mode {
        Mode::ListRules => {
            for r in RULES {
                println!("{:<14} {}", r.name, r.summary);
            }
            ExitCode::SUCCESS
        }
        Mode::Explain(name) => match rule_by_name(&name) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.name, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown rule `{name}`; known rules:");
                for r in RULES {
                    eprintln!("  {}", r.name);
                }
                ExitCode::from(2)
            }
        },
        Mode::Check => run_check(root, json),
    }
}

enum Mode {
    Check,
    ListRules,
    Explain(String),
}

fn run_check(root: Option<PathBuf>, json: bool) -> ExitCode {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match vcdn_lint::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "no workspace root found above {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match check_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vcdn-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        // Machine mode: stdout is exactly one JSON document, diagnostics
        // stay on stderr, exit codes are unchanged.
        print!("{}", report.to_json());
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for e in &report.allow_errors {
        eprintln!("{e}");
    }
    for f in &report.findings {
        println!(
            "{}:{}: [{}] {} — `{}`",
            f.file, f.line, f.rule, f.message, f.snippet
        );
    }
    if report.is_clean() {
        eprintln!(
            "vcdn-lint: clean — {} files scanned, {} finding(s) suppressed by lint.allow",
            report.files_scanned, report.suppressed
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "vcdn-lint: {} finding(s), {} allowlist error(s) ({} files scanned, {} suppressed)",
            report.findings.len(),
            report.allow_errors.len(),
            report.files_scanned,
            report.suppressed
        );
        ExitCode::FAILURE
    }
}

fn print_usage() {
    eprintln!(
        "vcdn-lint: workspace static analysis for vcdn

USAGE:
  vcdn-lint --check [--root <dir>]   check the workspace (default mode)
  vcdn-lint --check --json ...       same, but emit one JSON document on stdout
  vcdn-lint --explain <rule>         print a rule's rationale and fixes
  vcdn-lint --list-rules             list rule names and summaries

Exit codes: 0 clean, 1 findings or allowlist errors, 2 usage/IO error.
Suppressions live in <root>/lint.allow: `rule | path | needle | justification`."
    );
}
