//! The rule engine: five workspace-specific rules over the token stream.
//!
//! Scoping conventions shared by all rules:
//!
//! * **Test code is exempt** where a rule says "non-test": anything under
//!   an item carrying `#[cfg(test)]` (or `#[test]`) is masked out, and the
//!   workspace walker never feeds `tests/` or `benches/` directories.
//! * **Hot regions** are the bodies of functions announced by a standalone
//!   `// lint: hot` marker comment; the marker binds to the next `fn`.
//! * Rules are scoped to crates by directory name under `crates/`
//!   (`core`, `sim`, …); the root package scans as `vcdn`.

use crate::lexer::{Lexed, Tok, TokKind};

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The matched source snippet (what `lint.allow` needles match on).
    pub snippet: String,
    /// Human-oriented one-liner.
    pub message: String,
}

/// A rule's catalogue entry (`--list-rules` / `--explain`).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule name, used in diagnostics and `lint.allow`.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Full explanation: what, why, and how to fix or suppress.
    pub explain: &'static str,
}

/// The rule catalogue.
pub const RULES: &[Rule] = &[
    Rule {
        name: "determinism",
        summary: "no wall clocks, OS randomness or environment reads in core/sim/obs library code",
        explain: "\
WHAT  Forbids SystemTime, Instant::now, thread_rng/RandomState,
      std::env::var and available_parallelism in non-test library code of
      crates/core, crates/sim and crates/obs.
WHY   Replay telemetry is cmp-checked bit-identical across worker counts
      and hashers (CI: 1-vs-N workers, fasthash-vs-std). One stray clock or
      environment read silently breaks that contract for every policy.
FIX   Thread timestamps in from the trace (vcdn_types::Timestamp); derive
      randomness from vcdn_trace::DetRng with an explicit seed. Bench
      binaries (crates/bench) are exempt and may time freely.
ALLOW Timing that is provably reporting-only (excluded from deterministic
      payloads) may be suppressed in lint.allow with a justification.",
    },
    Rule {
        name: "hot-path",
        summary: "no allocation or std-hash containers inside `// lint: hot` functions",
        explain: "\
WHAT  Inside a function marked with a standalone `// lint: hot` comment,
      forbids HashMap/HashSet/BTreeMap mentions, format!, vec!,
      Vec::new/with_capacity, String::new/from, Box::new, and the methods
      .clone() / .to_string() / .to_owned() / .to_vec() / .collect().
WHY   The decide/evict/admission paths of all four policies are
      allocation-free by construction (PR 2: scratch buffers, FastMap,
      keyed sets); BENCH_PR2.json tracks the resulting throughput. A
      single format! or HashMap::new in a decide path regresses every
      replay by an allocator round-trip per request.
FIX   Reuse scratch buffers owned by the policy struct; use
      vcdn_types::{FastMap, FastSet} declared outside the hot function;
      return iterators instead of collecting.
ALLOW The `evicted` list handed to ServeOutcome is owned by the decision
      by API contract; its empty-Vec construction is the sanctioned
      allowlisted exception (Vec::new allocates nothing until pushed).",
    },
    Rule {
        name: "float-eq",
        summary: "no direct ==/!= against float literals; use vcdn_types::float helpers",
        explain: "\
WHAT  Forbids == and != where either operand is a floating-point literal,
      in non-test code across the whole workspace.
WHY   Eq. 6-7 (Cafe) and Eq. 13-14 (Psychic) compare accumulated f64
      costs; raw equality on such values is either a rounding bug or an
      undocumented exactness assumption. Both deserve a named helper.
FIX   vcdn_types::float::approx_eq for tolerance comparison of computed
      costs; vcdn_types::float::exactly_zero for intentional bitwise
      zero guards (sums of non-negatives, config sentinels).
ALLOW Exactness-critical numerical kernels (e.g. simplex pivot
      cancellation in dependency-free vcdn-lp) may suppress with a
      justification instead of taking a vcdn-types dependency.",
    },
    Rule {
        name: "panic",
        summary: "no unwrap/expect/panic!/literal indexing in core/sim library code",
        explain: "\
WHAT  Forbids .unwrap(), .expect(), panic!, unreachable!, todo!,
      unimplemented! and indexing-by-integer-literal (x[0]) in non-test
      library code of crates/core and crates/sim.
WHY   Policies run inside million-request replays and (eventually) a
      serving path; a panic tears down the whole experiment grid. assert!
      remains allowed: contract violations should fail loudly, but
      recoverable states must not be expressed as unwrap.
FIX   Return Result (see CafeCache try-constructors), use let-else /
      match with a safe fallback, or f64::total_cmp for comparator
      positions that previously unwrapped partial_cmp.
ALLOW Sites where the invariant is locally provable and a fallback would
      mask real corruption may be suppressed with a justification.",
    },
    Rule {
        name: "determinism-flow",
        summary: "unordered-container iteration must not reach output sinks unsanitized",
        explain: "\
WHAT  AST-lite taint analysis (crates/core, crates/sim, crates/obs):
      values flowing from FastMap/FastSet/HashMap/HashSet iteration
      (.iter/.keys/.values/.drain/.into_iter/…) may not reach an output
      sink — writes into exported fields (.push/.extend/.append),
      write!/writeln!/print! macros, or json/serialize/emit/render calls
      — unless the flow passes a sanitizer first: an explicit sort
      (sort/sort_by/sort_unstable_by_key/…), collection into a BTreeMap/
      BTreeSet, or the vcdn_types::det_iter helpers.
WHY   Replay output is cmp-checked bit-identical across worker counts
      AND hashers (the std-hash CI leg swaps FxHash for SipHash).
      Hash-map iteration order is hasher-dependent, so one unsorted
      iteration that reaches a serialized bundle breaks the contract in
      a way no single-configuration test can see.
FIX   Iterate via vcdn_types::det_iter (key-sorted), or collect and sort
      explicitly before the sink; order-insensitive folds (sum, count,
      min/max, all/any) are recognized and stay clean.
ALLOW Flows that are provably order-independent beyond the recognized
      terminals (e.g. max-reduction written by hand) may be suppressed
      with a justification.",
    },
    Rule {
        name: "lock-discipline",
        summary: "leaf-level lock scopes and paired condvar waits in vcdn_sim",
        explain: "\
WHAT  In crates/sim library code: while a mutex guard from x.lock() is
      live in scope, no other .lock() may be taken (leaf-level scopes —
      this subsumes the DESIGN.md §7 order 'never the dispatcher queue
      mutex while a shard lock is held' and bans self-deadlocking
      double-locks); Condvar.wait(guard) must consume a guard that is
      live in the same scope and belongs to the same object as the
      condvar (the BatchQueue state/can_push/can_pop pattern).
WHY   The engine's deadlock-freedom argument is structural: every lock
      scope is a leaf, so no lock-order cycle can exist. One nested
      acquire silently reintroduces the possibility; a condvar waiting
      under a foreign mutex loses its wakeups.
FIX   Narrow the first guard's scope (drop(guard) or a block) before the
      second acquisition; wait only on the guard of the condvar's own
      paired mutex.
ALLOW Intentional two-lock algorithms must document their global order
      in DESIGN.md §7 and suppress with a justification referencing it.",
    },
    Rule {
        name: "clock-arith",
        summary: "no unchecked + - * on ms/ns clock and byte-counter identifiers",
        explain: "\
WHAT  Flags raw `+ - *` and `+= -= *=` where an operand is an integer-
      classified identifier matching the counter naming convention
      (`ms`, `ns`, `bytes`, or a `_ms`/`_ns`/`_bytes` suffix), unless a
      `// lint: wrap-ok` marker sits on the same line or the line above.
      Identifiers whose type cannot be resolved, and any expression with
      a float operand, stay silent.
WHY   Trace clocks and byte counters accumulate over month-long traces;
      debug builds panic on overflow while release builds wrap silently,
      corrupting replay metrics in a way the determinism harness cannot
      catch (the wrap is deterministic too).
FIX   saturating_add/saturating_sub/saturating_mul for metric
      accumulation, checked_* where overflow must be surfaced,
      wrapping_* with a `// lint: wrap-ok` marker where wrap semantics
      are intended (hashing, ring indices).
ALLOW Prefer the wrap-ok marker at the site; lint.allow entries are
      accepted for generated or vendored code.",
    },
    Rule {
        name: "feature-gate",
        summary: "every #[cfg(feature = \"…\")] name must be declared in that crate's Cargo.toml",
        explain: "\
WHAT  Every `feature = \"name\"` occurrence in a crate's source must name
      a feature declared in that crate's Cargo.toml [features] table.
WHY   cfg on an undeclared feature silently compiles the gated code out
      forever — the std-hash determinism check would quietly stop
      checking anything if the feature name drifted.
FIX   Declare the feature in Cargo.toml or fix the typo. (Cargo's own
      unexpected_cfgs lint covers some of this, but only for targets that
      compile; vcdn-lint checks every scanned file uniformly.)
ALLOW Should never need suppression; entries are accepted for symmetry.",
    },
];

/// Returns the catalogue entry for `name`, if any.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Per-file facts the rules need, computed once.
pub struct FileInput<'a> {
    /// Workspace-relative path (forward slashes).
    pub rel_path: &'a str,
    /// Crate directory name under `crates/` (or `vcdn` for the root).
    pub crate_name: &'a str,
    /// Features declared in the owning crate's `Cargo.toml`.
    pub declared_features: &'a [String],
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// AST-lite parse of the same source (see [`crate::ast`]).
    pub ast: &'a crate::ast::Ast,
}

/// Runs every rule on one file, appending findings.
pub fn check_file(input: &FileInput<'_>, out: &mut Vec<Finding>) {
    let toks = &input.lexed.toks;
    let test_mask = test_mask(toks);
    let hot_mask = hot_mask(input.lexed);

    determinism_rule(input, toks, &test_mask, out);
    hot_path_rule(input, toks, &hot_mask, out);
    float_eq_rule(input, toks, &test_mask, out);
    panic_rule(input, toks, &test_mask, out);
    feature_gate_rule(input, toks, out);

    // AST-lite rule families (each scopes itself by crate internally).
    crate::flow::check(input, input.ast, out);
    crate::locks::check(input, input.ast, out);
    crate::arith::check(input, input.ast, out);
}

// ---------------------------------------------------------------- masks --

/// Marks every token inside an item annotated `#[cfg(test)]` / `#[test]`.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(is_punct(toks, i, "#") && is_punct(toks, i + 1, "[")) {
            i += 1;
            continue;
        }
        let attr_end = match close_bracket(toks, i + 1) {
            Some(e) => e,
            None => break,
        };
        if !attr_is_test(&toks[i + 2..attr_end]) {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then mask the item itself.
        let mut j = attr_end + 1;
        while is_punct(toks, j, "#") && is_punct(toks, j + 1, "[") {
            match close_bracket(toks, j + 1) {
                Some(e) => j = e + 1,
                None => return mask,
            }
        }
        let item_end = item_end(toks, j);
        for m in mask.iter_mut().take(item_end + 1).skip(i) {
            *m = true;
        }
        i = item_end + 1;
    }
    mask
}

/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, or bare `#[test]`.
fn attr_is_test(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.kind == TokKind::Ident && t.text == "test" => attr.len() == 1,
        Some(t) if t.kind == TokKind::Ident && t.text == "cfg" => attr
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => false,
    }
}

/// Index of the token ending the item that starts at `start`: the matching
/// `}` of its first top-level `{`, or the first top-level `;`.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i32;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" if toks[j].kind == TokKind::Punct => {
                if let Some(e) = close_brace(toks, j) {
                    return e;
                }
                return toks.len() - 1;
            }
            "(" | "[" if toks[j].kind == TokKind::Punct => depth += 1,
            ")" | "]" if toks[j].kind == TokKind::Punct => depth -= 1,
            ";" if toks[j].kind == TokKind::Punct && depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Marks every token inside a function announced by `// lint: hot`.
fn hot_mask(lexed: &Lexed) -> Vec<bool> {
    let toks = &lexed.toks;
    let mut mask = vec![false; toks.len()];
    for &marker_line in &lexed.hot_marker_lines {
        // First `fn` token after the marker line.
        let Some(fn_idx) = toks
            .iter()
            .position(|t| t.line > marker_line && t.kind == TokKind::Ident && t.text == "fn")
        else {
            continue;
        };
        // Its body: first `{` after the signature, brace-matched.
        let Some(open) =
            (fn_idx..toks.len()).find(|&j| toks[j].kind == TokKind::Punct && toks[j].text == "{")
        else {
            continue;
        };
        let end = close_brace(toks, open).unwrap_or(toks.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(open) {
            *m = true;
        }
    }
    mask
}

fn close_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

fn close_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

// ------------------------------------------------------------- matching --

fn is_punct(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// A needle: alternating idents and puncts matched exactly at a position.
#[derive(Clone, Copy)]
struct Needle {
    /// `(is_ident, text)` pairs, matched consecutively.
    pat: &'static [(bool, &'static str)],
    /// Snippet to report (human-oriented, also the allow-needle target).
    show: &'static str,
}

fn needle_at(toks: &[Tok], i: usize, n: &Needle) -> bool {
    n.pat.iter().enumerate().all(|(k, &(ident, text))| {
        if ident {
            is_ident(toks, i + k, text)
        } else {
            is_punct(toks, i + k, text)
        }
    })
}

// --------------------------------------------------------------- rules ---

const DETERMINISM_CRATES: &[&str] = &["core", "sim", "obs"];
const PANIC_CRATES: &[&str] = &["core", "sim"];

fn determinism_rule(
    input: &FileInput<'_>,
    toks: &[Tok],
    test_mask: &[bool],
    out: &mut Vec<Finding>,
) {
    if !DETERMINISM_CRATES.contains(&input.crate_name) {
        return;
    }
    const NEEDLES: &[Needle] = &[
        Needle {
            pat: &[(true, "SystemTime")],
            show: "SystemTime",
        },
        Needle {
            pat: &[(true, "Instant"), (false, "::"), (true, "now")],
            show: "Instant::now",
        },
        Needle {
            pat: &[(true, "thread_rng")],
            show: "thread_rng",
        },
        Needle {
            pat: &[(true, "RandomState")],
            show: "RandomState",
        },
        Needle {
            pat: &[(true, "from_entropy")],
            show: "from_entropy",
        },
        Needle {
            pat: &[(true, "env"), (false, "::"), (true, "var")],
            show: "env::var",
        },
        Needle {
            pat: &[(true, "env"), (false, "::"), (true, "var_os")],
            show: "env::var_os",
        },
        Needle {
            pat: &[(true, "available_parallelism")],
            show: "available_parallelism",
        },
    ];
    scan_needles(
        input,
        toks,
        Some(test_mask),
        NEEDLES,
        "determinism",
        out,
        |show| format!("{show} makes library replay output time- or environment-dependent"),
    );
}

fn hot_path_rule(input: &FileInput<'_>, toks: &[Tok], hot_mask: &[bool], out: &mut Vec<Finding>) {
    if !hot_mask.contains(&true) {
        return;
    }
    const NEEDLES: &[Needle] = &[
        Needle {
            pat: &[(true, "HashMap")],
            show: "HashMap",
        },
        Needle {
            pat: &[(true, "HashSet")],
            show: "HashSet",
        },
        Needle {
            pat: &[(true, "BTreeMap")],
            show: "BTreeMap",
        },
        Needle {
            pat: &[(true, "format"), (false, "!")],
            show: "format!",
        },
        Needle {
            pat: &[(true, "vec"), (false, "!")],
            show: "vec!",
        },
        Needle {
            pat: &[(true, "Vec"), (false, "::"), (true, "new")],
            show: "Vec::new",
        },
        Needle {
            pat: &[(true, "Vec"), (false, "::"), (true, "with_capacity")],
            show: "Vec::with_capacity",
        },
        Needle {
            pat: &[(true, "String"), (false, "::"), (true, "new")],
            show: "String::new",
        },
        Needle {
            pat: &[(true, "String"), (false, "::"), (true, "from")],
            show: "String::from",
        },
        Needle {
            pat: &[(true, "Box"), (false, "::"), (true, "new")],
            show: "Box::new",
        },
        Needle {
            pat: &[(false, "."), (true, "to_string"), (false, "(")],
            show: ".to_string()",
        },
        Needle {
            pat: &[(false, "."), (true, "to_owned"), (false, "(")],
            show: ".to_owned()",
        },
        Needle {
            pat: &[(false, "."), (true, "to_vec"), (false, "(")],
            show: ".to_vec()",
        },
        Needle {
            pat: &[(false, "."), (true, "clone"), (false, "(")],
            show: ".clone()",
        },
        Needle {
            pat: &[(false, "."), (true, "collect")],
            show: ".collect",
        },
    ];
    // Restrict the scan to hot tokens by masking everything else "test".
    let inverted: Vec<bool> = hot_mask.iter().map(|h| !h).collect();
    scan_needles(
        input,
        toks,
        Some(&inverted),
        NEEDLES,
        "hot-path",
        out,
        |show| format!("{show} inside a `// lint: hot` function (allocation-free decide paths)"),
    );
}

fn float_eq_rule(input: &FileInput<'_>, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if test_mask[i] || t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let float_neighbour = [i.wrapping_sub(1), i + 1]
            .iter()
            .any(|&j| toks.get(j).is_some_and(|t| t.kind == TokKind::Float));
        if float_neighbour {
            out.push(Finding {
                rule: "float-eq",
                file: input.rel_path.to_string(),
                line: t.line,
                snippet: format!("{} float literal", t.text),
                message: format!(
                    "direct `{}` on f64; use vcdn_types::float (approx_eq / exactly_zero)",
                    t.text
                ),
            });
        }
    }
}

fn panic_rule(input: &FileInput<'_>, toks: &[Tok], test_mask: &[bool], out: &mut Vec<Finding>) {
    if !PANIC_CRATES.contains(&input.crate_name) {
        return;
    }
    const NEEDLES: &[Needle] = &[
        Needle {
            pat: &[(false, "."), (true, "unwrap"), (false, "(")],
            show: ".unwrap()",
        },
        Needle {
            pat: &[(false, "."), (true, "expect"), (false, "(")],
            show: ".expect(",
        },
        Needle {
            pat: &[(true, "panic"), (false, "!")],
            show: "panic!",
        },
        Needle {
            pat: &[(true, "unreachable"), (false, "!")],
            show: "unreachable!",
        },
        Needle {
            pat: &[(true, "todo"), (false, "!")],
            show: "todo!",
        },
        Needle {
            pat: &[(true, "unimplemented"), (false, "!")],
            show: "unimplemented!",
        },
    ];
    scan_needles(
        input,
        toks,
        Some(test_mask),
        NEEDLES,
        "panic",
        out,
        |show| format!("{show} in library code; return Result or use a guarded match"),
    );

    // Indexing by integer literal: `x[0]`, `f()[1]`, `a[2][3]`.
    for i in 0..toks.len() {
        if test_mask[i] || !is_punct(toks, i, "[") {
            continue;
        }
        let indexable_before = i > 0
            && (toks[i - 1].kind == TokKind::Ident
                || (toks[i - 1].kind == TokKind::Punct
                    && (toks[i - 1].text == "]" || toks[i - 1].text == ")")));
        // Exclude attribute openers `#[` and `let`/`if let` slice patterns.
        let attr_before = i > 0 && is_punct(toks, i - 1, "#");
        let pattern_pos = i > 0 && (is_ident(toks, i - 1, "let") || is_ident(toks, i - 1, "in"));
        if indexable_before
            && !attr_before
            && !pattern_pos
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Int)
            && is_punct(toks, i + 2, "]")
        {
            out.push(Finding {
                rule: "panic",
                file: input.rel_path.to_string(),
                line: toks[i].line,
                snippet: format!("[{}]", toks[i + 1].text),
                message: format!(
                    "indexing by literal `[{}]` can panic; use .get({}) or a slice pattern",
                    toks[i + 1].text,
                    toks[i + 1].text
                ),
            });
        }
    }
}

fn feature_gate_rule(input: &FileInput<'_>, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if is_ident(toks, i, "feature")
            && is_punct(toks, i + 1, "=")
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
        {
            let name = &toks[i + 2].text;
            if !input.declared_features.iter().any(|f| f == name) {
                out.push(Finding {
                    rule: "feature-gate",
                    file: input.rel_path.to_string(),
                    line: toks[i].line,
                    snippet: format!("feature = \"{name}\""),
                    message: format!(
                        "feature \"{name}\" is not declared in {}'s Cargo.toml [features]",
                        input.crate_name
                    ),
                });
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_needles(
    input: &FileInput<'_>,
    toks: &[Tok],
    skip_mask: Option<&[bool]>,
    needles: &[Needle],
    rule: &'static str,
    out: &mut Vec<Finding>,
    message: impl Fn(&str) -> String,
) {
    for i in 0..toks.len() {
        if skip_mask.is_some_and(|m| m[i]) {
            continue;
        }
        for n in needles {
            if needle_at(toks, i, n) {
                out.push(Finding {
                    rule,
                    file: input.rel_path.to_string(),
                    line: toks[i].line,
                    snippet: n.show.to_string(),
                    message: message(n.show),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(crate_name: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ast = crate::ast::parse(&lexed);
        let mut out = Vec::new();
        check_file(
            &FileInput {
                rel_path: "crates/x/src/lib.rs",
                crate_name,
                declared_features: &["std-hash".to_string()],
                lexed: &lexed,
                ast: &ast,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn determinism_flags_clocks_only_in_scoped_crates() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(check("core", src).len(), 1);
        assert_eq!(check("sim", src)[0].snippet, "Instant::now");
        assert!(check("trace", src).is_empty(), "trace is out of scope");
        assert!(check("bench", src).is_empty(), "bench is exempt");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); let t = Instant::now(); } }";
        assert!(check("core", src).is_empty());
        // ...but the same body outside the test mod is flagged.
        let src = "mod m { fn f() { x.unwrap(); } }";
        assert_eq!(check("core", src).len(), 1);
    }

    #[test]
    fn hot_rule_binds_marker_to_next_fn_only() {
        let src = "\
// lint: hot
fn hot_fn(&mut self) { let v = Vec::new(); s.clone(); }
fn cold_fn() { let v = Vec::new(); format!(\"x\"); }";
        let f = check("trace", src);
        let snippets: Vec<&str> = f.iter().map(|f| f.snippet.as_str()).collect();
        assert_eq!(snippets, vec!["Vec::new", ".clone()"]);
        assert!(f.iter().all(|f| f.rule == "hot-path"));
    }

    #[test]
    fn float_eq_flags_literal_comparisons() {
        let f = check("lp", "fn f(x: f64) -> bool { x == 0.0 || 1.5 != x }");
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("approx_eq"));
        // Non-literal comparisons and orderings pass.
        assert!(check("lp", "fn f(a: f64, b: f64) -> bool { a <= b }").is_empty());
        // Integer comparisons pass.
        assert!(check("lp", "fn f(n: u64) -> bool { n == 0 }").is_empty());
    }

    #[test]
    fn panic_rule_flags_unwrap_and_literal_indexing() {
        let f = check("sim", "fn f(v: &[u8]) -> u8 { v.first().unwrap(); v[0] }");
        let snippets: Vec<&str> = f.iter().map(|f| f.snippet.as_str()).collect();
        assert_eq!(snippets, vec![".unwrap()", "[0]"]);
        // unwrap_or / expect-in-attribute are fine.
        let ok = "#[expect(clippy::x)]\nfn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }";
        assert!(check("sim", ok).is_empty());
        // assert! is allowed (contract checks fail loudly by design).
        assert!(check("core", "fn f(n: u64) { assert!(n > 0, \"n\"); }").is_empty());
        // Variable indexing and array types are fine.
        assert!(check("core", "fn f(v: &[u8], i: usize) -> u8 { v[i] }").is_empty());
        assert!(check("core", "fn f() { let t: [u8; 4] = [0u8; 4]; }").is_empty());
    }

    #[test]
    fn feature_gate_checks_declarations() {
        let ok = "#[cfg(feature = \"std-hash\")]\nfn f() {}";
        assert!(check("types", ok).is_empty());
        let bad = "#[cfg(feature = \"std-hsah\")]\nfn f() {}";
        let f = check("types", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "feature-gate");
        assert!(f[0].snippet.contains("std-hsah"));
    }

    #[test]
    fn needles_in_strings_and_comments_do_not_fire() {
        let src = "fn f() { let s = \"call .unwrap() or panic!\"; } // .unwrap()";
        assert!(check("core", src).is_empty());
    }

    #[test]
    fn every_rule_has_explain_text() {
        for r in RULES {
            assert!(rule_by_name(r.name).is_some());
            assert!(r.explain.contains("WHAT"));
            assert!(r.explain.contains("ALLOW"));
        }
    }
}
