//! AST-lite: a tolerant recursive-descent parser over the lexed token
//! stream.
//!
//! The parser produces a **simplified** item/expression tree — functions,
//! impls, modules, structs, blocks, let bindings, calls, method chains,
//! match arms, closures, binary/assignment operators and casts — which is
//! exactly the shape the flow rules (`determinism-flow`,
//! `lock-discipline`, `clock-arith`) walk per function. It is *not* a
//! full Rust grammar:
//!
//! * patterns are skipped (only their bound identifiers are collected);
//! * types are captured as raw token text (enough to classify
//!   `FastMap<…>` vs `u64` vs `f64`);
//! * anything unparseable degrades to [`ExprKind::Other`] after skipping
//!   to a sync point — the parser never fails and never panics, so one
//!   exotic construct cannot take a whole file out of analysis.
//!
//! Determinism: parsing is a pure function of the token stream, so
//! diagnostics derived from the tree are stable across runs and hosts.

use crate::lexer::{Lexed, Tok, TokKind};

/// A parsed file: the flat list of top-level items.
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item (fn, impl, mod, struct, or anything else).
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// Whether the item carries `#[cfg(test)]` / `#[test]` (directly; the
    /// walkers propagate test-ness down into nested items).
    pub is_test: bool,
}

/// The item kinds the rules distinguish.
#[derive(Debug)]
pub enum ItemKind {
    /// A free or associated function with an optional body.
    Fn(FnItem),
    /// `impl [Trait for] Type { items }`.
    Impl {
        /// The `Self` type's last path segment (`RankIndex`, …).
        type_name: String,
        /// Associated items.
        items: Vec<Item>,
    },
    /// An inline `mod name { items }` (out-of-line mods are `Other`).
    Mod {
        /// Module name.
        name: String,
        /// Nested items.
        items: Vec<Item>,
    },
    /// `struct Name { fields }` (tuple/unit structs have no fields).
    Struct {
        /// Struct name.
        name: String,
        /// Named fields with raw type text.
        fields: Vec<FieldDecl>,
    },
    /// Any other item (use, enum, trait, const, …), skipped structurally.
    Other,
}

/// A named field or parameter with its raw type text.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Field/parameter name.
    pub name: String,
    /// Raw type text, single-space separated (`FastMap < ChunkId , u32 >`
    /// renders as `FastMap<ChunkId,u32>` — see [`type_text`]).
    pub ty: String,
    /// 1-based line.
    pub line: u32,
}

/// A function: name, parameters, optional body.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Parameters (excluding bare `self`; `self: Type` forms excluded too).
    pub params: Vec<FieldDecl>,
    /// Body block; `None` for trait-method declarations.
    pub body: Option<Block>,
}

/// A `{ … }` block of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat>[: ty] [= init];` — bound names are the pattern's
    /// lowercase identifiers (a simple `let x = …` binds exactly `x`).
    Let {
        /// Identifiers the pattern binds.
        names: Vec<String>,
        /// Raw annotated type text, if any.
        ty: Option<String>,
        /// Initializer expression, if any.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (fn-in-fn, mod, …).
    Item(Item),
}

/// One expression node.
#[derive(Debug)]
pub struct Expr {
    /// The expression's shape.
    pub kind: ExprKind,
    /// 1-based line of the expression's first token.
    pub line: u32,
}

/// A match arm: bound pattern identifiers plus the arm body.
#[derive(Debug)]
pub struct Arm {
    /// Lowercase identifiers appearing in the pattern (bound names,
    /// approximately — guards are skipped together with the pattern).
    pub pat_names: Vec<String>,
    /// The arm's body expression.
    pub body: Expr,
}

/// The simplified expression grammar.
#[derive(Debug)]
pub enum ExprKind {
    /// `a` or `a::b::c` (generic arguments stripped).
    Path(Vec<String>),
    /// `base.name` / `base.0` without call parentheses.
    Field(Box<Expr>, String),
    /// `base.name::<T>(args)`.
    MethodCall {
        /// Receiver.
        base: Box<Expr>,
        /// Method name.
        name: String,
        /// Raw turbofish text (empty when absent).
        turbofish: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `func(args)`.
    Call {
        /// Callee (usually a `Path`).
        func: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `name!(args)` / `name![…]`; brace-delimited macros have no args.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Best-effort parsed arguments.
        args: Vec<Expr>,
    },
    /// `lhs op rhs` for arithmetic/bit/comparison/logic/range operators.
    Binary {
        /// Operator text (`+`, `-`, `*`, `==`, `..`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `target op value` where op is `=` or a compound `+=`-family op.
    Assign {
        /// Operator text (`=`, `+=`, …).
        op: String,
        /// Assignment target.
        target: Box<Expr>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// `expr as Ty`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Raw target type text.
        ty: String,
    },
    /// `-x`, `!x`, `*x`, `&x`.
    Unary {
        /// Operator character.
        op: char,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A literal token.
    Lit(TokKind, String),
    /// `|params| body` (also `move |…|`).
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `{ … }` block expression.
    Block(Block),
    /// `if [let pat =] cond { … } [else …]`.
    If {
        /// Condition (the expression after `=` for if-let).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else branch (`Block` or nested `If`).
        else_: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
    },
    /// `for pat in iter { … }`.
    For {
        /// Pattern-bound names.
        pat_names: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `while [let pat =] cond { … }`.
    While {
        /// Condition.
        cond: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `loop { … }`.
    Loop {
        /// Loop body.
        body: Block,
    },
    /// `return [expr]`.
    Return(Option<Box<Expr>>),
    /// `(a, b, …)` tuples, `[a, b]` arrays, parenthesised groups.
    Tuple(Vec<Expr>),
    /// `Path { field: expr, … }` struct literal.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// `(name, value)` pairs; shorthand fields have no value.
        fields: Vec<(String, Option<Expr>)>,
    },
    /// Anything the parser skipped.
    Other,
}

impl Expr {
    fn new(kind: ExprKind, line: u32) -> Expr {
        Expr { kind, line }
    }

    /// The last path segment when the expression is a bare path or field
    /// access (`self.video_chunks` → `video_chunks`), else `None`. This
    /// is the name the symbol-table rules key on.
    pub fn name_root(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Path(segs) => segs.last().map(String::as_str),
            ExprKind::Field(_, name) => Some(name.as_str()),
            ExprKind::Unary { expr, .. } => expr.name_root(),
            _ => None,
        }
    }
}

/// Parses a lexed file. Never fails: unparseable regions degrade to
/// [`ExprKind::Other`] / [`ItemKind::Other`].
pub fn parse(lexed: &Lexed) -> Ast {
    let mut p = Parser {
        t: &lexed.toks,
        i: 0,
    };
    Ast {
        items: p.items_until_close(),
    }
}

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
}

const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "mod",
    "use",
    "static",
    "type",
    "macro_rules",
    "extern",
];

impl Parser<'_> {
    // ------------------------------------------------------- primitives --

    fn done(&self) -> bool {
        self.i >= self.t.len()
    }

    fn cur(&self) -> Option<&Tok> {
        self.t.get(self.i)
    }

    fn nth(&self, k: usize) -> Option<&Tok> {
        self.t.get(self.i + k)
    }

    fn line(&self) -> u32 {
        self.cur().or_else(|| self.t.last()).map_or(1, |t| t.line)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn at_punct(&self, s: &str) -> bool {
        self.cur()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn nth_is_punct(&self, k: usize, s: &str) -> bool {
        self.nth(k)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.cur()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn at_any_ident(&self) -> bool {
        self.cur().is_some_and(|t| t.kind == TokKind::Ident)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        if self.at_any_ident() {
            let s = self.t[self.i].text.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    /// Skips tokens until (and including) the closing delimiter matching
    /// the opener currently under the cursor. No-op if not at an opener.
    fn skip_balanced(&mut self) {
        let close = match self.cur().map(|t| t.text.as_str()) {
            Some("(") => ")",
            Some("[") => "]",
            Some("{") => "}",
            _ => return,
        };
        let open = self.t[self.i].text.clone();
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
    }

    /// Skips a balanced `<…>` generic-argument list starting at `<`.
    /// Tolerates `>=`-style fused closers produced by the lexer.
    fn skip_angles(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<=" => depth += 1,
                    ">" | ">=" => {
                        depth -= 1;
                        if depth <= 0 {
                            self.bump();
                            return;
                        }
                    }
                    "(" | "[" => {
                        self.skip_balanced();
                        continue;
                    }
                    ";" | "{" | "}" => return, // runaway — bail without consuming
                    _ => {}
                }
            }
            self.bump();
        }
    }

    // ------------------------------------------------------------ items --

    /// Parses items until EOF or an unconsumed closing `}`.
    fn items_until_close(&mut self) -> Vec<Item> {
        let mut out = Vec::new();
        while !self.done() && !self.at_punct("}") {
            let before = self.i;
            if let Some(item) = self.item() {
                out.push(item);
            }
            if self.i == before {
                self.bump(); // always make progress
            }
        }
        out
    }

    fn item(&mut self) -> Option<Item> {
        let line = self.line();
        let mut is_test = false;
        // Attributes: `#[…]` and inner `#![…]`.
        while self.at_punct("#") {
            let save = self.i;
            self.bump();
            self.eat_punct("!");
            if self.at_punct("[") {
                let start = self.i;
                self.skip_balanced();
                if attr_is_test(&self.t[start + 1..self.i.saturating_sub(1)]) {
                    is_test = true;
                }
            } else {
                self.i = save;
                break;
            }
        }
        // Visibility and modifiers.
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced();
        }
        loop {
            if self.at_ident("const") {
                // `const fn` is a modifier; `const NAME: …` is an item.
                if self.nth(1).is_some_and(|t| {
                    t.kind == TokKind::Ident && (t.text == "fn" || t.text == "unsafe")
                }) {
                    self.bump();
                    continue;
                }
                // Const item: skip to `;`.
                self.skip_to_semi_or_brace();
                return Some(Item {
                    kind: ItemKind::Other,
                    line,
                    is_test,
                });
            }
            if self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("default") {
                self.bump();
                continue;
            }
            if self.at_ident("extern") {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokKind::Str) {
                    self.bump();
                }
                continue;
            }
            break;
        }

        if self.eat_ident("fn") {
            return Some(self.fn_item(line, is_test));
        }
        if self.eat_ident("struct") {
            return Some(self.struct_item(line, is_test));
        }
        if self.eat_ident("impl") {
            return Some(self.impl_item(line, is_test));
        }
        if self.eat_ident("mod") {
            let name = self.take_ident().unwrap_or_default();
            if self.at_punct("{") {
                self.bump();
                let items = self.items_until_close();
                self.eat_punct("}");
                return Some(Item {
                    kind: ItemKind::Mod { name, items },
                    line,
                    is_test,
                });
            }
            self.eat_punct(";");
            return Some(Item {
                kind: ItemKind::Other,
                line,
                is_test,
            });
        }
        // Everything else: consume one generic item shape.
        if self
            .cur()
            .is_some_and(|t| t.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&t.text.as_str()))
        {
            self.bump();
            self.skip_to_semi_or_brace();
            return Some(Item {
                kind: ItemKind::Other,
                line,
                is_test,
            });
        }
        // Not at an item start: let the caller make progress.
        None
    }

    /// Skips an item tail: to a top-level `;`, or through a top-level
    /// `{…}` body, whichever comes first.
    fn skip_to_semi_or_brace(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => {
                        self.bump();
                        return;
                    }
                    "{" if depth <= 0 => {
                        self.skip_balanced();
                        return;
                    }
                    "}" if depth <= 0 => return, // caller's closing brace
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn fn_item(&mut self, line: u32, is_test: bool) -> Item {
        let name = self.take_ident().unwrap_or_default();
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct("(") {
            params = self.param_list();
        }
        if self.eat_punct("->") {
            self.skip_type_until_body();
        }
        if self.at_ident("where") {
            self.skip_type_until_body();
        }
        let body = if self.at_punct("{") {
            Some(self.block())
        } else {
            self.eat_punct(";");
            None
        };
        Item {
            kind: ItemKind::Fn(FnItem { name, params, body }),
            line,
            is_test,
        }
    }

    /// Parses `( pat: Ty, … )`, returning named+typed params.
    fn param_list(&mut self) -> Vec<FieldDecl> {
        let mut out = Vec::new();
        if !self.eat_punct("(") {
            return out;
        }
        while !self.done() && !self.at_punct(")") {
            let line = self.line();
            // Pattern part: up to `:` or `,` or `)` at depth 0.
            let mut name = String::new();
            let mut depth = 0i32;
            let mut saw_colon = false;
            while let Some(t) = self.cur() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "(") | (TokKind::Punct, "[") | (TokKind::Punct, "<") => {
                        depth += 1
                    }
                    (TokKind::Punct, ")") | (TokKind::Punct, "]") | (TokKind::Punct, ">") => {
                        if t.text == ")" && depth == 0 {
                            break;
                        }
                        depth -= 1
                    }
                    (TokKind::Punct, ",") if depth == 0 => break,
                    (TokKind::Punct, ":") if depth == 0 => {
                        saw_colon = true;
                        break;
                    }
                    (TokKind::Ident, id) if name.is_empty() && id != "mut" && id != "ref" => {
                        name = id.to_string();
                    }
                    _ => {}
                }
                self.bump();
            }
            if saw_colon {
                self.bump(); // `:`
                let ty = self.type_text_until(&[",", ")"]);
                if !name.is_empty() && name != "self" {
                    out.push(FieldDecl { name, ty, line });
                }
            }
            if !self.eat_punct(",") && !self.at_punct(")") {
                // Stuck mid-parameter (exotic pattern): resync.
                if self.done() {
                    break;
                }
                self.bump();
            }
        }
        self.eat_punct(")");
        out
    }

    /// Captures raw type text until one of `stops` at depth 0.
    fn type_text_until(&mut self, stops: &[&str]) -> String {
        let mut depth = 0i32;
        let mut out = String::new();
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    s if depth == 0 && stops.contains(&s) => break,
                    "=" | ";" | "{" if depth == 0 => break,
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    ">=" => {
                        // Fused `>=`: closes an angle and, at depth 0 with
                        // `=` as a stop, ends the type.
                        if depth > 0 {
                            depth -= 1;
                            self.bump();
                            if depth == 0 {
                                break;
                            }
                            out.push('>');
                            continue;
                        }
                        break;
                    }
                    _ => {}
                }
            }
            if !out.is_empty() && self.t[self.i].kind == TokKind::Ident {
                let last = out.chars().last().unwrap_or(' ');
                if last.is_alphanumeric() || last == '_' {
                    out.push(' ');
                }
            }
            out.push_str(&self.t[self.i].text);
            self.bump();
        }
        out
    }

    /// Skips a return type / where clause: everything until the body `{`
    /// or a terminating `;` at depth 0.
    fn skip_type_until_body(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ">" => depth -= 1,
                    ">=" => depth -= 1,
                    "{" if depth <= 0 => return,
                    ";" if depth <= 0 => return,
                    "}" if depth <= 0 => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    fn struct_item(&mut self, line: u32, is_test: bool) -> Item {
        let name = self.take_ident().unwrap_or_default();
        if self.at_punct("<") {
            self.skip_angles();
        }
        if self.at_ident("where") {
            self.skip_type_until_body();
        }
        let mut fields = Vec::new();
        if self.at_punct("(") {
            // Tuple struct.
            self.skip_balanced();
            self.eat_punct(";");
        } else if self.at_punct("{") {
            self.bump();
            while !self.done() && !self.at_punct("}") {
                // Field attributes / visibility.
                while self.at_punct("#") {
                    self.bump();
                    if self.at_punct("[") {
                        self.skip_balanced();
                    }
                }
                if self.eat_ident("pub") && self.at_punct("(") {
                    self.skip_balanced();
                }
                let fline = self.line();
                let Some(fname) = self.take_ident() else {
                    self.bump();
                    continue;
                };
                if !self.eat_punct(":") {
                    continue;
                }
                let ty = self.type_text_until(&[",", "}"]);
                fields.push(FieldDecl {
                    name: fname,
                    ty,
                    line: fline,
                });
                self.eat_punct(",");
            }
            self.eat_punct("}");
        } else {
            self.eat_punct(";");
        }
        Item {
            kind: ItemKind::Struct { name, fields },
            line,
            is_test,
        }
    }

    fn impl_item(&mut self, line: u32, is_test: bool) -> Item {
        if self.at_punct("<") {
            self.skip_angles();
        }
        // `Trait for Type` or just `Type`: keep the last ident before the
        // body, skipping generic arguments.
        let mut type_name = String::new();
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "{") if depth <= 0 => break,
                (TokKind::Punct, ";") if depth <= 0 => {
                    self.bump();
                    return Item {
                        kind: ItemKind::Other,
                        line,
                        is_test,
                    };
                }
                (TokKind::Punct, "<") => depth += 1,
                (TokKind::Punct, ">") | (TokKind::Punct, ">=") => depth -= 1,
                (TokKind::Ident, "for") => type_name.clear(),
                (TokKind::Ident, "where") if depth <= 0 => {
                    self.skip_type_until_body();
                    continue;
                }
                (TokKind::Ident, id) if depth <= 0 => type_name = id.to_string(),
                _ => {}
            }
            self.bump();
        }
        let mut items = Vec::new();
        if self.at_punct("{") {
            self.bump();
            items = self.items_until_close();
            self.eat_punct("}");
        }
        Item {
            kind: ItemKind::Impl { type_name, items },
            line,
            is_test,
        }
    }

    // ------------------------------------------------- blocks and stmts --

    fn block(&mut self) -> Block {
        let line = self.line();
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            return Block { stmts, line };
        }
        while !self.done() && !self.at_punct("}") {
            let before = self.i;
            if self.eat_punct(";") {
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.let_stmt());
            } else if self.at_item_start() {
                if let Some(item) = self.item() {
                    stmts.push(Stmt::Item(item));
                }
            } else {
                let e = self.expr(false);
                stmts.push(Stmt::Expr(e));
                self.eat_punct(";");
            }
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct("}");
        Block { stmts, line }
    }

    /// Whether the cursor sits at something that must be an item (incl.
    /// attribute-prefixed items and visibility).
    fn at_item_start(&self) -> bool {
        if self.at_punct("#") && self.nth_is_punct(1, "[") {
            return true;
        }
        let Some(t) = self.cur() else { return false };
        if t.kind != TokKind::Ident {
            return false;
        }
        match t.text.as_str() {
            "pub" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "use" | "static"
            | "macro_rules" => true,
            "fn" => true,
            // `const` is an item only when followed by a name + `:`.
            "const" => self
                .nth(1)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text != "fn"),
            _ => false,
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        let mut names = Vec::new();
        let mut depth = 0i32;
        // Pattern: until `:`, `=`, or `;` at depth 0.
        while let Some(t) = self.cur() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, ":") | (TokKind::Punct, "=") | (TokKind::Punct, ";")
                    if depth == 0 =>
                {
                    break
                }
                (TokKind::Punct, "(") | (TokKind::Punct, "[") | (TokKind::Punct, "{") => depth += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") | (TokKind::Punct, "}") => depth -= 1,
                (TokKind::Ident, id) if is_binding_ident(id) => {
                    names.push(id.to_string());
                }
                _ => {}
            }
            self.bump();
        }
        let ty = if self.eat_punct(":") {
            Some(self.type_text_until(&[",", ")"]))
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            let e = self.expr(false);
            // let-else: `let … = expr else { … };`
            if self.at_ident("else") {
                self.bump();
                if self.at_punct("{") {
                    self.block();
                }
            }
            Some(e)
        } else {
            None
        };
        self.eat_punct(";");
        Stmt::Let {
            names,
            ty,
            init,
            line,
        }
    }

    // ------------------------------------------------------ expressions --

    /// `no_struct`: forbid `Path { … }` struct literals (condition and
    /// scrutinee positions, where `{` starts the block instead).
    fn expr(&mut self, no_struct: bool) -> Expr {
        self.assign_expr(no_struct)
    }

    fn assign_expr(&mut self, ns: bool) -> Expr {
        let lhs = self.range_expr(ns);
        let op = match self.cur() {
            Some(t)
                if t.kind == TokKind::Punct
                    && matches!(
                        t.text.as_str(),
                        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^="
                    ) =>
            {
                t.text.clone()
            }
            _ => return lhs,
        };
        let line = lhs.line;
        self.bump();
        let value = self.assign_expr(ns);
        Expr::new(
            ExprKind::Assign {
                op,
                target: Box::new(lhs),
                value: Box::new(value),
            },
            line,
        )
    }

    fn range_expr(&mut self, ns: bool) -> Expr {
        if self.at_punct("..") || self.at_punct("..=") {
            // Prefix range `..hi`.
            let line = self.line();
            let op = self.t[self.i].text.clone();
            self.bump();
            let rhs = if self.at_expr_start() {
                self.or_expr(ns)
            } else {
                Expr::new(ExprKind::Other, line)
            };
            return Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(Expr::new(ExprKind::Other, line)),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        let lhs = self.or_expr(ns);
        if self.at_punct("..") || self.at_punct("..=") {
            let op = self.t[self.i].text.clone();
            let line = lhs.line;
            self.bump();
            let rhs = if self.at_expr_start() {
                self.or_expr(ns)
            } else {
                Expr::new(ExprKind::Other, line)
            };
            return Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    /// Rough "an expression can start here" test, for open ranges.
    fn at_expr_start(&self) -> bool {
        match self.cur() {
            None => false,
            Some(t) => match t.kind {
                TokKind::Ident => !matches!(t.text.as_str(), "else"),
                TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => true,
                TokKind::Lifetime => false,
                TokKind::Punct => matches!(t.text.as_str(), "(" | "[" | "-" | "!" | "*" | "&"),
            },
        }
    }

    fn or_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.and_expr(ns);
        while self.at_punct("||") {
            let line = lhs.line;
            self.bump();
            let rhs = self.and_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: "||".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn and_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cmp_expr(ns);
        while self.at_punct("&&") {
            let line = lhs.line;
            self.bump();
            let rhs = self.cmp_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: "&&".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn cmp_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitor_expr(ns);
        loop {
            let op = match self.cur() {
                Some(t)
                    if t.kind == TokKind::Punct
                        && matches!(t.text.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=")
                        // `<` `<` / `>` `>` are shifts, handled below cmp.
                        && !(t.text == "<" && self.nth_is_punct(1, "<"))
                        && !(t.text == ">" && self.nth_is_punct(1, ">")) =>
                {
                    t.text.clone()
                }
                _ => break,
            };
            let line = lhs.line;
            self.bump();
            let rhs = self.bitor_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn bitor_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitxor_expr(ns);
        while self.at_punct("|") {
            let line = lhs.line;
            self.bump();
            let rhs = self.bitxor_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: "|".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn bitxor_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.bitand_expr(ns);
        while self.at_punct("^") {
            let line = lhs.line;
            self.bump();
            let rhs = self.bitand_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: "^".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn bitand_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.shift_expr(ns);
        while self.at_punct("&") && !self.nth_is_punct(1, "&") {
            let line = lhs.line;
            self.bump();
            let rhs = self.shift_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: "&".into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn shift_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.add_expr(ns);
        loop {
            let op = if self.at_punct("<") && self.nth_is_punct(1, "<") {
                "<<"
            } else if self.at_punct(">") && self.nth_is_punct(1, ">") {
                ">>"
            } else {
                break;
            };
            let line = lhs.line;
            self.bump();
            self.bump();
            let rhs = self.add_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: op.into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn add_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.mul_expr(ns);
        loop {
            let op = match self.cur() {
                Some(t) if t.kind == TokKind::Punct && (t.text == "+" || t.text == "-") => {
                    t.text.clone()
                }
                _ => break,
            };
            let line = lhs.line;
            self.bump();
            let rhs = self.mul_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn mul_expr(&mut self, ns: bool) -> Expr {
        let mut lhs = self.cast_expr(ns);
        loop {
            let op = match self.cur() {
                Some(t)
                    if t.kind == TokKind::Punct && matches!(t.text.as_str(), "*" | "/" | "%") =>
                {
                    t.text.clone()
                }
                _ => break,
            };
            let line = lhs.line;
            self.bump();
            let rhs = self.cast_expr(ns);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            );
        }
        lhs
    }

    fn cast_expr(&mut self, ns: bool) -> Expr {
        let mut e = self.unary_expr(ns);
        while self.at_ident("as") {
            let line = e.line;
            self.bump();
            let ty = self.cast_type_text();
            e = Expr::new(
                ExprKind::Cast {
                    expr: Box::new(e),
                    ty,
                },
                line,
            );
        }
        e
    }

    /// A cast target type: path segments, one optional generic list,
    /// leading `&`/`*const`/`*mut`, or a parenthesised/array type.
    fn cast_type_text(&mut self) -> String {
        let mut out = String::new();
        while self.at_punct("&") || self.at_punct("*") {
            out.push_str(&self.t[self.i].text);
            self.bump();
            if self.at_ident("const") || self.at_ident("mut") {
                self.bump();
            }
        }
        if self.at_punct("(") || self.at_punct("[") {
            let start = self.i;
            self.skip_balanced();
            for t in &self.t[start..self.i] {
                out.push_str(&t.text);
            }
            return out;
        }
        loop {
            if self.at_any_ident() {
                out.push_str(&self.t[self.i].text);
                self.bump();
            } else {
                break;
            }
            if self.at_punct("<") {
                let start = self.i;
                self.skip_angles();
                for t in &self.t[start..self.i] {
                    out.push_str(&t.text);
                }
            }
            if self.at_punct("::") {
                out.push_str("::");
                self.bump();
                continue;
            }
            break;
        }
        out
    }

    fn unary_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        if self.at_punct("-") || self.at_punct("!") || self.at_punct("*") {
            let op = self.t[self.i].text.chars().next().unwrap_or('-');
            self.bump();
            let e = self.unary_expr(ns);
            return Expr::new(
                ExprKind::Unary {
                    op,
                    expr: Box::new(e),
                },
                line,
            );
        }
        if self.at_punct("&") || self.at_punct("&&") {
            let double = self.at_punct("&&");
            self.bump();
            self.eat_ident("mut");
            let inner = self.unary_expr(ns);
            let one = Expr::new(
                ExprKind::Unary {
                    op: '&',
                    expr: Box::new(inner),
                },
                line,
            );
            return if double {
                Expr::new(
                    ExprKind::Unary {
                        op: '&',
                        expr: Box::new(one),
                    },
                    line,
                )
            } else {
                one
            };
        }
        if self.at_ident("move") && (self.nth_is_punct(1, "|") || self.nth_is_punct(1, "||")) {
            self.bump();
        }
        if self.at_punct("|") || self.at_punct("||") {
            return self.closure_expr(line);
        }
        self.postfix_expr(ns)
    }

    fn closure_expr(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.eat_punct("||") {
            // No parameters.
        } else {
            self.eat_punct("|");
            let mut depth = 0i32;
            let mut expect_name = true;
            while let Some(t) = self.cur() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "|") if depth == 0 => {
                        self.bump();
                        break;
                    }
                    (TokKind::Punct, "(") | (TokKind::Punct, "[") | (TokKind::Punct, "<") => {
                        depth += 1
                    }
                    (TokKind::Punct, ")") | (TokKind::Punct, "]") | (TokKind::Punct, ">") => {
                        depth -= 1
                    }
                    (TokKind::Punct, ",") if depth == 0 => expect_name = true,
                    (TokKind::Punct, ":") if depth == 0 => expect_name = false,
                    (TokKind::Ident, id) if expect_name && is_binding_ident(id) => {
                        params.push(id.to_string());
                        expect_name = false;
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        if self.eat_punct("->") {
            self.skip_type_until_body();
        }
        let body = if self.at_punct("{") {
            Expr::new(ExprKind::Block(self.block()), self.line())
        } else {
            self.expr(false)
        };
        Expr::new(
            ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            line,
        )
    }

    fn postfix_expr(&mut self, ns: bool) -> Expr {
        let mut e = self.primary_expr(ns);
        loop {
            if self.at_punct("?") {
                self.bump(); // `?` is transparent for the rules
                continue;
            }
            if self.at_punct(".") {
                let line = self.line();
                self.bump();
                // Tuple index `x.0` (and the `x.await` keyword).
                if self.cur().is_some_and(|t| t.kind == TokKind::Int) {
                    let name = self.t[self.i].text.clone();
                    self.bump();
                    e = Expr::new(ExprKind::Field(Box::new(e), name), line);
                    continue;
                }
                let Some(name) = self.take_ident() else {
                    continue;
                };
                let mut turbofish = String::new();
                if self.at_punct("::") && self.nth_is_punct(1, "<") {
                    self.bump();
                    let start = self.i;
                    self.skip_angles();
                    for t in &self.t[start..self.i] {
                        turbofish.push_str(&t.text);
                    }
                }
                if self.at_punct("(") {
                    let args = self.arg_list();
                    e = Expr::new(
                        ExprKind::MethodCall {
                            base: Box::new(e),
                            name,
                            turbofish,
                            args,
                        },
                        line,
                    );
                } else {
                    e = Expr::new(ExprKind::Field(Box::new(e), name), line);
                }
                continue;
            }
            if self.at_punct("(") {
                let line = e.line;
                let args = self.arg_list();
                e = Expr::new(
                    ExprKind::Call {
                        func: Box::new(e),
                        args,
                    },
                    line,
                );
                continue;
            }
            if self.at_punct("[") {
                let line = e.line;
                self.bump();
                let idx = self.expr(false);
                self.eat_punct("]");
                e = Expr::new(
                    ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    },
                    line,
                );
                continue;
            }
            break;
        }
        e
    }

    /// `( a, b, … )` argument list; assumes cursor at `(`.
    fn arg_list(&mut self) -> Vec<Expr> {
        let mut out = Vec::new();
        self.eat_punct("(");
        while !self.done() && !self.at_punct(")") {
            let before = self.i;
            out.push(self.expr(false));
            self.eat_punct(",");
            if self.i == before {
                self.bump();
            }
        }
        self.eat_punct(")");
        out
    }

    fn primary_expr(&mut self, ns: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.cur() else {
            return Expr::new(ExprKind::Other, line);
        };
        match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char | TokKind::Lifetime => {
                let kind = t.kind;
                let text = t.text.clone();
                self.bump();
                // A lifetime here is a loop label: `'a: loop { … }`.
                if kind == TokKind::Lifetime {
                    self.eat_punct(":");
                    return self.primary_expr(ns);
                }
                Expr::new(ExprKind::Lit(kind, text), line)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut tuple = false;
                    while !self.done() && !self.at_punct(")") {
                        let before = self.i;
                        elems.push(self.expr(false));
                        if self.eat_punct(",") {
                            tuple = true;
                        }
                        if self.i == before {
                            self.bump();
                        }
                    }
                    self.eat_punct(")");
                    if !tuple && elems.len() == 1 {
                        elems.pop().unwrap_or(Expr::new(ExprKind::Other, line))
                    } else {
                        Expr::new(ExprKind::Tuple(elems), line)
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.done() && !self.at_punct("]") {
                        let before = self.i;
                        elems.push(self.expr(false));
                        if !self.eat_punct(",") {
                            self.eat_punct(";");
                        }
                        if self.i == before {
                            self.bump();
                        }
                    }
                    self.eat_punct("]");
                    Expr::new(ExprKind::Tuple(elems), line)
                }
                "{" => Expr::new(ExprKind::Block(self.block()), line),
                _ => {
                    self.bump(); // unknown punct: skip, degrade
                    Expr::new(ExprKind::Other, line)
                }
            },
            TokKind::Ident => self.ident_expr(ns, line),
        }
    }

    fn ident_expr(&mut self, ns: bool, line: u32) -> Expr {
        match self.t[self.i].text.as_str() {
            "if" => {
                self.bump();
                return self.if_tail(line);
            }
            "while" => {
                self.bump();
                if self.eat_ident("let") {
                    self.skip_pattern_until_eq();
                }
                let cond = self.expr(true);
                let body = self.block();
                return Expr::new(
                    ExprKind::While {
                        cond: Box::new(cond),
                        body,
                    },
                    line,
                );
            }
            "loop" => {
                self.bump();
                let body = self.block();
                return Expr::new(ExprKind::Loop { body }, line);
            }
            "for" => {
                self.bump();
                let mut pat_names = Vec::new();
                let mut depth = 0i32;
                while let Some(t) = self.cur() {
                    match (t.kind, t.text.as_str()) {
                        (TokKind::Ident, "in") if depth == 0 => break,
                        (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
                        (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
                        (TokKind::Punct, "{") if depth == 0 => break, // runaway
                        (TokKind::Ident, id) if is_binding_ident(id) => {
                            pat_names.push(id.to_string());
                        }
                        _ => {}
                    }
                    self.bump();
                }
                self.eat_ident("in");
                let iter = self.expr(true);
                let body = self.block();
                return Expr::new(
                    ExprKind::For {
                        pat_names,
                        iter: Box::new(iter),
                        body,
                    },
                    line,
                );
            }
            "match" => {
                self.bump();
                let scrutinee = self.expr(true);
                let mut arms = Vec::new();
                if self.eat_punct("{") {
                    while !self.done() && !self.at_punct("}") {
                        let before = self.i;
                        let mut pat_names = Vec::new();
                        let mut depth = 0i32;
                        while let Some(t) = self.cur() {
                            match (t.kind, t.text.as_str()) {
                                (TokKind::Punct, "=>") if depth == 0 => break,
                                (TokKind::Punct, "(")
                                | (TokKind::Punct, "[")
                                | (TokKind::Punct, "{") => depth += 1,
                                (TokKind::Punct, ")")
                                | (TokKind::Punct, "]")
                                | (TokKind::Punct, "}") => {
                                    if t.text == "}" && depth == 0 {
                                        break; // runaway: match close
                                    }
                                    depth -= 1;
                                }
                                (TokKind::Ident, id) if is_binding_ident(id) => {
                                    pat_names.push(id.to_string());
                                }
                                _ => {}
                            }
                            self.bump();
                        }
                        if self.eat_punct("=>") {
                            let body = self.expr(false);
                            self.eat_punct(",");
                            arms.push(Arm { pat_names, body });
                        }
                        if self.i == before {
                            self.bump();
                        }
                    }
                    self.eat_punct("}");
                }
                return Expr::new(
                    ExprKind::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    },
                    line,
                );
            }
            "return" => {
                self.bump();
                let val = if self.at_expr_start() {
                    Some(Box::new(self.expr(false)))
                } else {
                    None
                };
                return Expr::new(ExprKind::Return(val), line);
            }
            "break" | "continue" => {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                }
                if self.at_expr_start() && !self.at_ident("else") {
                    let _ = self.expr(false);
                }
                return Expr::new(ExprKind::Other, line);
            }
            "unsafe" if self.nth_is_punct(1, "{") => {
                self.bump();
                return Expr::new(ExprKind::Block(self.block()), line);
            }
            "move" => {
                self.bump();
                if self.at_punct("|") || self.at_punct("||") {
                    return self.closure_expr(line);
                }
                return Expr::new(ExprKind::Other, line);
            }
            _ => {}
        }
        // Path: `a::b::<T>::c`.
        let mut segs = Vec::new();
        if let Some(id) = self.take_ident() {
            segs.push(id);
        }
        while self.at_punct("::") {
            self.bump();
            if self.at_punct("<") {
                self.skip_angles();
                continue;
            }
            match self.take_ident() {
                Some(id) => segs.push(id),
                None => break,
            }
        }
        // Macro invocation.
        if self.at_punct("!") && !self.nth_is_punct(1, "=") {
            self.bump();
            let name = segs.last().cloned().unwrap_or_default();
            let args = if self.at_punct("(") || self.at_punct("[") {
                let close = if self.at_punct("(") { ")" } else { "]" };
                self.bump();
                let mut out = Vec::new();
                while !self.done() && !self.at_punct(close) {
                    let before = self.i;
                    out.push(self.expr(false));
                    if !self.eat_punct(",") {
                        self.eat_punct(";");
                    }
                    if self.i == before {
                        self.bump();
                    }
                }
                self.eat_punct(close);
                out
            } else {
                if self.at_punct("{") {
                    self.skip_balanced();
                }
                Vec::new()
            };
            return Expr::new(ExprKind::Macro { name, args }, line);
        }
        // Struct literal: `Path { … }` outside condition positions, when
        // the last segment looks like a type name.
        if !ns
            && self.at_punct("{")
            && segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c.is_ascii_uppercase())
        {
            self.bump();
            let mut fields = Vec::new();
            while !self.done() && !self.at_punct("}") {
                let before = self.i;
                if self.eat_punct("..") {
                    // Struct update: `..base`.
                    let _ = self.expr(false);
                    break;
                }
                if let Some(fname) = self.take_ident() {
                    let value = if self.eat_punct(":") {
                        Some(self.expr(false))
                    } else {
                        None
                    };
                    fields.push((fname, value));
                }
                self.eat_punct(",");
                if self.i == before {
                    self.bump();
                }
            }
            self.eat_punct("}");
            return Expr::new(ExprKind::StructLit { path: segs, fields }, line);
        }
        Expr::new(ExprKind::Path(segs), line)
    }

    fn if_tail(&mut self, line: u32) -> Expr {
        if self.eat_ident("let") {
            self.skip_pattern_until_eq();
        }
        let cond = self.expr(true);
        let then = self.block();
        let else_ = if self.eat_ident("else") {
            if self.at_ident("if") {
                let eline = self.line();
                self.bump();
                Some(Box::new(self.if_tail(eline)))
            } else {
                let eline = self.line();
                Some(Box::new(Expr::new(ExprKind::Block(self.block()), eline)))
            }
        } else {
            None
        };
        Expr::new(
            ExprKind::If {
                cond: Box::new(cond),
                then,
                else_,
            },
            line,
        )
    }

    /// Skips an `if let` / `while let` pattern up to (and including) the
    /// `=` at depth 0.
    fn skip_pattern_until_eq(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "=" if depth == 0 => {
                        self.bump();
                        return;
                    }
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ";" => return, // runaway
                    _ => {}
                }
            }
            self.bump();
        }
    }
}

/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, or bare `#[test]` — same
/// predicate the token-needle rules use.
fn attr_is_test(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.kind == TokKind::Ident && t.text == "test" => attr.len() == 1,
        Some(t) if t.kind == TokKind::Ident && t.text == "cfg" => attr
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test"),
        _ => false,
    }
}

/// Whether a pattern identifier is a plausible binding name: lowercase
/// start (uppercase idents are variants/types) and not a pattern keyword.
fn is_binding_ident(id: &str) -> bool {
    !matches!(id, "mut" | "ref" | "box" | "if" | "let" | "in" | "_")
        && id
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

// ---------------------------------------------------------------- walks --

/// Calls `f` for every function item (with its enclosing-impl type name,
/// if any) that is **not** inside a `#[cfg(test)]`/`#[test]` subtree.
pub fn for_each_fn<'a>(ast: &'a Ast, f: &mut impl FnMut(&'a FnItem, Option<&'a str>)) {
    fn walk<'a>(
        items: &'a [Item],
        impl_ty: Option<&'a str>,
        f: &mut impl FnMut(&'a FnItem, Option<&'a str>),
    ) {
        for item in items {
            if item.is_test {
                continue;
            }
            match &item.kind {
                ItemKind::Fn(func) => f(func, impl_ty),
                ItemKind::Impl { type_name, items } => walk(items, Some(type_name), f),
                ItemKind::Mod { items, .. } => walk(items, impl_ty, f),
                _ => {}
            }
        }
    }
    walk(&ast.items, None, f);
}

/// Calls `f` for every struct item outside test subtrees.
pub fn for_each_struct<'a>(ast: &'a Ast, f: &mut impl FnMut(&'a str, &'a [FieldDecl])) {
    fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a str, &'a [FieldDecl])) {
        for item in items {
            if item.is_test {
                continue;
            }
            match &item.kind {
                ItemKind::Struct { name, fields } => f(name, fields),
                ItemKind::Impl { items, .. } | ItemKind::Mod { items, .. } => walk(items, f),
                _ => {}
            }
        }
    }
    walk(&ast.items, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src))
    }

    fn first_fn(ast: &Ast) -> &FnItem {
        fn find(items: &[Item]) -> Option<&FnItem> {
            for i in items {
                match &i.kind {
                    ItemKind::Fn(f) => return Some(f),
                    ItemKind::Impl { items, .. } | ItemKind::Mod { items, .. } => {
                        if let Some(f) = find(items) {
                            return Some(f);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&ast.items).expect("fixture has a fn")
    }

    #[test]
    fn parses_fn_with_params_and_body() {
        let ast = parse_src("pub fn f(a: u64, mut b: f64) -> u64 { let c = a + 1; c }");
        let f = first_fn(&ast);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "a");
        assert_eq!(f.params[0].ty, "u64");
        assert_eq!(f.params[1].name, "b");
        assert_eq!(f.params[1].ty, "f64");
        assert_eq!(f.body.as_ref().map(|b| b.stmts.len()), Some(2));
    }

    #[test]
    fn parses_method_chains_with_turbofish() {
        let ast = parse_src(
            "fn f(m: FastMap<u32, u64>) -> Vec<u32> {\n    m.keys().copied().collect::<Vec<u32>>()\n}",
        );
        let f = first_fn(&ast);
        let Some(Block { stmts, .. }) = &f.body else {
            panic!("body")
        };
        let Stmt::Expr(e) = &stmts[0] else {
            panic!("expr stmt")
        };
        // collect::<Vec<u32>>( copied( keys(m) ) )
        let ExprKind::MethodCall {
            name,
            turbofish,
            base,
            ..
        } = &e.kind
        else {
            panic!("method call, got {:?}", e.kind)
        };
        assert_eq!(name, "collect");
        assert_eq!(turbofish, "<Vec<u32>>");
        let ExprKind::MethodCall { name, base, .. } = &base.kind else {
            panic!("copied")
        };
        assert_eq!(name, "copied");
        let ExprKind::MethodCall { name, base, .. } = &base.kind else {
            panic!("keys")
        };
        assert_eq!(name, "keys");
        assert!(matches!(&base.kind, ExprKind::Path(p) if p == &vec!["m".to_string()]));
    }

    #[test]
    fn parses_nested_closures() {
        let ast = parse_src(
            "fn f(v: Vec<u32>) -> u32 {\n    v.iter().map(|x| (0..*x).map(|y| y + 1).sum::<u32>()).sum()\n}",
        );
        let f = first_fn(&ast);
        let Some(b) = &f.body else { panic!() };
        let Stmt::Expr(e) = &b.stmts[0] else { panic!() };
        let ExprKind::MethodCall { name, base, .. } = &e.kind else {
            panic!()
        };
        assert_eq!(name, "sum");
        let ExprKind::MethodCall { name, args, .. } = &base.kind else {
            panic!()
        };
        assert_eq!(name, "map");
        let ExprKind::Closure { params, body } = &args[0].kind else {
            panic!("closure, got {:?}", args[0].kind)
        };
        assert_eq!(params, &["x"]);
        let ExprKind::MethodCall { name, args, .. } = &body.kind else {
            panic!()
        };
        assert_eq!(name, "sum");
        let _ = args;
    }

    #[test]
    fn parses_match_arms_with_bindings() {
        let ast =
            parse_src("fn f(x: Option<u64>) -> u64 { match x { Some(v) => v + 1, None => 0, } }");
        let f = first_fn(&ast);
        let Some(b) = &f.body else { panic!() };
        let Stmt::Expr(e) = &b.stmts[0] else { panic!() };
        let ExprKind::Match { arms, .. } = &e.kind else {
            panic!("match, got {:?}", e.kind)
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].pat_names, vec!["v"]);
        assert!(arms[1].pat_names.is_empty());
    }

    #[test]
    fn raw_strings_and_weird_tokens_do_not_derail_items() {
        let ast = parse_src(
            "fn f() -> &'static str { r#\"has \"quotes\" and { braces }\"# }\npub fn g() {}",
        );
        let mut names = Vec::new();
        for_each_fn(&ast, &mut |f, _| names.push(f.name.clone()));
        assert_eq!(names, vec!["f", "g"]);
    }

    #[test]
    fn struct_fields_capture_types() {
        let ast = parse_src(
            "pub struct S {\n    pub total_bytes: u64,\n    iat: FastMap<ChunkId, f64>,\n    name: String,\n}",
        );
        let mut seen = Vec::new();
        for_each_struct(&ast, &mut |name, fields| {
            seen.push((name.to_string(), fields.to_vec()));
        });
        assert_eq!(seen.len(), 1);
        let (name, fields) = &seen[0];
        assert_eq!(name, "S");
        assert_eq!(fields[0].name, "total_bytes");
        assert_eq!(fields[0].ty, "u64");
        assert_eq!(fields[1].name, "iat");
        assert!(fields[1].ty.contains("FastMap"));
    }

    #[test]
    fn test_items_are_skipped_by_walks() {
        let ast = parse_src(
            "#[cfg(test)]\nmod tests { fn hidden() {} }\nfn visible() {}\n#[test]\nfn also_hidden() {}",
        );
        let mut names = Vec::new();
        for_each_fn(&ast, &mut |f, _| names.push(f.name.clone()));
        assert_eq!(names, vec!["visible"]);
    }

    #[test]
    fn impl_blocks_carry_type_names() {
        let ast = parse_src(
            "impl<T: Ord> RankIndex<T> { fn touch(&mut self) {} }\nimpl Display for Foo { fn fmt(&self) {} }",
        );
        let mut seen = Vec::new();
        for_each_fn(&ast, &mut |f, ty| {
            seen.push((f.name.clone(), ty.unwrap_or("-").to_string()));
        });
        assert_eq!(
            seen,
            vec![
                ("touch".to_string(), "RankIndex".to_string()),
                ("fmt".to_string(), "Foo".to_string())
            ]
        );
    }

    #[test]
    fn if_let_and_struct_literals_parse() {
        let ast = parse_src(
            "fn f(m: FastMap<u32, u64>) -> Out {\n    if let Some(v) = m.get(&1) { return Out { total: *v }; }\n    Out { total: 0 }\n}",
        );
        let f = first_fn(&ast);
        let Some(b) = &f.body else { panic!() };
        assert_eq!(b.stmts.len(), 2);
        let Stmt::Expr(last) = &b.stmts[1] else {
            panic!()
        };
        assert!(
            matches!(&last.kind, ExprKind::StructLit { path, .. } if path == &vec!["Out".to_string()])
        );
    }

    #[test]
    fn compound_assignment_parses() {
        let ast = parse_src("fn f(&mut self, bytes: u64) { self.hit_bytes += bytes; }");
        let f = first_fn(&ast);
        let Some(b) = &f.body else { panic!() };
        let Stmt::Expr(e) = &b.stmts[0] else { panic!() };
        let ExprKind::Assign { op, target, .. } = &e.kind else {
            panic!("assign, got {:?}", e.kind)
        };
        assert_eq!(op, "+=");
        assert_eq!(target.name_root(), Some("hit_bytes"));
    }

    #[test]
    fn casts_and_shifts_parse() {
        let ast = parse_src("fn f(x: u64) -> f64 { ((x >> 3) + (x << 2)) as f64 }");
        let f = first_fn(&ast);
        let Some(b) = &f.body else { panic!() };
        let Stmt::Expr(e) = &b.stmts[0] else { panic!() };
        let ExprKind::Cast { ty, expr } = &e.kind else {
            panic!("cast, got {:?}", e.kind)
        };
        assert_eq!(ty, "f64");
        assert!(matches!(&expr.kind, ExprKind::Binary { op, .. } if op == "+"));
    }

    #[test]
    fn parser_never_loops_on_garbage() {
        // Unbalanced, exotic, truncated inputs must all terminate.
        for src in [
            "fn f( {",
            "impl {{{",
            "fn f() { match x { ",
            "fn f() { let = ; }",
            "#[cfg(test) fn g() {}",
            "fn f() { a.b::<(((>; }",
            "::::::",
        ] {
            let _ = parse_src(src);
        }
    }
}
