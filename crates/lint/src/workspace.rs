//! Workspace discovery and the top-level `check_workspace` entry point.
//!
//! The walker mirrors the workspace layout this repo (and the test
//! fixtures) use: a root `Cargo.toml` with `[workspace]`, member crates
//! under `crates/<name>/` each with a `Cargo.toml` and a `src/` tree.
//! Only `src/` is scanned — `tests/`, `benches/` and fixture trees are
//! intentionally out of scope (rules target library and binary code).

use std::fs;
use std::path::{Path, PathBuf};

use crate::allow::{AllowError, AllowList};
use crate::rules::{check_file, FileInput, Finding};

/// The result of checking one workspace.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.allow`.
    pub suppressed: usize,
    /// Allowlist problems: parse errors and stale (unused) entries.
    pub allow_errors: Vec<AllowError>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl CheckReport {
    /// True when the workspace is clean: no findings and a valid allowlist.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.allow_errors.is_empty()
    }

    /// Machine-readable report for `vcdn-lint --json`.
    ///
    /// Field order is fixed (file, line, rule, message, snippet; then
    /// allow_errors, files_scanned, suppressed, clean) and findings are
    /// already sorted by (file, line, rule), so the output is byte-stable
    /// for a given workspace state.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"snippet\": \"{}\"}}",
                json_escape(&f.file),
                f.line,
                json_escape(f.rule),
                json_escape(&f.message),
                json_escape(&f.snippet)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"allow_errors\": [");
        for (i, e) in self.allow_errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"line\": {}, \"message\": \"{}\"}}",
                e.line,
                json_escape(&e.message)
            ));
        }
        if !self.allow_errors.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.suppressed,
            self.is_clean()
        ));
        out
    }
}

/// Minimal JSON string escaping: the control set, quotes, backslash.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Checks the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml` and, optionally, `lint.allow`).
pub fn check_workspace(root: &Path) -> Result<CheckReport, String> {
    let mut crates = member_crates(root)?;
    crates.sort_by(|a, b| a.dir.cmp(&b.dir));

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for c in &crates {
        let src = c.dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
            let text = String::from_utf8_lossy(&text);
            let lexed = crate::lexer::lex(&text);
            let ast = crate::ast::parse(&lexed);
            let rel = rel_path(root, &file);
            files_scanned += 1;
            check_file(
                &FileInput {
                    rel_path: &rel,
                    crate_name: &c.name,
                    declared_features: &c.features,
                    lexed: &lexed,
                    ast: &ast,
                },
                &mut findings,
            );
        }
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    // Apply the allowlist, if present.
    let allow_path = root.join("lint.allow");
    let mut allow = if allow_path.is_file() {
        let text = fs::read_to_string(&allow_path)
            .map_err(|e| format!("read {}: {e}", allow_path.display()))?;
        AllowList::parse(&text)
    } else {
        AllowList::default()
    };

    let mut report = CheckReport {
        files_scanned,
        ..CheckReport::default()
    };
    for f in findings {
        if allow.suppresses(&f) {
            report.suppressed += 1;
        } else {
            report.findings.push(f);
        }
    }
    report.allow_errors = allow.errors.clone();
    for e in allow.unused() {
        report.allow_errors.push(AllowError {
            line: e.line,
            message: format!(
                "stale entry: no `{}` finding in {} matches needle `{}`",
                e.rule, e.path, e.needle
            ),
        });
    }
    report.allow_errors.sort_by_key(|e| e.line);
    Ok(report)
}

/// One member crate: directory, rule-scoping name, declared features.
struct MemberCrate {
    dir: PathBuf,
    /// Directory name under `crates/` (`core`, `sim`, …) used for scoping.
    name: String,
    features: Vec<String>,
}

fn member_crates(root: &Path) -> Result<Vec<MemberCrate>, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{}: no Cargo.toml (not a workspace root)",
            root.display()
        ));
    }
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let dir = entry.path();
            let manifest = dir.join("Cargo.toml");
            if !manifest.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let manifest_text = fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            out.push(MemberCrate {
                dir,
                name,
                features: declared_features(&manifest_text),
            });
        }
    }
    // A root [package] (non-virtual workspace) scans as crate `vcdn`.
    let root_manifest = fs::read_to_string(root.join("Cargo.toml")).map_err(|e| e.to_string())?;
    if root_manifest.contains("[package]") && root.join("src").is_dir() {
        out.push(MemberCrate {
            dir: root.to_path_buf(),
            name: "vcdn".to_string(),
            features: declared_features(&root_manifest),
        });
    }
    Ok(out)
}

/// TOML-lite: feature names are the keys of the `[features]` table. Good
/// enough for this workspace's hand-written manifests; no external deps.
fn declared_features(manifest: &str) -> Vec<String> {
    let mut in_features = false;
    let mut out = Vec::new();
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_features = line == "[features]";
            continue;
        }
        if !in_features || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((key, _)) = line.split_once('=') {
            let key = key.trim().trim_matches('"');
            if !key.is_empty() {
                out.push(key.to_string());
            }
        }
    }
    // `default` is implicitly a feature even when not declared; and every
    // crate may gate on `test`-like built-ins only via cfg, not features.
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable diagnostics).
fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the enclosing workspace root by walking up from `start` until
/// a `Cargo.toml` containing `[workspace]` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_keys_are_extracted_from_features_table_only() {
        let manifest = "\
[package]
name = \"x\"
edition = \"2021\"

[features]
std-hash = []
extra = [\"dep?/feat\"]

[dependencies]
serde = { version = \"1\" }";
        assert_eq!(declared_features(manifest), vec!["std-hash", "extra"]);
    }

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let file = Path::new("/w/crates/core/src/lib.rs");
        assert_eq!(rel_path(root, file), "crates/core/src/lib.rs");
    }
}
