//! A small, dependency-free Rust lexer sufficient for rule matching.
//!
//! The lexer does **not** aim to be a full Rust tokenizer. It produces the
//! token classes the rule engine needs — identifiers, integer/float
//! literals, string/char literals, and punctuation (with the handful of
//! multi-character operators the rules match on, e.g. `==`, `!=`, `::`)
//! — while correctly *skipping* comments and every string form, so rule
//! needles never fire inside a doc comment or a format string.
//!
//! Two side channels are captured during lexing because the rules need
//! them:
//!
//! * `// lint: hot` marker comments, recorded with their line numbers
//!   (they mark the next `fn` item as a hot path);
//! * `// lint: wrap-ok` marker comments, recorded with their line numbers
//!   (they waive the `clock-arith` rule on the same or the next line).
//!
//! Allow/deny decisions beyond those two markers live in `lint.allow`,
//! not in source comments, so justifications stay centrally reviewable.

/// The classes of token the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`0.5`, `1e-9`, `2.0f64`).
    Float,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`), content kept.
    Str,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators `==` `!=` `::` `->` `=>` `<=`
    /// `>=` `..` `..=` `&&` `||` are single tokens, all else single chars.
    Punct,
}

/// One lexed token: kind, text and 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (for `Str`, the content without quotes).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// The output of lexing one file: tokens plus marker side channels.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order (comments and whitespace removed).
    pub toks: Vec<Tok>,
    /// Lines carrying a `// lint: hot` marker comment.
    pub hot_marker_lines: Vec<u32>,
    /// Lines carrying a `// lint: wrap-ok` marker comment.
    pub wrap_ok_lines: Vec<u32>,
}

/// Lexes Rust source text.
///
/// Unterminated strings/comments are tolerated (the rest of the file is
/// consumed as that token); the linter must never panic on weird input.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let text = &self.b[start..self.i];
        // Marker syntax is deliberately rigid: "// lint: hot" or
        // "// lint: wrap-ok" (with optional leading "//" padding),
        // nothing else on the comment.
        if let Ok(s) = std::str::from_utf8(text) {
            let s = s.trim_start_matches('/').trim();
            if s == "lint: hot" {
                self.out.hot_marker_lines.push(self.line);
            } else if s == "lint: wrap-ok" {
                self.out.wrap_ok_lines.push(self.line);
            }
        }
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            match (self.b[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `r#ident`. Returns
    /// `false` when the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut j = self.i;
        if self.b[j] == b'b' {
            j += 1;
            if self.b.get(j) == Some(&b'\'') {
                // Byte char literal b'x'.
                self.i = j;
                self.char_or_lifetime();
                return true;
            }
        }
        let mut hashes = 0usize;
        if self.b.get(j) == Some(&b'r') {
            j += 1;
            while self.b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if hashes > 0 && self.b.get(j).is_some_and(|c| is_ident_char(*c)) {
                // Raw identifier r#foo: lex as the identifier foo.
                self.i = j;
                self.ident();
                return true;
            }
        }
        if self.b.get(j) != Some(&b'"') {
            return false;
        }
        // Consume the string body up to the closing quote (+ hashes).
        let line = self.line;
        j += 1;
        let content_start = j;
        let close: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let raw = hashes > 0
            || self.b[self.i] == b'r'
            || (self.b[self.i] == b'b' && self.b[self.i + 1] == b'r');
        loop {
            match self.b.get(j) {
                None => break,
                Some(b'\\') if !raw => j += 2,
                Some(b'"') if self.b[j..].starts_with(&close) => {
                    break;
                }
                Some(b'\n') => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let content_end = j.min(self.b.len());
        self.i = (j + close.len()).min(self.b.len());
        self.push_at(
            TokKind::Str,
            String::from_utf8_lossy(&self.b[content_start..content_end]).into_owned(),
            line,
        );
        true
    }

    fn string(&mut self) {
        let line = self.line;
        let start = self.i + 1;
        let mut j = start;
        loop {
            match self.b.get(j) {
                None | Some(b'"') => break,
                Some(b'\\') => j += 2,
                Some(b'\n') => {
                    self.line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let end = j.min(self.b.len());
        self.i = (end + 1).min(self.b.len());
        self.push_at(
            TokKind::Str,
            String::from_utf8_lossy(&self.b[start..end]).into_owned(),
            line,
        );
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let mut j = self.i + 1;
        match self.b.get(j) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                j += 2;
                while self.b.get(j).is_some_and(|c| *c != b'\'') {
                    j += 1;
                }
                self.i = (j + 1).min(self.b.len());
                self.push_at(TokKind::Char, String::new(), line);
            }
            Some(c) if is_ident_char(*c) && self.b.get(j + 1) != Some(&b'\'') => {
                // Lifetime: 'ident not followed by a closing quote.
                while self.b.get(j).is_some_and(|c| is_ident_char(*c)) {
                    j += 1;
                }
                self.i = j;
                self.push_at(TokKind::Lifetime, String::new(), line);
            }
            Some(_) => {
                // Plain char literal 'x' (possibly multibyte).
                while self.b.get(j).is_some_and(|c| *c != b'\'' && *c != b'\n') {
                    j += 1;
                }
                self.i = (j + 1).min(self.b.len());
                self.push_at(TokKind::Char, String::new(), line);
            }
            None => self.i += 1,
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut j = self.i;
        let mut float = false;
        if self.b[j] == b'0' && matches!(self.b.get(j + 1), Some(b'x' | b'o' | b'b')) {
            j += 2;
            while self.b.get(j).is_some_and(|c| is_ident_char(*c)) {
                j += 1;
            }
        } else {
            while self
                .b
                .get(j)
                .is_some_and(|c| c.is_ascii_digit() || *c == b'_')
            {
                j += 1;
            }
            // Fractional part: a '.' followed by a digit (so `0..5` and
            // `1.max(2)` stay integers).
            if self.b.get(j) == Some(&b'.') && self.b.get(j + 1).is_some_and(|c| c.is_ascii_digit())
            {
                float = true;
                j += 1;
                while self
                    .b
                    .get(j)
                    .is_some_and(|c| c.is_ascii_digit() || *c == b'_')
                {
                    j += 1;
                }
            } else if self.b.get(j) == Some(&b'.')
                && !self
                    .b
                    .get(j + 1)
                    .is_some_and(|c| is_ident_char(*c) || *c == b'.')
            {
                // Trailing-dot float `1.`
                float = true;
                j += 1;
            }
            // Exponent.
            if matches!(self.b.get(j), Some(b'e' | b'E')) {
                let mut k = j + 1;
                if matches!(self.b.get(k), Some(b'+' | b'-')) {
                    k += 1;
                }
                if self.b.get(k).is_some_and(|c| c.is_ascii_digit()) {
                    float = true;
                    j = k;
                    while self
                        .b
                        .get(j)
                        .is_some_and(|c| c.is_ascii_digit() || *c == b'_')
                    {
                        j += 1;
                    }
                }
            }
            // Suffix (u64, f32, …).
            let suffix_start = j;
            while self.b.get(j).is_some_and(|c| is_ident_char(*c)) {
                j += 1;
            }
            if self.b[suffix_start..j].starts_with(b"f32")
                || self.b[suffix_start..j].starts_with(b"f64")
            {
                float = true;
            }
        }
        self.i = j;
        self.push_at(
            if float { TokKind::Float } else { TokKind::Int },
            String::from_utf8_lossy(&self.b[start..j]).into_owned(),
            line,
        );
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.i < self.b.len() && is_ident_char(self.b[self.i]) {
            self.i += 1;
        }
        self.push_at(
            TokKind::Ident,
            String::from_utf8_lossy(&self.b[start..self.i]).into_owned(),
            line,
        );
    }

    fn punct(&mut self) {
        let line = self.line;
        let two: &[u8] = &self.b[self.i..(self.i + 2).min(self.b.len())];
        let three: &[u8] = &self.b[self.i..(self.i + 3).min(self.b.len())];
        let text = if three == b"..=" {
            "..="
        } else {
            match two {
                b"==" => "==",
                b"!=" => "!=",
                b"::" => "::",
                b"->" => "->",
                b"=>" => "=>",
                b"<=" => "<=",
                b">=" => ">=",
                b".." => "..",
                b"&&" => "&&",
                b"||" => "||",
                b"+=" => "+=",
                b"-=" => "-=",
                b"*=" => "*=",
                b"/=" => "/=",
                b"%=" => "%=",
                b"&=" => "&=",
                b"|=" => "|=",
                b"^=" => "^=",
                _ => {
                    let c = self.b[self.i] as char;
                    self.i += 1;
                    self.push_at(TokKind::Punct, c.to_string(), line);
                    return;
                }
            }
        };
        self.i += text.len();
        self.push_at(TokKind::Punct, text.to_string(), line);
    }

    fn push_at(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let toks = kinds("let x = \"== HashMap\"; // == unwrap()\n/* format! */ y");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
        // The string's content is carried but typed Str, not operators.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("HashMap")));
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("0.5 1e-9 2.0f64 42 0xff 0..5 1.max(2)");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["0.5", "1e-9", "2.0f64"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["42", "0xff", "0", "5", "1", "2"]);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a == b != c :: d .. e ..= f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..", "..="]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let toks = kinds("r#\"has \"quotes\" and == \"# /* outer /* inner */ still */ z");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1], (TokKind::Ident, "z".into()));
    }

    #[test]
    fn hot_markers_are_recorded_with_lines() {
        let lexed = lex("fn a() {}\n// lint: hot\nfn b() {}\n// lint: hotdog\n");
        assert_eq!(lexed.hot_marker_lines, vec![2]);
    }

    #[test]
    fn wrap_ok_markers_are_recorded_with_lines() {
        let lexed = lex("let a = b + c; // lint: wrap-ok\n// lint: wrap-okay\nx\n");
        assert_eq!(lexed.wrap_ok_lines, vec![1]);
    }

    #[test]
    fn compound_assignment_operators_are_single_tokens() {
        let toks = kinds("a += b; c -= d; e *= f; g /= h; i %= j; k &= l; m |= n; o ^= p");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t.len() == 2)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let lexed = lex("/* c\nc */\n\"s\ns\"\nx");
        let x = lexed.toks.last().unwrap();
        assert_eq!((x.text.as_str(), x.line), ("x", 5));
    }
}
