//! The checked-in suppression file, `lint.allow`.
//!
//! Format: one entry per line, four pipe-separated fields —
//!
//! ```text
//! rule | path | needle | justification
//! ```
//!
//! * `rule` — a rule name from [`crate::rules::RULES`];
//! * `path` — workspace-relative file the suppression applies to;
//! * `needle` — substring matched against the finding's snippet;
//! * `justification` — required, non-trivial free text explaining *why*
//!   the invariant may be waived at this site.
//!
//! Blank lines and `#` comments are ignored. Entries that are malformed,
//! name an unknown rule, carry an empty/too-short justification, or match
//! **no** finding (stale suppressions) are all hard errors in `--check`:
//! the allowlist must stay exactly as large as the set of justified
//! exceptions.

use crate::rules::{rule_by_name, Finding};

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry suppresses.
    pub rule: String,
    /// Workspace-relative file path the entry applies to.
    pub path: String,
    /// Substring matched against the finding snippet.
    pub needle: String,
    /// Why the invariant is waived here (required).
    pub justification: String,
    /// 1-based line in `lint.allow` (for diagnostics).
    pub line: u32,
}

/// A problem with the allowlist itself (always fatal in `--check`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowError {
    /// 1-based line in `lint.allow`, or 0 for file-level problems.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl std::fmt::Display for AllowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.allow:{}: {}", self.line, self.message)
    }
}

/// Minimum length for a justification to count as one. Guards against
/// placeholder suppressions like `x` or `todo`.
const MIN_JUSTIFICATION_LEN: usize = 10;

/// The parsed allowlist plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct AllowList {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
    /// Parse-time errors (malformed lines, unknown rules, no justification).
    pub errors: Vec<AllowError>,
}

impl AllowList {
    /// Parses allowlist text. Parse problems land in `errors`, well-formed
    /// entries are kept, so one bad line doesn't disable the others.
    pub fn parse(text: &str) -> Self {
        let mut list = AllowList::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 {
                list.errors.push(AllowError {
                    line: line_no,
                    message: format!(
                        "expected 4 pipe-separated fields (rule | path | needle | justification), got {}",
                        fields.len()
                    ),
                });
                continue;
            }
            let (rule, path, needle, justification) = (fields[0], fields[1], fields[2], fields[3]);
            if rule_by_name(rule).is_none() {
                list.errors.push(AllowError {
                    line: line_no,
                    message: format!("unknown rule `{rule}`"),
                });
                continue;
            }
            if justification.len() < MIN_JUSTIFICATION_LEN {
                list.errors.push(AllowError {
                    line: line_no,
                    message: format!(
                        "justification is required (≥ {MIN_JUSTIFICATION_LEN} chars); got `{justification}`"
                    ),
                });
                continue;
            }
            if needle.is_empty() {
                list.errors.push(AllowError {
                    line: line_no,
                    message: "empty needle would suppress every finding in the file".into(),
                });
                continue;
            }
            list.entries.push(AllowEntry {
                rule: rule.to_string(),
                path: path.to_string(),
                needle: needle.to_string(),
                justification: justification.to_string(),
                line: line_no,
            });
            list.used.push(false);
        }
        list
    }

    /// Whether `finding` is suppressed; marks the matching entry as used.
    pub fn suppresses(&mut self, finding: &Finding) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule == finding.rule
                && e.path == finding.file
                && finding.snippet.contains(&e.needle)
            {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that matched no finding — stale suppressions, reported as
    /// errors so the allowlist can only shrink when the code improves.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter_map(|(e, &u)| (!u).then_some(e))
            .collect()
    }

    /// Number of well-formed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no well-formed entries were parsed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "\
# comment
determinism | crates/sim/src/replay.rs | Instant::now | reporting-only latency timing

panic | crates/core/src/cafe.rs | [0] | bounds pre-checked by caller";
        let list = AllowList::parse(text);
        assert_eq!(list.len(), 2);
        assert!(list.errors.is_empty());
    }

    #[test]
    fn suppression_requires_rule_path_and_needle_match() {
        let mut list = AllowList::parse(
            "determinism | crates/sim/src/replay.rs | Instant::now | reporting-only timing path",
        );
        assert!(list.suppresses(&finding(
            "determinism",
            "crates/sim/src/replay.rs",
            "Instant::now"
        )));
        // Wrong file.
        assert!(!list.suppresses(&finding(
            "determinism",
            "crates/sim/src/runner.rs",
            "Instant::now"
        )));
        // Wrong rule.
        assert!(!list.suppresses(&finding(
            "panic",
            "crates/sim/src/replay.rs",
            "Instant::now"
        )));
    }

    #[test]
    fn unused_entries_are_reported() {
        let mut list = AllowList::parse(
            "panic | crates/core/src/lib.rs | .unwrap() | historical exception kept for tests",
        );
        assert_eq!(list.unused().len(), 1);
        assert!(list.suppresses(&finding("panic", "crates/core/src/lib.rs", ".unwrap()")));
        assert!(list.unused().is_empty());
    }

    #[test]
    fn missing_or_short_justifications_are_errors() {
        let list = AllowList::parse("panic | f.rs | .unwrap() | ");
        assert_eq!(list.errors.len(), 1);
        assert!(list.errors[0].message.contains("justification"));
        let list = AllowList::parse("panic | f.rs | .unwrap() | ok");
        assert_eq!(list.errors.len(), 1);
    }

    #[test]
    fn unknown_rules_and_malformed_lines_are_errors() {
        let list = AllowList::parse("no-such-rule | f.rs | x | some justification here");
        assert!(list.errors[0].message.contains("unknown rule"));
        let list = AllowList::parse("panic | f.rs | missing-justification-field");
        assert!(list.errors[0].message.contains("4 pipe-separated"));
    }
}
