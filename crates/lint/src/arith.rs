//! `clock-arith`: unchecked integer arithmetic on clock and byte
//! counters.
//!
//! Trace clocks are `u64` milliseconds/nanoseconds and byte counters
//! accumulate over month-long traces; a silent wrap corrupts replay
//! metrics without failing any test (debug builds panic, release builds
//! wrap). The workspace convention (DESIGN.md, vcdn_types::time) is that
//! such identifiers end in `_ms`, `_ns`, or `_bytes` (or are exactly
//! `ms`/`ns`/`bytes`), so the rule flags raw `+ - *` / `+= -= *=` where:
//!
//! * at least one operand is an identifier matching the naming
//!   convention **and** the symbol table resolves it to an integer
//!   (unknown or float-classified names stay silent — `mean_residency_ms:
//!   f64` is fine arithmetic), and
//! * no operand is float-classified, and
//! * the line (or the line above) does not carry a `// lint: wrap-ok`
//!   marker.
//!
//! Fix with `saturating_*` / `checked_*` / `wrapping_*` — the marker is
//! for sites where wrap math is the point (hashing, ring indices).

use crate::ast::{Ast, Block, Expr, ExprKind, Stmt};
use crate::rules::{FileInput, Finding};
use crate::symbols::{SymbolTable, VarClass};

/// Runs the rule on one file.
pub fn check(input: &FileInput<'_>, ast: &Ast, out: &mut Vec<Finding>) {
    let file_syms = SymbolTable::from_ast(ast);
    crate::ast::for_each_fn(ast, &mut |func, _| {
        let Some(body) = &func.body else { return };
        let mut ctx = Ctx {
            syms: file_syms.scoped_to(func),
            input,
            out,
        };
        ctx.walk_block(body);
    });
}

struct Ctx<'a, 'b> {
    syms: SymbolTable,
    input: &'a FileInput<'a>,
    out: &'b mut Vec<Finding>,
}

impl Ctx<'_, '_> {
    fn walk_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    if let Some(e) = init {
                        self.walk_expr(e);
                    }
                    self.syms.note_let(names, ty.as_deref(), init.as_ref());
                }
                Stmt::Expr(e) => self.walk_expr(e),
                Stmt::Item(_) => {}
            }
        }
    }

    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Binary { op, lhs, rhs } => {
                if matches!(op.as_str(), "+" | "-" | "*") {
                    self.check_op(e.line, op, lhs, rhs);
                }
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::Assign { op, target, value } => {
                if matches!(op.as_str(), "+=" | "-=" | "*=") {
                    self.check_op(e.line, op, target, value);
                }
                self.walk_expr(target);
                self.walk_expr(value);
            }
            ExprKind::MethodCall { base, args, .. } => {
                self.walk_expr(base);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Call { func, args } => {
                self.walk_expr(func);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Macro { args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Field(base, _) => self.walk_expr(base),
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => self.walk_expr(expr),
            ExprKind::Index { base, index } => {
                self.walk_expr(base);
                self.walk_expr(index);
            }
            ExprKind::Tuple(elems) => {
                for el in elems {
                    self.walk_expr(el);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.walk_expr(v);
                    }
                }
            }
            ExprKind::Closure { body, .. } => self.walk_expr(body),
            ExprKind::Block(b) => self.walk_block(b),
            ExprKind::If { cond, then, else_ } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(e2) = else_ {
                    self.walk_expr(e2);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                for arm in arms {
                    self.walk_expr(&arm.body);
                }
            }
            ExprKind::For { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body);
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            ExprKind::Loop { body } => self.walk_block(body),
            ExprKind::Return(Some(v)) => self.walk_expr(v),
            ExprKind::Path(_) | ExprKind::Lit(..) | ExprKind::Return(None) | ExprKind::Other => {}
        }
    }

    fn check_op(&mut self, line: u32, op: &str, a: &Expr, b: &Expr) {
        if self.wrap_ok(line) {
            return;
        }
        let (ca, cb) = (self.syms.class_of(a), self.syms.class_of(b));
        if ca == VarClass::Float || cb == VarClass::Float {
            return;
        }
        let counter = [(a, ca), (b, cb)].into_iter().find_map(|(e, c)| {
            let name = counter_name(e)?;
            (c == VarClass::Int).then(|| name.to_string())
        });
        let Some(name) = counter else { return };
        self.out.push(Finding {
            rule: "clock-arith",
            file: self.input.rel_path.to_string(),
            line,
            snippet: format!("{name} {op}"),
            message: format!(
                "unchecked `{op}` on counter `{name}`; use saturating_*/checked_*/wrapping_* \
                 or mark the line `// lint: wrap-ok`"
            ),
        });
    }

    /// `// lint: wrap-ok` on the same line or the line above suppresses.
    fn wrap_ok(&self, line: u32) -> bool {
        self.input
            .lexed
            .wrap_ok_lines
            .iter()
            .any(|&m| m == line || m + 1 == line)
    }
}

/// If the expression is (a reference to / cast of) a named place whose
/// name matches the clock/byte-counter convention, returns the name.
fn counter_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Field(..) => {
            let name = e.name_root()?;
            matches_convention(name).then_some(name)
        }
        ExprKind::Unary { expr, .. } => counter_name(expr),
        _ => None,
    }
}

fn matches_convention(name: &str) -> bool {
    matches!(name, "ms" | "ns" | "bytes")
        || name.ends_with("_ms")
        || name.ends_with("_ns")
        || name.ends_with("_bytes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ast = parse(&lexed);
        let input = FileInput {
            rel_path: "crates/types/src/metrics.rs",
            crate_name: "types",
            declared_features: &[],
            lexed: &lexed,
            ast: &ast,
        };
        let mut out = Vec::new();
        check(&input, &ast, &mut out);
        out
    }

    #[test]
    fn unchecked_add_on_known_int_counter_fires() {
        let f = run("struct S { hit_bytes: u64 }\nimpl S { fn add(&mut self, n: u64) { self.hit_bytes += n; } }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "clock-arith");
        assert_eq!(f[0].snippet, "hit_bytes +=");
    }

    #[test]
    fn binary_ops_on_params_fire() {
        let f = run("fn span(start_ms: u64, end_ms: u64) -> u64 { end_ms - start_ms }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].snippet.contains("-"));
    }

    #[test]
    fn float_counters_are_silent() {
        assert!(
            run("fn f(mean_residency_ms: f64, x: f64) -> f64 { mean_residency_ms * x }").is_empty()
        );
        // Mixed float context is silent even with a named int nearby.
        assert!(run("fn f(dt_ms: u64, rate: f64) -> f64 { dt_ms as f64 * rate }").is_empty());
    }

    #[test]
    fn unresolved_names_are_silent() {
        assert!(run("fn f(x: Foo) -> u64 { x.some_ms + 1 }").is_empty());
    }

    #[test]
    fn saturating_methods_are_clean() {
        assert!(run("fn f(a_ms: u64, b_ms: u64) -> u64 { a_ms.saturating_sub(b_ms) }").is_empty());
    }

    #[test]
    fn wrap_ok_marker_suppresses() {
        let same = "fn f(seed_ms: u64) -> u64 { seed_ms * 31 } // lint: wrap-ok";
        assert!(run(same).is_empty());
        let above = "fn f(seed_ms: u64) -> u64 {\n    // lint: wrap-ok\n    seed_ms * 31\n}";
        assert!(run(above).is_empty());
        let unmarked = "fn f(seed_ms: u64) -> u64 { seed_ms * 31 }";
        assert_eq!(run(unmarked).len(), 1);
    }

    #[test]
    fn non_counter_names_are_silent() {
        assert!(run("fn f(count: u64, total: u64) -> u64 { count + total }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(a_ms: u64) -> u64 { a_ms + 1 } }";
        assert!(run(src).is_empty());
    }
}
