//! `lock-discipline`: the DESIGN.md §7 lock model for `vcdn_sim`.
//!
//! The sharded engine keeps deadlock-freedom by construction: every
//! mutex scope is leaf-level. Concretely, per function:
//!
//! * **No nested acquisition** — while a guard from `x.lock()` is live
//!   in the current scope, no other `.lock()` may be evaluated (this
//!   subsumes the "dispatcher queue mutex never while a shard lock is
//!   held" ordering rule, and bans double-locking the same mutex, which
//!   self-deadlocks on std's non-reentrant `Mutex`).
//! * **Paired condvar waits** — `.wait(guard)` / `.wait_timeout` /
//!   `.wait_while` must consume a guard that is live in scope, and the
//!   condvar must hang off the same base object as the guard's mutex
//!   (`self.can_push.wait(st)` with `st = self.state.lock()` is the
//!   engine's `BatchQueue` pattern: one mutex per struct, so same-object
//!   pairing is exact).
//!
//! Guards die at end of scope or at an explicit `drop(guard)`. Scope:
//! library code of `crates/sim` (the only crate with locks).

use crate::ast::{Ast, Block, Expr, ExprKind, Stmt};
use crate::rules::{FileInput, Finding};

const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Runs the rule on one file.
pub fn check(input: &FileInput<'_>, ast: &Ast, out: &mut Vec<Finding>) {
    if input.crate_name != "sim" {
        return;
    }
    crate::ast::for_each_fn(ast, &mut |func, _| {
        let Some(body) = &func.body else { return };
        let mut ctx = Ctx {
            guards: Vec::new(),
            input,
            out,
        };
        ctx.walk_block(body);
    });
}

/// A live mutex guard.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name (`st`).
    name: String,
    /// Render of the lock receiver (`self.state`).
    mutex: String,
    /// Base object of the receiver (`self`).
    base: String,
    /// Acquisition line.
    line: u32,
}

struct Ctx<'a, 'b> {
    guards: Vec<Guard>,
    input: &'a FileInput<'a>,
    out: &'b mut Vec<Finding>,
}

impl Ctx<'_, '_> {
    /// Walks one lexical scope; guards bound inside it die on exit.
    fn walk_block(&mut self, b: &Block) {
        let scope_floor = self.guards.len();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    names, init, line, ..
                } => {
                    if let Some(e) = init {
                        // walk_expr flags nested acquisition itself.
                        self.walk_expr(e);
                        // Bind a guard only when the chain still *is* the
                        // guard after error handling — `lock().take()`
                        // extracts a value and drops the guard with the
                        // temporary at the end of the statement.
                        if let Some(mutex) = guard_receiver(e) {
                            if let Some(name) = names.first() {
                                let base = base_object(&mutex);
                                self.guards.push(Guard {
                                    name: name.clone(),
                                    mutex,
                                    base,
                                    line: *line,
                                });
                            }
                        }
                    }
                }
                Stmt::Expr(e) => {
                    // `drop(guard)` releases early.
                    if let ExprKind::Call { func, args } = &e.kind {
                        if matches!(&func.kind, ExprKind::Path(s) if s.last().is_some_and(|l| l == "drop"))
                        {
                            if let Some(ExprKind::Path(segs)) = args.first().map(|a| &a.kind) {
                                if segs.len() == 1 {
                                    self.guards.retain(|g| g.name != segs[0]);
                                    continue;
                                }
                            }
                        }
                    }
                    self.walk_expr(e);
                }
                Stmt::Item(_) => {}
            }
        }
        self.guards.truncate(scope_floor);
    }

    /// Recursive expression walk: transient locks, waits, nested blocks.
    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::MethodCall {
                base, name, args, ..
            } => {
                if name == "lock" {
                    let mutex = expr_text(base);
                    self.flag_if_nested(e.line, &mutex);
                }
                if WAIT_METHODS.contains(&name.as_str()) {
                    self.check_wait(e.line, base, args);
                }
                self.walk_expr(base);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Call { func, args } => {
                self.walk_expr(func);
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Macro { args, .. } => {
                for a in args {
                    self.walk_expr(a);
                }
            }
            ExprKind::Assign { target, value, .. } => {
                self.walk_expr(value);
                self.walk_expr(target);
            }
            ExprKind::Field(base, _) => self.walk_expr(base),
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => self.walk_expr(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::Index { base, index } => {
                self.walk_expr(base);
                self.walk_expr(index);
            }
            ExprKind::Tuple(elems) => {
                for el in elems {
                    self.walk_expr(el);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.walk_expr(v);
                    }
                }
            }
            ExprKind::Closure { body, .. } => self.walk_expr(body),
            ExprKind::Block(b) => self.walk_block(b),
            // Branches are joined toward "still held": a drop() inside one
            // arm (typically followed by an early return) must not release
            // the guard on the fall-through path.
            ExprKind::If { cond, then, else_ } => {
                self.walk_expr(cond);
                let snapshot = self.guards.clone();
                self.walk_block(then);
                self.guards = snapshot.clone();
                if let Some(e2) = else_ {
                    self.walk_expr(e2);
                    self.guards = snapshot;
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                let snapshot = self.guards.clone();
                for arm in arms {
                    self.walk_expr(&arm.body);
                    self.guards = snapshot.clone();
                }
            }
            ExprKind::For { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body);
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            ExprKind::Loop { body } => self.walk_block(body),
            ExprKind::Return(Some(v)) => self.walk_expr(v),
            ExprKind::Path(_) | ExprKind::Lit(..) | ExprKind::Return(None) | ExprKind::Other => {}
        }
    }

    fn flag_if_nested(&mut self, line: u32, mutex: &str) {
        if let Some(held) = self.guards.last() {
            self.out.push(Finding {
                rule: "lock-discipline",
                file: self.input.rel_path.to_string(),
                line,
                snippet: format!("{mutex}.lock()"),
                message: format!(
                    "{mutex}.lock() while guard `{}` on {} (line {}) is held; \
                     DESIGN.md §7 requires leaf-level lock scopes",
                    held.name, held.mutex, held.line
                ),
            });
        }
    }

    fn check_wait(&mut self, line: u32, condvar: &Expr, args: &[Expr]) {
        // `guard = condvar.wait(guard)`: first argument names the guard.
        let guard_name = args.first().and_then(|a| match &a.kind {
            ExprKind::Path(segs) if segs.len() == 1 => Some(segs[0].as_str()),
            _ => None,
        });
        let cv_text = expr_text(condvar);
        // Only treat it as a condvar wait when the receiver is a plain
        // place expression (skips e.g. `thread::sleep`-style false hits
        // and receiver chains that cannot be a Condvar field).
        if !matches!(condvar.kind, ExprKind::Field(..) | ExprKind::Path(_)) {
            return;
        }
        let Some(gname) = guard_name else {
            self.out.push(Finding {
                rule: "lock-discipline",
                file: self.input.rel_path.to_string(),
                line,
                snippet: format!("{cv_text}.wait("),
                message: format!("{cv_text}.wait(…) without a named live mutex guard argument"),
            });
            return;
        };
        let Some(guard) = self.guards.iter().find(|g| g.name == gname) else {
            self.out.push(Finding {
                rule: "lock-discipline",
                file: self.input.rel_path.to_string(),
                line,
                snippet: format!("{cv_text}.wait("),
                message: format!(
                    "{cv_text}.wait({gname}) but `{gname}` is not a live guard from .lock() in this scope"
                ),
            });
            return;
        };
        let cv_base = base_object(&cv_text);
        if cv_base != guard.base {
            self.out.push(Finding {
                rule: "lock-discipline",
                file: self.input.rel_path.to_string(),
                line,
                snippet: format!("{cv_text}.wait("),
                message: format!(
                    "{cv_text}.wait({gname}) pairs a condvar on `{cv_base}` with a guard of {} \
                     on `{}`; condvars must wait under their own struct's mutex",
                    guard.mutex, guard.base
                ),
            });
        }
    }
}

/// If the expression is `<recv>.lock()` wrapped only in error handling
/// (`unwrap` / `expect` / `unwrap_or_else`), so that binding it keeps the
/// guard alive, returns the receiver text. Chains that go on to extract a
/// value (`.take()`, `.len()`, …) drop the guard with the temporary.
fn guard_receiver(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { base, name, .. } => {
            if name == "lock" {
                Some(expr_text(base))
            } else if matches!(name.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
                guard_receiver(base)
            } else {
                None
            }
        }
        ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => guard_receiver(expr),
        _ => None,
    }
}

/// Renders a place expression back to text (`self.state`, `q`, `a.b.c`).
fn expr_text(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Path(segs) => segs.join("::"),
        ExprKind::Field(base, name) => format!("{}.{}", expr_text(base), name),
        ExprKind::Unary { expr, .. } => expr_text(expr),
        ExprKind::Index { base, .. } => format!("{}[_]", expr_text(base)),
        ExprKind::MethodCall { base, name, .. } => format!("{}.{}()", expr_text(base), name),
        ExprKind::Call { func, .. } => format!("{}()", expr_text(func)),
        _ => "<expr>".to_string(),
    }
}

/// The first path segment of a place expression (`self.state` → `self`).
fn base_object(place: &str) -> String {
    place.split(['.', ':']).next().unwrap_or(place).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ast = parse(&lexed);
        let input = FileInput {
            rel_path: "crates/sim/src/engine.rs",
            crate_name: "sim",
            declared_features: &[],
            lexed: &lexed,
            ast: &ast,
        };
        let mut out = Vec::new();
        check(&input, &ast, &mut out);
        out
    }

    #[test]
    fn engine_batch_queue_pattern_is_clean() {
        let src = "\
impl BatchQueue {
    fn pop(&self) -> Batch {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.queue.is_empty() {
            st = self.can_pop.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let b = st.queue.pop_front();
        drop(st);
        self.can_push.notify_one();
        b
    }
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn nested_lock_fires() {
        let src = "\
fn bad(&self) {
    let st = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let sh = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
    st.len() + sh.len();
}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("while guard"));
    }

    #[test]
    fn sequential_scoped_locks_are_clean() {
        let src = "\
fn ok(&self) {
    { let a = self.queue.lock().unwrap_or_else(PoisonError::into_inner); a.len(); }
    { let b = self.shard.lock().unwrap_or_else(PoisonError::into_inner); b.len(); }
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
fn ok(&self) {
    let a = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
    drop(a);
    let b = self.shard.lock().unwrap_or_else(PoisonError::into_inner);
    b.len();
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn wait_on_foreign_guard_fires() {
        let src = "\
fn bad(&self, other: &Peer) {
    let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
    let st = other.can_pop.wait(st).unwrap_or_else(PoisonError::into_inner);
    st.len();
}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("condvars must wait"));
    }

    #[test]
    fn wait_without_live_guard_fires() {
        let src = "\
fn bad(&self, st: Thing) {
    let st2 = self.can_pop.wait(st);
    st2.len();
}";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("not a live guard"));
    }

    #[test]
    fn drop_in_branch_keeps_guard_live_on_fallthrough() {
        // The engine's pop() shape: drop + early return in one branch,
        // wait on the guard on the fall-through path.
        let src = "\
impl BatchQueue {
    fn pop(&self) -> Option<Batch> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(batch) = st.batches.pop_front() {
                drop(st);
                self.can_push.notify_one();
                return Some(batch);
            }
            st = self.can_pop.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn lock_take_chain_is_transient_not_a_guard() {
        // The runner's shape: the lock temporary dies at the end of each
        // statement, so the second lock is not nested.
        let src = "\
fn work(&self, i: usize) {
    let Some(job) = self.jobs.lock().unwrap_or_else(PoisonError::into_inner).take() else {
        return;
    };
    let value = job();
    self.slots.lock().unwrap_or_else(PoisonError::into_inner).replace(value);
}";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn out_of_scope_crate_is_silent() {
        let lexed = lex("fn f(&self) { let a = self.m.lock(); let b = self.n.lock(); }");
        let ast = parse(&lexed);
        let input = FileInput {
            rel_path: "crates/core/src/lib.rs",
            crate_name: "core",
            declared_features: &[],
            lexed: &lexed,
            ast: &ast,
        };
        let mut out = Vec::new();
        check(&input, &ast, &mut out);
        assert!(out.is_empty());
    }
}
