//! `determinism-flow`: intra-procedural taint from unordered-container
//! iteration to output sinks.
//!
//! The replay/telemetry contract says every exported byte is identical at
//! any worker count *and any hasher* (the `std-hash` CI leg swaps
//! FxHash for SipHash). Iterating a `FastMap`/`HashMap` yields
//! hasher-dependent order, so any value that flows from such an
//! iteration into serialized output silently breaks the contract.
//!
//! Model (per non-test function):
//!
//! * **Sources** — `.iter() .iter_mut() .keys() .values() .values_mut()
//!   .drain() .into_iter() .into_keys() .into_values()` on a receiver
//!   classified [`VarClass::Unordered`] by the symbol table.
//! * **Sanitizers** — `sort` / `sort_by` / `sort_by_key` /
//!   `sort_unstable*` / `sort_by_cached_key` on a tainted local,
//!   `.collect()` with a `BTree*` turbofish or into a `BTree*`-annotated
//!   binding, and the `vcdn_types::det_iter` family (any `det_`-prefixed
//!   call or method).
//! * **Order-insensitive terminals** — `sum count min max min_by* max_by*
//!   all any is_empty product` end a flow cleanly (their result does not
//!   depend on iteration order).
//! * **Sinks** — `push`/`push_str`/`extend`/`append` into a *field*
//!   (exported state), `write!`/`writeln!`/`print!`/`println!` macros,
//!   and any call or method whose name mentions `json`, `serial`,
//!   `emit`, or `render`, when fed a tainted value. Pushes into plain
//!   locals propagate taint instead (the collect-then-sort idiom stays
//!   clean).
//!
//! Scope: library code of `crates/core`, `crates/sim`, `crates/obs` —
//! the crates whose output is cmp-checked bit-identical in CI.

use crate::ast::{Ast, Block, Expr, ExprKind, Stmt};
use crate::rules::{FileInput, Finding};
use crate::symbols::{SymbolTable, VarClass};
use std::collections::HashSet;

const SCOPE_CRATES: &[&str] = &["core", "sim", "obs"];

const SOURCE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

const SORT_METHODS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sort_by_cached_key",
];

const ORDER_INSENSITIVE: &[&str] = &[
    "sum",
    "product",
    "count",
    "min",
    "max",
    "min_by",
    "min_by_key",
    "max_by",
    "max_by_key",
    "all",
    "any",
    "is_empty",
    "len",
];

const PUSH_METHODS: &[&str] = &["push", "push_str", "extend", "append"];

const WRITE_MACROS: &[&str] = &["write", "writeln", "print", "println", "eprint", "eprintln"];

/// Runs the rule on one file.
pub fn check(input: &FileInput<'_>, ast: &Ast, out: &mut Vec<Finding>) {
    if !SCOPE_CRATES.contains(&input.crate_name) {
        return;
    }
    let file_syms = SymbolTable::from_ast(ast);
    crate::ast::for_each_fn(ast, &mut |func, _| {
        let Some(body) = &func.body else { return };
        let mut ctx = Ctx {
            syms: file_syms.scoped_to(func),
            tainted: HashSet::new(),
            loop_depth: 0,
            input,
            out,
        };
        ctx.walk_block(body);
    });
}

struct Ctx<'a, 'b> {
    syms: SymbolTable,
    tainted: HashSet<String>,
    /// How many enclosing `for` loops iterate a tainted source. Inside
    /// such a loop, the *order of side effects* is hasher-dependent, so
    /// pushes and writes are sinks even when their argument taint is
    /// invisible (e.g. `format!("{k}")` inline captures).
    loop_depth: u32,
    input: &'a FileInput<'a>,
    out: &'b mut Vec<Finding>,
}

impl Ctx<'_, '_> {
    fn walk_block(&mut self, b: &Block) {
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    if let Some(e) = init {
                        self.walk_expr(e);
                    }
                    self.syms.note_let(names, ty.as_deref(), init.as_ref());
                    let tainted = match (ty, init) {
                        // An explicit BTree annotation is a sanitizer.
                        (Some(t), _) if t.contains("BTree") => false,
                        (_, Some(e)) => self.is_tainted(e),
                        _ => false,
                    };
                    for n in names {
                        if tainted {
                            self.tainted.insert(n.clone());
                        } else {
                            self.tainted.remove(n);
                        }
                    }
                }
                Stmt::Expr(e) => {
                    // Statement-level sanitizer: sorting a tainted local.
                    if let ExprKind::MethodCall { base, name, .. } = &e.kind {
                        if SORT_METHODS.contains(&name.as_str()) {
                            if let Some(root) = base.name_root() {
                                self.tainted.remove(root);
                            }
                        }
                    }
                    self.walk_expr(e);
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// Recursive walk: reports sinks, updates taint for assignments and
    /// loop bindings, descends into every subexpression.
    fn walk_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::MethodCall {
                base, name, args, ..
            } => {
                self.walk_expr(base);
                for a in args {
                    self.walk_expr(a);
                }
                if PUSH_METHODS.contains(&name.as_str()) {
                    let value_tainted =
                        self.loop_depth > 0 || args.iter().any(|a| self.is_tainted(a));
                    if value_tainted {
                        if is_field_access(base) {
                            self.report(
                                e.line,
                                &format!(".{name}("),
                                &format!(
                                    "unordered-iteration order reaches exported field via .{name}()"
                                ),
                            );
                        } else if let Some(root) = base.name_root() {
                            self.tainted.insert(root.to_string());
                        }
                    }
                } else if is_sink_name(name)
                    && (self.loop_depth > 0
                        || self.is_tainted(base)
                        || args.iter().any(|a| self.is_tainted(a)))
                {
                    self.report(
                        e.line,
                        &format!(".{name}("),
                        &format!("unordered-iteration value flows into .{name}()"),
                    );
                }
            }
            ExprKind::Call { func, args } => {
                self.walk_expr(func);
                for a in args {
                    self.walk_expr(a);
                }
                if let ExprKind::Path(segs) = &func.kind {
                    if let Some(last) = segs.last() {
                        if is_sink_name(last)
                            && (self.loop_depth > 0 || args.iter().any(|a| self.is_tainted(a)))
                        {
                            self.report(
                                e.line,
                                &format!("{last}("),
                                &format!("unordered-iteration value flows into {last}()"),
                            );
                        }
                    }
                }
            }
            ExprKind::Macro { name, args } => {
                for a in args {
                    self.walk_expr(a);
                }
                if WRITE_MACROS.contains(&name.as_str())
                    && (self.loop_depth > 0 || args.iter().any(|a| self.is_tainted(a)))
                {
                    self.report(
                        e.line,
                        &format!("{name}!"),
                        &format!("unordered-iteration value written out via {name}!"),
                    );
                }
            }
            ExprKind::Assign { target, value, .. } => {
                self.walk_expr(value);
                self.walk_expr(target);
                if self.is_tainted(value) {
                    if let Some(root) = target.name_root() {
                        if is_field_access(target) {
                            // Assigning into a field: only flag
                            // order-carrying values (collections/iters are
                            // approximated by "directly from a source").
                            if self.is_direct_source(value) {
                                self.report(
                                    e.line,
                                    "= unordered iteration",
                                    "unordered iterator stored into a field without sorting",
                                );
                            }
                        } else {
                            self.tainted.insert(root.to_string());
                        }
                    }
                } else if let Some(root) = target.name_root() {
                    if !is_field_access(target) {
                        self.tainted.remove(root);
                    }
                }
            }
            ExprKind::For {
                pat_names,
                iter,
                body,
            } => {
                self.walk_expr(iter);
                let iter_tainted = self.is_tainted(iter);
                let mut added: Vec<String> = Vec::new();
                if iter_tainted {
                    self.loop_depth += 1;
                    for n in pat_names {
                        if self.tainted.insert(n.clone()) {
                            added.push(n.clone());
                        }
                    }
                }
                self.walk_block(body);
                if iter_tainted {
                    self.loop_depth -= 1;
                }
                for n in added {
                    self.tainted.remove(&n);
                }
            }
            ExprKind::If { cond, then, else_ } => {
                self.walk_expr(cond);
                self.walk_block(then);
                if let Some(e2) = else_ {
                    self.walk_expr(e2);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee);
                let scrut_tainted = self.is_tainted(scrutinee);
                for arm in arms {
                    let mut added: Vec<String> = Vec::new();
                    if scrut_tainted {
                        for n in &arm.pat_names {
                            if self.tainted.insert(n.clone()) {
                                added.push(n.clone());
                            }
                        }
                    }
                    self.walk_expr(&arm.body);
                    for n in added {
                        self.tainted.remove(&n);
                    }
                }
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            ExprKind::Loop { body } => self.walk_block(body),
            ExprKind::Block(b) => self.walk_block(b),
            ExprKind::Closure { body, .. } => self.walk_expr(body),
            ExprKind::Field(base, _) => self.walk_expr(base),
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => self.walk_expr(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
            }
            ExprKind::Index { base, index } => {
                self.walk_expr(base);
                self.walk_expr(index);
            }
            ExprKind::Tuple(elems) => {
                for el in elems {
                    self.walk_expr(el);
                }
            }
            ExprKind::StructLit { fields, .. } => {
                for (_, v) in fields {
                    if let Some(v) = v {
                        self.walk_expr(v);
                    }
                }
            }
            ExprKind::Return(Some(v)) => self.walk_expr(v),
            ExprKind::Path(_) | ExprKind::Lit(..) | ExprKind::Return(None) | ExprKind::Other => {}
        }
    }

    /// Whether the expression's *value* carries unordered-iteration order.
    fn is_tainted(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Path(segs) => segs.len() == 1 && self.tainted.contains(&segs[0]),
            ExprKind::Field(base, name) => self.tainted.contains(name) || self.is_tainted(base),
            ExprKind::MethodCall {
                base,
                name,
                turbofish,
                args,
            } => {
                if name.starts_with("det_") {
                    return false; // vcdn_types::det_iter family
                }
                if SOURCE_METHODS.contains(&name.as_str())
                    && self.syms.class_of(base) == VarClass::Unordered
                {
                    return true;
                }
                if name == "collect" {
                    if turbofish.contains("BTree") {
                        return false;
                    }
                    return self.is_tainted(base);
                }
                if SORT_METHODS.contains(&name.as_str())
                    || ORDER_INSENSITIVE.contains(&name.as_str())
                {
                    return false;
                }
                self.is_tainted(base) || args.iter().any(|a| self.is_tainted(a))
            }
            ExprKind::Call { func, args } => {
                if let ExprKind::Path(segs) = &func.kind {
                    if segs.iter().any(|s| s.starts_with("det_")) {
                        return false;
                    }
                }
                args.iter().any(|a| self.is_tainted(a))
            }
            ExprKind::Macro { args, .. } => args.iter().any(|a| self.is_tainted(a)),
            ExprKind::Binary { lhs, rhs, .. } => self.is_tainted(lhs) || self.is_tainted(rhs),
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr, .. } => self.is_tainted(expr),
            ExprKind::Index { base, .. } => self.is_tainted(base),
            ExprKind::Tuple(elems) => elems.iter().any(|el| self.is_tainted(el)),
            ExprKind::StructLit { fields, .. } => fields
                .iter()
                .any(|(_, v)| v.as_ref().is_some_and(|v| self.is_tainted(v))),
            ExprKind::If { then, else_, .. } => {
                block_value_tainted(self, then)
                    || else_.as_ref().is_some_and(|e2| self.is_tainted(e2))
            }
            ExprKind::Match { arms, .. } => arms.iter().any(|a| self.is_tainted(&a.body)),
            ExprKind::Block(b) => block_value_tainted(self, b),
            _ => false,
        }
    }

    /// Whether the expression is literally `<unordered>.<source>()…`
    /// without an intervening collect (used for field assignments).
    fn is_direct_source(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::MethodCall { base, name, .. } => {
                (SOURCE_METHODS.contains(&name.as_str())
                    && self.syms.class_of(base) == VarClass::Unordered)
                    || (name != "collect" && self.is_direct_source(base))
            }
            _ => false,
        }
    }

    fn report(&mut self, line: u32, snippet: &str, message: &str) {
        self.out.push(Finding {
            rule: "determinism-flow",
            file: self.input.rel_path.to_string(),
            line,
            snippet: snippet.to_string(),
            message: format!("{message}; sort first or use vcdn_types::det_iter"),
        });
    }
}

/// Taint of a block's trailing expression (block-as-value position).
fn block_value_tainted(ctx: &Ctx<'_, '_>, b: &Block) -> bool {
    match b.stmts.last() {
        Some(Stmt::Expr(e)) => ctx.is_tainted(e),
        _ => false,
    }
}

fn is_field_access(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Field(..) => true,
        ExprKind::Unary { expr, .. } => is_field_access(expr),
        ExprKind::Index { base, .. } => is_field_access(base),
        _ => false,
    }
}

fn is_sink_name(name: &str) -> bool {
    ["json", "serial", "emit", "render"]
        .iter()
        .any(|n| name.to_ascii_lowercase().contains(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        let ast = parse(&lexed);
        let input = FileInput {
            rel_path: "crates/x/src/lib.rs",
            crate_name,
            declared_features: &[],
            lexed: &lexed,
            ast: &ast,
        };
        let mut out = Vec::new();
        check(&input, &ast, &mut out);
        out
    }

    const TAINTED_PUSH: &str = "\
struct R { lines: Vec<String> }
impl R {
    fn fill(&mut self, m: FastMap<u32, u64>) {
        for (k, v) in m.iter() {
            self.lines.push(format!(\"{k}={v}\"));
        }
    }
}";

    #[test]
    fn unsorted_iteration_into_field_push_fires() {
        let f = run("core", TAINTED_PUSH);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "determinism-flow");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn out_of_scope_crates_are_silent() {
        assert!(run("bench", TAINTED_PUSH).is_empty());
        assert!(run("lint", TAINTED_PUSH).is_empty());
    }

    #[test]
    fn collect_then_sort_is_clean() {
        let src = "\
struct R { lines: Vec<String> }
impl R {
    fn fill(&mut self, m: FastMap<u32, u64>) {
        let mut pairs: Vec<(u32, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_unstable_by_key(|p| p.0);
        for (k, v) in pairs {
            self.lines.push(format!(\"{k}={v}\"));
        }
    }
}";
        assert!(run("core", src).is_empty(), "{:?}", run("core", src));
    }

    #[test]
    fn btree_collect_and_det_iter_are_sanitizers() {
        let src = "\
fn a(m: FastMap<u32, u64>, out: &mut String) {
    let sorted: BTreeMap<u32, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
    for (k, v) in sorted.iter() { out.push_str(\"x\"); }
}
fn b(m: FastMap<u32, u64>, out: &mut Vec<u32>) {
    for k in det_iter(&m) { out.push(1); }
}";
        assert!(run("obs", src).is_empty());
    }

    #[test]
    fn order_insensitive_terminals_are_clean() {
        let src = "\
struct S { total: u64 }
impl S {
    fn agg(&mut self, m: FastMap<u32, u64>, w: &mut String) {
        let total: u64 = m.values().sum();
        writeln!(w, \"{}\", total);
        self.total = total;
    }
}";
        assert!(run("sim", src).is_empty());
    }

    #[test]
    fn write_macro_sink_fires() {
        let src = "\
fn dump(m: HashMap<u32, u64>, w: &mut String) {
    for k in m.keys() {
        writeln!(w, \"{}\", k);
    }
}";
        let f = run("obs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].snippet.contains("writeln"));
    }

    #[test]
    fn json_call_sink_fires() {
        let src = "\
fn dump(m: FastMap<u32, u64>) -> String {
    let items: Vec<u64> = m.values().copied().collect();
    to_json(&items)
}";
        let f = run("obs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].snippet.contains("to_json"));
    }

    #[test]
    fn ordered_receivers_are_clean() {
        let src = "\
fn dump(m: BTreeMap<u32, u64>, v: Vec<u64>, out: &mut Vec<u64>) {
    for x in m.values() { out.push(*x); }
    for x in v.iter() { out.push(*x); }
}";
        assert!(run("core", src).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = format!("#[cfg(test)]\nmod tests {{ {TAINTED_PUSH} }}");
        assert!(run("core", &src).is_empty());
    }
}
