//! `vcdn-lint`: offline, workspace-aware static analysis for the vcdn
//! workspace.
//!
//! The replay engine's value rests on properties `clippy` cannot express:
//! bit-identical determinism across worker counts and hashers,
//! allocation-free decide paths, epsilon-guarded cost math, and
//! panic-free library code. This crate walks the workspace source with a
//! small in-repo lexer ([`lexer`]) and enforces those invariants as five
//! machine-checked rules ([`rules`]), each individually suppressible via
//! the checked-in `lint.allow` file ([`allow`]) — every suppression with a
//! reviewable justification.
//!
//! See `LINTS.md` at the repository root for the rule catalogue, and run
//! `cargo run -p vcdn-lint -- --explain <rule>` for the same text offline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allow;
pub mod arith;
pub mod ast;
pub mod flow;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use allow::{AllowEntry, AllowError, AllowList};
pub use rules::{Finding, Rule, RULES};
pub use workspace::{check_workspace, CheckReport};
