//! Best-effort symbol classification for the AST-lite rules.
//!
//! vcdn-lint has no type checker, so the flow rules work from a
//! per-file table mapping identifier names to coarse classes, built from
//! the declarations the parser *can* see: struct fields, function
//! parameters, `let` annotations, `as` casts, and literal initializers.
//! A name declared twice with conflicting classes degrades to
//! [`VarClass::Other`], which every rule treats as "unknown — stay
//! silent". False negatives are acceptable; false positives are not.

use crate::ast::{Ast, Expr, ExprKind, FnItem};
use crate::lexer::TokKind;
use std::collections::HashMap;

/// Coarse classification of a name or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarClass {
    /// An iteration-order-unstable container (`FastMap`, `HashSet`, …).
    Unordered,
    /// A primitive integer.
    Int,
    /// `f32` / `f64`.
    Float,
    /// Anything else, unknown, or conflicting declarations.
    Other,
}

const UNORDERED_TYPES: &[&str] = &["FastMap", "FastSet", "HashMap", "HashSet"];
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Classifies a raw type string as captured by the parser
/// (`&mut FastMap<ChunkId,u32>` → [`VarClass::Unordered`]).
pub fn classify_type(ty: &str) -> VarClass {
    // Strip leading references/pointers and `mut`.
    let mut t = ty.trim();
    loop {
        let next = t
            .trim_start_matches(['&', '*', ' '])
            .trim_start_matches("mut ")
            .trim_start();
        // `&mut FastMap` may render without a space after `mut`.
        let next = match next.strip_prefix("mut") {
            Some(rest) if rest.starts_with(|c: char| c.is_ascii_uppercase()) => rest,
            _ => next,
        };
        if next == t {
            break;
        }
        t = next;
    }
    // Leading path/identifier segment (generics and paths cut off).
    let head_end = t
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    let head = &t[..head_end];
    // `std::collections::HashMap<…>`: classify by the last segment too.
    let last = t[..t.find('<').unwrap_or(t.len())]
        .rsplit("::")
        .next()
        .map(|s| {
            let e = s
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(s.len());
            &s[..e]
        })
        .unwrap_or(head);
    for cand in [head, last] {
        if UNORDERED_TYPES.contains(&cand) {
            return VarClass::Unordered;
        }
        if INT_TYPES.contains(&cand) {
            return VarClass::Int;
        }
        if cand == "f32" || cand == "f64" {
            return VarClass::Float;
        }
    }
    VarClass::Other
}

/// Name → class map with conflict demotion.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    map: HashMap<String, VarClass>,
}

impl SymbolTable {
    /// Builds the file-level table from every struct field in the file.
    pub fn from_ast(ast: &Ast) -> SymbolTable {
        let mut table = SymbolTable::default();
        crate::ast::for_each_struct(ast, &mut |_, fields| {
            for f in fields {
                table.declare(&f.name, classify_type(&f.ty));
            }
        });
        table
    }

    /// A copy of this table extended with a function's typed parameters.
    pub fn scoped_to(&self, func: &FnItem) -> SymbolTable {
        let mut t = self.clone();
        for p in &func.params {
            t.declare(&p.name, classify_type(&p.ty));
        }
        t
    }

    /// Records a declaration; conflicting re-declarations demote to
    /// [`VarClass::Other`].
    pub fn declare(&mut self, name: &str, class: VarClass) {
        match self.map.get(name) {
            Some(&prev) if prev != class => {
                self.map.insert(name.to_string(), VarClass::Other);
            }
            _ => {
                self.map.insert(name.to_string(), class);
            }
        }
    }

    /// Records a `let` binding from its annotation or initializer shape.
    pub fn note_let(&mut self, names: &[String], ty: Option<&str>, init: Option<&Expr>) {
        let class = match (ty, init) {
            (Some(t), _) => classify_type(t),
            (None, Some(e)) => self.class_of(e),
            (None, None) => VarClass::Other,
        };
        // Destructuring patterns get no class (per-name types unknown).
        if names.len() == 1 {
            self.declare(&names[0], class);
        } else {
            for n in names {
                self.declare(n, VarClass::Other);
            }
        }
    }

    /// Looks up a declared name.
    pub fn class_of_name(&self, name: &str) -> VarClass {
        self.map.get(name).copied().unwrap_or(VarClass::Other)
    }

    /// Classifies an expression: named things via the table, casts via
    /// their target type, literals via their token kind.
    pub fn class_of(&self, e: &Expr) -> VarClass {
        match &e.kind {
            ExprKind::Path(_) | ExprKind::Field(..) => e
                .name_root()
                .map_or(VarClass::Other, |n| self.class_of_name(n)),
            ExprKind::Cast { ty, .. } => classify_type(ty),
            ExprKind::Lit(kind, _) => match kind {
                TokKind::Int => VarClass::Int,
                TokKind::Float => VarClass::Float,
                _ => VarClass::Other,
            },
            ExprKind::Unary { expr, .. } => self.class_of(expr),
            ExprKind::Binary { op, lhs, rhs, .. } => {
                // Arithmetic preserves the operand class when consistent.
                if matches!(op.as_str(), "+" | "-" | "*" | "/" | "%") {
                    let (l, r) = (self.class_of(lhs), self.class_of(rhs));
                    if l == r {
                        l
                    } else {
                        VarClass::Other
                    }
                } else {
                    VarClass::Other
                }
            }
            ExprKind::MethodCall { name, base, .. } => match name.as_str() {
                // Common class-preserving methods on integers.
                "saturating_add" | "saturating_sub" | "saturating_mul" | "wrapping_add"
                | "wrapping_sub" | "wrapping_mul" | "min" | "max" => self.class_of(base),
                _ => VarClass::Other,
            },
            _ => VarClass::Other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    #[test]
    fn classify_type_basics() {
        assert_eq!(classify_type("u64"), VarClass::Int);
        assert_eq!(classify_type("f64"), VarClass::Float);
        assert_eq!(classify_type("FastMap<ChunkId,u32>"), VarClass::Unordered);
        assert_eq!(classify_type("&mut FastMap<K,V>"), VarClass::Unordered);
        assert_eq!(
            classify_type("std::collections::HashMap<K,V>"),
            VarClass::Unordered
        );
        assert_eq!(classify_type("Vec<u64>"), VarClass::Other);
        assert_eq!(classify_type("BTreeMap<K,V>"), VarClass::Other);
    }

    #[test]
    fn conflicting_declarations_demote_to_other() {
        let ast = parse(&lex(
            "struct A { total_ms: u64 }\nstruct B { total_ms: f64 }\nstruct C { k: u32 }",
        ));
        let t = SymbolTable::from_ast(&ast);
        assert_eq!(t.class_of_name("total_ms"), VarClass::Other);
        assert_eq!(t.class_of_name("k"), VarClass::Int);
    }

    #[test]
    fn params_and_lets_extend_scope() {
        let ast = parse(&lex("fn f(chunks: FastMap<u32,u64>, dt_ms: u64) {}"));
        let file = SymbolTable::from_ast(&ast);
        let mut func = None;
        crate::ast::for_each_fn(&ast, &mut |f, _| func = Some(f));
        let t = file.scoped_to(func.expect("fn"));
        assert_eq!(t.class_of_name("chunks"), VarClass::Unordered);
        assert_eq!(t.class_of_name("dt_ms"), VarClass::Int);
        assert_eq!(t.class_of_name("nope"), VarClass::Other);
    }
}
