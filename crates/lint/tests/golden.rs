//! Golden tests: seeded fixture workspaces must yield exact
//! file:line:rule diagnostics, the real workspace must be clean, and the
//! CLI must use the documented exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;

use vcdn_lint::check_workspace;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

#[test]
fn seeded_fixture_reports_one_exact_finding_per_rule() {
    let report = check_workspace(&fixture("ws")).expect("fixture ws checks");
    let got: Vec<(String, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule))
        .collect();
    let want = vec![
        (
            "crates/core/src/flow.rs".to_string(),
            13,
            "determinism-flow",
        ),
        ("crates/core/src/lib.rs".to_string(), 5, "determinism"),
        ("crates/core/src/lib.rs".to_string(), 11, "hot-path"),
        ("crates/core/src/lib.rs".to_string(), 17, "panic"),
        ("crates/sim/src/engine.rs".to_string(), 7, "lock-discipline"),
        ("crates/types/src/counters.rs".to_string(), 7, "clock-arith"),
        ("crates/types/src/lib.rs".to_string(), 5, "float-eq"),
        ("crates/types/src/lib.rs".to_string(), 8, "feature-gate"),
    ];
    assert_eq!(got, want, "full findings: {:#?}", report.findings);
    assert_eq!(report.suppressed, 0);
    assert!(report.allow_errors.is_empty());
    assert!(!report.is_clean());
}

#[test]
fn seeded_fixture_covers_every_rule() {
    let report = check_workspace(&fixture("ws")).expect("fixture ws checks");
    for rule in vcdn_lint::RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule.name),
            "fixture ws has no seeded violation for rule `{}`",
            rule.name
        );
    }
}

#[test]
fn allow_fixture_suppresses_flags_stale_and_rejects_bad_justification() {
    let report = check_workspace(&fixture("ws-allow")).expect("fixture ws-allow checks");
    // The seeded unwrap is suppressed by the valid entry...
    assert!(
        report.findings.is_empty(),
        "findings: {:#?}",
        report.findings
    );
    assert_eq!(report.suppressed, 1);
    // ...but the stale entry and the justification-less entry are errors,
    // so the workspace is still not clean.
    assert_eq!(
        report.allow_errors.len(),
        2,
        "errors: {:#?}",
        report.allow_errors
    );
    assert!(report
        .allow_errors
        .iter()
        .any(|e| e.message.contains("justification")));
    assert!(report
        .allow_errors
        .iter()
        .any(|e| e.message.contains("stale")));
    assert!(!report.is_clean());
}

#[test]
fn real_workspace_is_clean() {
    let report = check_workspace(&repo_root()).expect("workspace checks");
    assert!(
        report.findings.is_empty(),
        "unsuppressed findings in the real workspace: {:#?}",
        report.findings
    );
    assert!(
        report.allow_errors.is_empty(),
        "lint.allow problems: {:#?}",
        report.allow_errors
    );
    assert!(report.files_scanned > 50, "workspace walk looks truncated");
}

#[test]
fn cli_exit_codes_match_contract() {
    let bin = env!("CARGO_BIN_EXE_vcdn-lint");
    // Clean workspace -> 0.
    let out = Command::new(bin)
        .args(["--check", "--root"])
        .arg(repo_root())
        .output()
        .expect("run vcdn-lint");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Seeded violations -> nonzero, with file:line:rule diagnostics on stdout.
    let out = Command::new(bin)
        .args(["--check", "--root"])
        .arg(fixture("ws"))
        .output()
        .expect("run vcdn-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "crates/core/src/flow.rs:13: [determinism-flow]",
        "crates/core/src/lib.rs:5: [determinism]",
        "crates/core/src/lib.rs:11: [hot-path]",
        "crates/core/src/lib.rs:17: [panic]",
        "crates/sim/src/engine.rs:7: [lock-discipline]",
        "crates/types/src/counters.rs:7: [clock-arith]",
        "crates/types/src/lib.rs:5: [float-eq]",
        "crates/types/src/lib.rs:8: [feature-gate]",
    ] {
        assert!(stdout.contains(needle), "missing `{needle}` in:\n{stdout}");
    }

    // Allowlist problems alone also fail the check.
    let out = Command::new(bin)
        .args(["--check", "--root"])
        .arg(fixture("ws-allow"))
        .output()
        .expect("run vcdn-lint");
    assert_eq!(out.status.code(), Some(1));

    // --explain works for every rule; unknown rules are usage errors.
    for rule in vcdn_lint::RULES {
        let out = Command::new(bin)
            .args(["--explain", rule.name])
            .output()
            .expect("run vcdn-lint");
        assert!(out.status.success());
        assert!(String::from_utf8_lossy(&out.stdout).contains("WHY"));
    }
    let out = Command::new(bin)
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("run vcdn-lint");
    assert_eq!(out.status.code(), Some(2));
}
