//! One seeded panic violation, suppressed by the fixture's lint.allow.

pub fn pick_first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
