//! Seeded determinism-flow violation: line 13 pushes hash-map-ordered
//! values into an exported field. Every other function is a sanitizer
//! path (explicit sort, BTree collection, det_iter, order-insensitive
//! fold) and must stay silent.

pub struct Report {
    lines: Vec<String>,
}

impl Report {
    pub fn unsorted_dump(&mut self, m: FastMap<u64, u64>) {
        for (k, v) in m.iter() {
            self.lines.push(format!("{k}={v}"));
        }
    }

    pub fn sorted_dump(&mut self, m: FastMap<u64, u64>) {
        let mut pairs: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_unstable_by_key(|p| p.0);
        for (k, v) in pairs {
            self.lines.push(format!("{k}={v}"));
        }
    }

    pub fn det_iter_dump(&mut self, m: FastMap<u64, u64>) {
        for (k, v) in det_iter(&m) {
            self.lines.push(format!("{k}={v}"));
        }
    }

    pub fn btree_dump(&mut self, m: FastMap<u64, u64>) {
        let sorted: BTreeMap<u64, u64> = m.iter().map(|(k, v)| (*k, *v)).collect();
        for (k, v) in sorted.iter() {
            self.lines.push(format!("{k}={v}"));
        }
    }

    pub fn total(&self, m: FastMap<u64, u64>) -> u64 {
        m.values().sum()
    }
}
