//! Seeded violations: determinism (line 5), hot-path (line 11), panic
//! (line 17). Golden tests assert these exact file:line:rule triples.

pub fn decide_with_clock() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

// lint: hot
pub fn hot_decide(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    out.extend_from_slice(xs);
    out
}

pub fn pick_first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: none of these may be reported.
    pub fn exempt() -> u64 {
        let v = vec![std::time::Instant::now().elapsed().as_millis() as u64];
        *v.first().unwrap()
    }
}
