//! Seeded violations: float-eq (line 5) and feature-gate (line 8, a typo
//! of the declared `fast-hash` feature).

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

#[cfg(feature = "fast-hsah")]
pub fn gated() {}

#[cfg(feature = "fast-hash")]
pub fn correctly_gated() {}
