//! Seeded clock-arith violation: line 7 subtracts two known-u64 clock
//! identifiers without a saturating/checked/wrapping guard. The other
//! functions show the sanctioned forms (saturating method, wrap-ok
//! marker, float math) and must stay silent.

pub fn span_ms(start_ms: u64, end_ms: u64) -> u64 {
    end_ms - start_ms
}

pub fn span_ms_ok(start_ms: u64, end_ms: u64) -> u64 {
    end_ms.saturating_sub(start_ms)
}

pub fn ring_slot(seed_ms: u64) -> u64 {
    seed_ms * 31 // lint: wrap-ok
}

pub fn rate(hit_bytes: f64, window_ms: f64) -> f64 {
    hit_bytes / window_ms * 1000.0
}
