//! Seeded lock-discipline violation: line 7 acquires the queue mutex
//! while the shard guard from line 6 is still held. The BatchQueue impl
//! below is the engine's legal wait pattern and must stay silent.

pub fn drain_shard(queue: &Shared, shard: &Shared) -> usize {
    let sh = shard.state.lock().unwrap_or_else(PoisonError::into_inner);
    let q = queue.state.lock().unwrap_or_else(PoisonError::into_inner);
    sh.len() + q.len()
}

impl BatchQueue {
    pub fn pop(&self) -> Option<u64> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(batch) = st.batches.pop_front() {
                drop(st);
                self.can_push.notify_one();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self
                .can_pop
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn scoped_locks_are_fine(&self) -> usize {
        let pushed = {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.batches.len()
        };
        let free = {
            let st = self.free.lock().unwrap_or_else(PoisonError::into_inner);
            st.len()
        };
        pushed + free
    }
}
