//! `vcdn-lint --json` contract: stdout is one well-formed JSON document
//! with a stable field order, findings sorted by (file, line, rule), and
//! the same content as the human-readable format.

use std::path::{Path, PathBuf};
use std::process::Command;

use vcdn_types::json::{parse, Json};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(args: &[&str], root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_vcdn-lint"))
        .args(args)
        .arg("--root")
        .arg(root)
        .output()
        .expect("run vcdn-lint")
}

fn array<'a>(doc: &'a Json, key: &str) -> &'a [Json] {
    match doc.get(key) {
        Some(Json::Arr(items)) => items,
        other => panic!("`{key}` should be an array, got {other:?}"),
    }
}

fn str_field(v: &Json, key: &str) -> String {
    v.get(key)
        .and_then(|j| j.as_str())
        .unwrap_or_else(|| panic!("missing string field `{key}` in {v:?}"))
        .to_string()
}

fn num_field(v: &Json, key: &str) -> u32 {
    match v.get(key) {
        Some(Json::Int(n)) => *n as u32,
        other => panic!("missing number field `{key}`, got {other:?}"),
    }
}

#[test]
fn json_output_parses_and_matches_human_format() {
    let ws = fixture("ws");

    let json_out = run(&["--check", "--json"], &ws);
    assert_eq!(json_out.status.code(), Some(1), "seeded ws must fail");
    let stdout = String::from_utf8(json_out.stdout).expect("utf-8 stdout");
    let doc = parse(&stdout).expect("stdout parses as JSON");

    // Summary counters are present and truthful.
    assert_eq!(num_field(&doc, "files_scanned"), 5);
    assert_eq!(num_field(&doc, "suppressed"), 0);
    assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
    assert!(array(&doc, "allow_errors").is_empty());

    // Findings match the human format line-for-line, in the same order.
    let human_out = run(&["--check"], &ws);
    assert_eq!(human_out.status.code(), Some(1));
    let human = String::from_utf8(human_out.stdout).expect("utf-8 stdout");
    let human_lines: Vec<&str> = human.lines().collect();

    let findings = array(&doc, "findings");
    assert_eq!(findings.len(), human_lines.len());
    for (f, line) in findings.iter().zip(&human_lines) {
        let rebuilt = format!(
            "{}:{}: [{}] {} — `{}`",
            str_field(f, "file"),
            num_field(f, "line"),
            str_field(f, "rule"),
            str_field(f, "message"),
            str_field(f, "snippet")
        );
        assert_eq!(
            &rebuilt, line,
            "JSON finding must round-trip to the human line"
        );
    }

    // Sorted by (file, line, rule).
    let keys: Vec<(String, u32, String)> = findings
        .iter()
        .map(|f| {
            (
                str_field(f, "file"),
                num_field(f, "line"),
                str_field(f, "rule"),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "findings must be sorted by file:line:rule");
}

#[test]
fn json_field_order_is_stable() {
    let out = run(&["--check", "--json"], &fixture("ws"));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");

    // Top-level key order is part of the contract (diffable artifacts).
    let top: Vec<usize> = [
        "\"findings\"",
        "\"allow_errors\"",
        "\"files_scanned\"",
        "\"suppressed\"",
        "\"clean\"",
    ]
    .iter()
    .map(|k| stdout.find(k).unwrap_or_else(|| panic!("missing key {k}")))
    .collect();
    assert!(
        top.windows(2).all(|w| w[0] < w[1]),
        "top-level key order drifted"
    );

    // Per-finding key order, checked on the first finding object.
    let first = stdout
        .find("{\"file\"")
        .expect("finding objects must lead with \"file\"");
    let obj_end = stdout[first..]
        .find('}')
        .map(|i| first + i)
        .expect("object closes");
    let obj = &stdout[first..obj_end];
    let fields: Vec<usize> = [
        "\"file\"",
        "\"line\"",
        "\"rule\"",
        "\"message\"",
        "\"snippet\"",
    ]
    .iter()
    .map(|k| {
        obj.find(k)
            .unwrap_or_else(|| panic!("missing key {k} in {obj}"))
    })
    .collect();
    assert!(
        fields.windows(2).all(|w| w[0] < w[1]),
        "finding key order drifted"
    );

    // Byte-stable: two runs over the same tree are identical.
    let again = run(&["--check", "--json"], &fixture("ws"));
    assert_eq!(
        stdout,
        String::from_utf8(again.stdout).expect("utf-8 stdout")
    );
}

#[test]
fn json_reports_allow_errors() {
    let out = run(&["--check", "--json"], &fixture("ws-allow"));
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    let doc = parse(&stdout).expect("stdout parses as JSON");
    assert!(array(&doc, "findings").is_empty());
    assert_eq!(array(&doc, "allow_errors").len(), 2);
    assert_eq!(num_field(&doc, "suppressed"), 1);
    assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
    let messages: Vec<String> = array(&doc, "allow_errors")
        .iter()
        .map(|e| str_field(e, "message"))
        .collect();
    assert!(messages.iter().any(|m| m.contains("stale")));
    assert!(messages.iter().any(|m| m.contains("justification")));
}
