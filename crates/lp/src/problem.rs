//! Linear-program construction.

use crate::simplex::{self, Solution, SolveError};

/// Index of a structural variable in a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The variable's position in [`Solution::values`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx = b`
    Eq,
    /// `aᵀx ≥ b`
    Ge,
}

/// One linear constraint with a sparse coefficient row.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Constraint {
    pub coeffs: Vec<(usize, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A minimisation linear program over non-negative variables.
///
/// Build with [`LinearProgram::add_var`] /
/// [`LinearProgram::add_constraint`], then call [`LinearProgram::solve`].
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty minimisation problem.
    pub fn minimize() -> Self {
        LinearProgram::default()
    }

    /// Adds a variable `x ≥ 0` with objective coefficient `cost`; returns
    /// its handle.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is not finite.
    pub fn add_var(&mut self, cost: f64) -> VarId {
        assert!(cost.is_finite(), "objective coefficient must be finite");
        self.objective.push(cost);
        VarId(self.objective.len() - 1)
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `Σ coeff·var  relation  rhs`.
    ///
    /// Duplicate variable entries in `coeffs` are summed. Zero-coefficient
    /// entries are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist, or any coefficient
    /// or the right-hand side is not finite.
    pub fn add_constraint(&mut self, coeffs: Vec<(VarId, f64)>, relation: Relation, rhs: f64) {
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for (v, c) in coeffs {
            assert!(c.is_finite(), "constraint coefficient must be finite");
            assert!(v.0 < self.num_vars(), "constraint references unknown var");
            if c != 0.0 {
                match dense.iter_mut().find(|(i, _)| *i == v.0) {
                    Some((_, acc)) => *acc += c,
                    None => dense.push((v.0, c)),
                }
            }
        }
        self.constraints.push(Constraint {
            coeffs: dense,
            relation,
            rhs,
        });
    }

    /// Convenience: adds the upper bound `var ≤ ub` as a constraint row.
    pub fn add_upper_bound(&mut self, var: VarId, ub: f64) {
        self.add_constraint(vec![(var, 1.0)], Relation::Le, ub);
    }

    /// Solves the program with the two-phase simplex method.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        simplex::solve(self)
    }

    /// Evaluates the objective at a point (for tests and verification).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks whether `x` satisfies every constraint and the
    /// non-negativity bounds, within tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_vars()`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_vars());
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        let y = lp.add_var(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        lp.add_upper_bound(y, 1.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
    }

    #[test]
    fn duplicate_coefficients_are_summed_and_zeros_dropped() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(0.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (x, 2.0), (y, 0.0)], Relation::Eq, 3.0);
        assert_eq!(lp.constraints[0].coeffs, vec![(0, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown var")]
    fn unknown_variable_rejected() {
        let mut lp = LinearProgram::minimize();
        lp.add_constraint(vec![(VarId(0), 1.0)], Relation::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_cost_rejected() {
        LinearProgram::minimize().add_var(f64::NAN);
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(2.0);
        let y = lp.add_var(-1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 0.5);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.0, 1.0], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[1.5, 1.0], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[1.0, -0.1], 1e-9)); // negative
        assert!((lp.objective_at(&[1.0, 3.0]) - (-1.0)).abs() < 1e-12);
    }
}
