//! Dense-tableau two-phase simplex.
//!
//! Phase 1 minimises the sum of artificial variables to find a basic
//! feasible solution; phase 2 minimises the real objective. Pricing is
//! Dantzig's rule (most negative reduced cost), falling back permanently to
//! Bland's rule after a stall threshold so that cycling on degenerate
//! problems cannot prevent termination.

use crate::problem::{LinearProgram, Relation};

/// Termination status of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic solution was found.
    Optimal,
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// The iteration cap was exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Termination status (always [`Status::Optimal`] on `Ok`).
    pub status: Status,
    /// Optimal objective value.
    pub objective: f64,
    /// Values of the structural variables, indexed by `VarId::index()`.
    pub values: Vec<f64>,
}

/// Coefficient magnitudes below this are treated as zero.
const EPS: f64 = 1e-9;
/// Feasibility tolerance for the phase-1 objective.
const FEAS_TOL: f64 = 1e-7;

struct Tableau {
    /// Row-major constraint matrix, `m` rows of `width` (`ncols + 1`, the
    /// last column holding the right-hand side).
    a: Vec<f64>,
    m: usize,
    ncols: usize,
    width: usize,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// First artificial column (columns `>= art_start` are artificial).
    art_start: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.width + c]
    }

    fn row(&self, r: usize) -> &[f64] {
        &self.a[r * self.width..(r + 1) * self.width]
    }

    /// Gauss-Jordan pivot on `(pr, pc)`, also updating the provided cost
    /// rows (each `width` long, last entry = −objective).
    fn pivot(&mut self, pr: usize, pc: usize, cost_rows: &mut [&mut Vec<f64>]) {
        let width = self.width;
        let pivot = self.at(pr, pc);
        debug_assert!(pivot.abs() > EPS, "pivot too small: {pivot}");
        // Normalise the pivot row.
        let inv = 1.0 / pivot;
        for j in 0..width {
            self.a[pr * width + j] *= inv;
        }
        self.a[pr * width + pc] = 1.0; // exact
                                       // Eliminate the pivot column elsewhere.
        for r in 0..self.m {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor == 0.0 {
                continue;
            }
            for j in 0..width {
                self.a[r * width + j] -= factor * self.a[pr * width + j];
            }
            self.a[r * width + pc] = 0.0; // exact
        }
        for cost in cost_rows.iter_mut() {
            let factor = cost[pc];
            if factor != 0.0 {
                for j in 0..width {
                    cost[j] -= factor * self.a[pr * width + j];
                }
                cost[pc] = 0.0;
            }
        }
        self.basis[pr] = pc;
    }

    /// Ratio test: the leaving row for entering column `pc`, or `None` if
    /// the column is unbounded. Ties break on the smallest basic-variable
    /// index (Bland-compatible).
    fn leaving_row(&self, pc: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.m {
            let coeff = self.at(r, pc);
            if coeff > EPS {
                let ratio = self.at(r, self.width - 1) / coeff;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < bratio - EPS
                            || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }
}

/// Chooses the entering column: Dantzig (most negative reduced cost) or
/// Bland (lowest-index negative) per `use_bland`, restricted to columns
/// `< limit` (used to bar artificials in phase 2).
fn entering_column(cost: &[f64], limit: usize, use_bland: bool) -> Option<usize> {
    if use_bland {
        (0..limit).find(|&j| cost[j] < -EPS)
    } else {
        let mut best = None;
        let mut best_val = -EPS;
        for (j, &c) in cost.iter().enumerate().take(limit) {
            if c < best_val {
                best_val = c;
                best = Some(j);
            }
        }
        best
    }
}

/// Runs simplex iterations until optimality for the given cost row.
fn iterate(
    t: &mut Tableau,
    cost: &mut Vec<f64>,
    mut extra: Option<&mut Vec<f64>>,
    col_limit: usize,
) -> Result<(), SolveError> {
    let max_iter = 200 + 50 * (t.m + t.ncols);
    let bland_after = 20 + 10 * (t.m + t.ncols);
    for iter in 0..max_iter {
        let use_bland = iter >= bland_after;
        let Some(pc) = entering_column(cost, col_limit, use_bland) else {
            return Ok(());
        };
        let Some(pr) = t.leaving_row(pc) else {
            return Err(SolveError::Unbounded);
        };
        match extra.as_deref_mut() {
            Some(e) => t.pivot(pr, pc, &mut [cost, e]),
            None => t.pivot(pr, pc, &mut [cost]),
        }
    }
    Err(SolveError::IterationLimit)
}

/// Solves `lp` with the two-phase simplex method.
pub fn solve(lp: &LinearProgram) -> Result<Solution, SolveError> {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Column layout: structural | slacks/surpluses | artificials | rhs.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for c in &lp.constraints {
        // After sign normalisation (rhs >= 0), Le takes a slack and is
        // basis-ready; Ge takes a surplus + artificial; Eq an artificial.
        let rel = effective_relation(c.relation, c.rhs < 0.0);
        match rel {
            Relation::Le => n_slack += 1,
            Relation::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Relation::Eq => n_art += 1,
        }
    }
    let ncols = n + n_slack + n_art;
    let width = ncols + 1;
    let mut t = Tableau {
        a: vec![0.0; m * width],
        m,
        ncols,
        width,
        basis: vec![usize::MAX; m],
        art_start: n + n_slack,
    };

    let mut slack_cursor = n;
    let mut art_cursor = t.art_start;
    for (r, c) in lp.constraints.iter().enumerate() {
        let flip = c.rhs < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for &(j, v) in &c.coeffs {
            t.a[r * width + j] += sign * v;
        }
        t.a[r * width + width - 1] = sign * c.rhs;
        match effective_relation(c.relation, flip) {
            Relation::Le => {
                t.a[r * width + slack_cursor] = 1.0;
                t.basis[r] = slack_cursor;
                slack_cursor += 1;
            }
            Relation::Ge => {
                t.a[r * width + slack_cursor] = -1.0;
                slack_cursor += 1;
                t.a[r * width + art_cursor] = 1.0;
                t.basis[r] = art_cursor;
                art_cursor += 1;
            }
            Relation::Eq => {
                t.a[r * width + art_cursor] = 1.0;
                t.basis[r] = art_cursor;
                art_cursor += 1;
            }
        }
    }

    // Phase-2 cost row: structural costs, zeros elsewhere. Initial basis
    // (slacks + artificials) has zero phase-2 cost, so reduced costs are
    // just the raw costs.
    let mut cost2 = vec![0.0; width];
    cost2[..n].copy_from_slice(&lp.objective);

    if n_art > 0 {
        // Phase-1 cost row: reduced costs of `min Σ artificials` under the
        // initial basis — subtract each artificial-basic row from the raw
        // phase-1 costs.
        let mut cost1 = vec![0.0; width];
        for c in cost1.iter_mut().take(ncols).skip(t.art_start) {
            *c = 1.0;
        }
        for r in 0..m {
            if t.basis[r] >= t.art_start {
                let row: Vec<f64> = t.row(r).to_vec();
                for j in 0..width {
                    cost1[j] -= row[j];
                }
            }
        }
        iterate(&mut t, &mut cost1, Some(&mut cost2), ncols)?;
        let w = -cost1[width - 1];
        if w > FEAS_TOL {
            return Err(SolveError::Infeasible);
        }
        // Drive any remaining basic artificials out (they carry value ~0).
        for r in 0..m {
            if t.basis[r] >= t.art_start {
                if let Some(pc) = (0..t.art_start).find(|&j| t.at(r, j).abs() > 1e-7) {
                    t.pivot(r, pc, &mut [&mut cost1, &mut cost2]);
                }
                // Otherwise the row is redundant; the artificial stays
                // basic at value zero and its column is barred below.
            }
        }
    }

    // Phase 2: bar artificial columns from entering.
    let art_start = t.art_start;
    iterate(&mut t, &mut cost2, None, art_start)?;

    let mut values = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            values[t.basis[r]] = t.at(r, width - 1).max(0.0);
        }
    }
    Ok(Solution {
        status: Status::Optimal,
        objective: -cost2[width - 1],
        values,
    })
}

/// The relation after multiplying a negative-rhs row by −1.
fn effective_relation(rel: Relation, flipped: bool) -> Relation {
    if !flipped {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, Relation};

    fn assert_opt(lp: &LinearProgram, expect_obj: f64, expect_x: Option<&[f64]>) {
        let sol = lp.solve().expect("solve should succeed");
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} != {}",
            sol.objective,
            expect_obj
        );
        assert!(lp.is_feasible(&sol.values, 1e-6), "solution infeasible");
        assert!(
            (lp.objective_at(&sol.values) - sol.objective).abs() < 1e-6,
            "reported objective disagrees with point"
        );
        if let Some(x) = expect_x {
            for (i, (&got, &want)) in sol.values.iter().zip(x).enumerate() {
                assert!((got - want).abs() < 1e-6, "x[{i}]={got} != {want}");
            }
        }
    }

    #[test]
    fn textbook_maximisation_as_min() {
        // max 3x + 5y st x<=4, 2y<=12, 3x+2y<=18 => (2,6), obj 36.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(-3.0);
        let y = lp.add_var(-5.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Relation::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        assert_opt(&lp, -36.0, Some(&[2.0, 6.0]));
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y st x + 2y = 4, x >= 1 => x=1, y=1.5, obj 2.5.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Eq, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        assert_opt(&lp, 2.5, Some(&[1.0, 1.5]));
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // min x st -x <= -3  (i.e. x >= 3).
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0);
        assert_opt(&lp, 3.0, Some(&[3.0]));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_eq!(lp.solve(), Err(SolveError::Unbounded));
    }

    #[test]
    fn zero_constraints_trivial() {
        // min 2x with x >= 0 free of constraints: x = 0.
        let mut lp = LinearProgram::minimize();
        lp.add_var(2.0);
        assert_opt(&lp, 0.0, Some(&[0.0]));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate vertex (multiple bases at the optimum).
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(-0.75);
        let y = lp.add_var(150.0);
        let z = lp.add_var(-0.02);
        let w = lp.add_var(6.0);
        lp.add_constraint(
            vec![(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)],
            Relation::Le,
            0.0,
        );
        lp.add_constraint(vec![(z, 1.0)], Relation::Le, 1.0);
        // Beale's cycling example: optimum -0.05 at z=1.
        let sol = lp.solve().unwrap();
        assert!((sol.objective - (-0.05)).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Duplicate equality leaves a redundant artificial row.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 0.5);
        assert_opt(&lp, 2.0, None);
    }

    #[test]
    fn equality_with_negative_rhs() {
        // min x+y st -x - y = -2  => x + y = 2.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, -1.0), (y, -1.0)], Relation::Eq, -2.0);
        assert_opt(&lp, 2.0, None);
    }

    #[test]
    fn bounded_box_optimum_on_vertex() {
        // min -x - y in the unit box => (1,1).
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(-1.0);
        lp.add_upper_bound(x, 1.0);
        lp.add_upper_bound(y, 1.0);
        assert_opt(&lp, -2.0, Some(&[1.0, 1.0]));
    }

    #[test]
    fn fractional_lp_relaxation_vertex() {
        // Knapsack-like relaxation: min -(3x+2y) st 2x + y <= 2, x,y <= 1.
        // Optimum x=0.5, y=1 -> -3.5.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(-3.0);
        let y = lp.add_var(-2.0);
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Le, 2.0);
        lp.add_upper_bound(x, 1.0);
        lp.add_upper_bound(y, 1.0);
        assert_opt(&lp, -3.5, Some(&[0.5, 1.0]));
    }

    #[test]
    fn ge_with_zero_rhs_needs_no_phase1_success_path() {
        // x >= 0 rows with rhs 0 still route through artificials; ensure
        // the drive-out logic leaves a clean optimum.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_var(1.0);
        let y = lp.add_var(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Ge, 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        // min x + 2y, need x+y>=4 and x>=y: best x=4,y=0 -> 4.
        assert_opt(&lp, 4.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn moderately_sized_random_like_problem() {
        // A structured 50-var transportation-style LP with known optimum:
        // min Σ i·x_i st Σ x_i = 10, x_i <= 1  -> fill the 10 cheapest.
        let mut lp = LinearProgram::minimize();
        let vars: Vec<_> = (0..50).map(|i| lp.add_var(i as f64)).collect();
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Relation::Eq, 10.0);
        for &v in &vars {
            lp.add_upper_bound(v, 1.0);
        }
        // Optimum: x_0..x_9 = 1 -> objective 0+1+...+9 = 45.
        assert_opt(&lp, 45.0, None);
    }
}
