//! A from-scratch dense two-phase simplex solver for linear programs.
//!
//! The paper's Optimal cache (§7) relaxes an Integer-Programming
//! formulation of offline caching to a linear program and solves it with
//! off-the-shelf LP software to obtain "a guaranteed, theoretical lower
//! bound on the achievable cost". This crate is the substitute for that
//! proprietary dependency: a self-contained minimising simplex over
//! problems of the form
//!
//! ```text
//! minimise    cᵀx
//! subject to  aᵢᵀx {≤, =, ≥} bᵢ      for each constraint i
//!             x ≥ 0
//! ```
//!
//! Upper bounds (`x ≤ 1` etc.) are expressed as ordinary constraints.
//! The implementation is a dense-tableau, two-phase simplex with Dantzig
//! pricing and a Bland's-rule fallback for anti-cycling — deliberately
//! simple and auditable, sized for the paper's "limited scale" Optimal
//! experiments (thousands of variables/constraints).
//!
//! # Examples
//!
//! ```
//! use vcdn_lp::{LinearProgram, Relation, Status};
//!
//! // minimise  -x - 2y   s.t.  x + y <= 4,  y <= 3,  x,y >= 0
//! let mut lp = LinearProgram::minimize();
//! let x = lp.add_var(-1.0);
//! let y = lp.add_var(-2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
//! lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
//! let sol = lp.solve().unwrap();
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - (-7.0)).abs() < 1e-7); // x=1, y=3
//! ```

#![forbid(unsafe_code)]

pub mod problem;
pub mod simplex;

pub use problem::{LinearProgram, Relation, VarId};
pub use simplex::{Solution, SolveError, Status};
