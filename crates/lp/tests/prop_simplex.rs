//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs whose feasible region is a bounded box
//! intersected with random half-planes, then verify (a) the reported
//! solution is feasible and consistent, (b) no random feasible point beats
//! it, and (c) in two dimensions, exhaustive vertex enumeration agrees.

use proptest::prelude::*;
use vcdn_lp::{LinearProgram, Relation, Status};

/// A random LP: n vars in [0, 10] boxes, m extra `<=` half-planes with
/// non-negative RHS (so x = 0 is always feasible), random costs.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<i32>,
    rows: Vec<(Vec<i32>, i32)>,
}

fn random_lp(max_vars: usize, max_rows: usize) -> impl Strategy<Value = RandomLp> {
    random_lp_sized(1, max_vars, max_rows)
}

fn random_lp_sized(
    min_vars: usize,
    max_vars: usize,
    max_rows: usize,
) -> impl Strategy<Value = RandomLp> {
    (min_vars..=max_vars).prop_flat_map(move |n| {
        (
            proptest::collection::vec(-9i32..=9, n),
            proptest::collection::vec(
                (proptest::collection::vec(-5i32..=5, n), 0i32..40),
                0..=max_rows,
            ),
        )
            .prop_map(|(costs, rows)| RandomLp { costs, rows })
    })
}

fn build(lp_def: &RandomLp) -> LinearProgram {
    let n = lp_def.costs.len();
    let mut lp = LinearProgram::minimize();
    let vars: Vec<_> = lp_def.costs.iter().map(|&c| lp.add_var(c as f64)).collect();
    for &v in &vars {
        lp.add_upper_bound(v, 10.0);
    }
    for (coeffs, rhs) in &lp_def.rows {
        lp.add_constraint(
            coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| (vars[i], c as f64))
                .collect(),
            Relation::Le,
            *rhs as f64,
        );
    }
    let _ = n;
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solution_is_feasible_and_consistent(def in random_lp(5, 6)) {
        let lp = build(&def);
        // x = 0 is feasible, every var bounded by 10 => never infeasible
        // nor unbounded.
        let sol = lp.solve().expect("box LPs always solve");
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        prop_assert!((lp.objective_at(&sol.values) - sol.objective).abs() < 1e-6);
        // The optimum can never beat the cost lower bound Σ min(c_i,0)*10.
        let lower: f64 = def.costs.iter().map(|&c| (c as f64).min(0.0) * 10.0).sum();
        prop_assert!(sol.objective >= lower - 1e-6);
        prop_assert!(sol.objective <= 1e-6); // x = 0 costs 0
    }

    #[test]
    fn no_random_feasible_point_beats_the_optimum(
        def in random_lp(4, 5),
        probes in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 4), 40),
    ) {
        let lp = build(&def);
        let sol = lp.solve().expect("box LPs always solve");
        for p in probes {
            let x = &p[..def.costs.len()];
            if lp.is_feasible(x, 1e-9) {
                prop_assert!(
                    lp.objective_at(x) >= sol.objective - 1e-6,
                    "probe {:?} beats reported optimum {}",
                    x,
                    sol.objective
                );
            }
        }
    }

    #[test]
    fn two_var_optimum_matches_vertex_enumeration(def in random_lp_sized(2, 2, 4)) {
        let lp = build(&def);
        let sol = lp.solve().expect("box LPs always solve");

        // Enumerate candidate vertices: intersections of all constraint
        // boundaries (half-planes + box walls + axes).
        let mut lines: Vec<(f64, f64, f64)> = vec![
            (1.0, 0.0, 0.0),  // x = 0
            (0.0, 1.0, 0.0),  // y = 0
            (1.0, 0.0, 10.0), // x = 10
            (0.0, 1.0, 10.0), // y = 10
        ];
        for (coeffs, rhs) in &def.rows {
            let a = *coeffs.first().unwrap_or(&0) as f64;
            let b = if coeffs.len() > 1 { coeffs[1] as f64 } else { 0.0 };
            lines.push((a, b, *rhs as f64));
        }
        let mut best = f64::INFINITY;
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, c1) = lines[i];
                let (a2, b2, c2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                let pt = [x, y];
                if lp.is_feasible(&pt, 1e-6) {
                    best = best.min(lp.objective_at(&pt));
                }
            }
        }
        // x = 0 is always a vertex candidate via axis intersections.
        prop_assert!(best.is_finite());
        prop_assert!(
            (sol.objective - best).abs() < 1e-5,
            "simplex {} vs vertex enumeration {}",
            sol.objective,
            best
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Phase-1 coverage: LPs with >= and = rows built around a known
    /// feasible point, so feasibility is guaranteed but the all-slack
    /// basis is not available.
    #[test]
    fn phase1_problems_solve_and_do_not_exceed_witness(
        witness in proptest::collection::vec(0i32..10, 2..5),
        rows in proptest::collection::vec(
            (proptest::collection::vec(-4i32..=4, 5), 0u8..3, 0i32..6),
            1..6,
        ),
        costs in proptest::collection::vec(-5i32..=5, 5),
    ) {
        let n = witness.len();
        let mut lp = LinearProgram::minimize();
        let vars: Vec<_> = (0..n).map(|i| lp.add_var(costs[i] as f64)).collect();
        for &v in &vars {
            lp.add_upper_bound(v, 20.0);
        }
        let w: Vec<f64> = witness.iter().map(|&x| x as f64).collect();
        for (coeffs, kind, slack) in &rows {
            let row: Vec<(vcdn_lp::VarId, f64)> = coeffs
                .iter()
                .take(n)
                .enumerate()
                .map(|(i, &c)| (vars[i], c as f64))
                .collect();
            let lhs_at_w: f64 = row.iter().map(|&(v, c)| c * w[v.index()]).sum();
            match kind % 3 {
                0 => lp.add_constraint(row, Relation::Ge, lhs_at_w - *slack as f64),
                1 => lp.add_constraint(row, Relation::Le, lhs_at_w + *slack as f64),
                _ => lp.add_constraint(row, Relation::Eq, lhs_at_w),
            }
        }
        // The witness is feasible by construction, so the LP must solve
        // and the optimum cannot exceed the witness's objective.
        let sol = lp.solve().expect("feasible by construction");
        prop_assert!(lp.is_feasible(&sol.values, 1e-5));
        prop_assert!(sol.objective <= lp.objective_at(&w) + 1e-5);
    }
}
