//! Randomized property tests for the simplex solver.
//!
//! Strategy: generate random LPs whose feasible region is a bounded box
//! intersected with random half-planes, then verify (a) the reported
//! solution is feasible and consistent, (b) no random feasible point beats
//! it, and (c) in two dimensions, exhaustive vertex enumeration agrees.
//!
//! The workspace builds offline, so instead of an external property-test
//! framework these run a fixed number of cases from a deterministic
//! SplitMix64 generator; failures print the case number.

use vcdn_lp::{LinearProgram, Relation, Status, VarId};

/// Minimal deterministic generator (SplitMix64) for test-case inputs.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    /// Uniform float in `[lo, hi)`.
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

fn case_rng(test_tag: u64, case: u64) -> TestRng {
    TestRng(test_tag ^ case.wrapping_mul(0x2545F4914F6CDD1D))
}

/// A random LP: n vars in [0, 10] boxes, m extra `<=` half-planes with
/// non-negative RHS (so x = 0 is always feasible), random costs.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<i32>,
    rows: Vec<(Vec<i32>, i32)>,
}

fn random_lp(rng: &mut TestRng, min_vars: usize, max_vars: usize, max_rows: usize) -> RandomLp {
    let n = rng.int(min_vars as i64, max_vars as i64) as usize;
    let costs = (0..n).map(|_| rng.int(-9, 9) as i32).collect();
    let m = rng.int(0, max_rows as i64) as usize;
    let rows = (0..m)
        .map(|_| {
            let coeffs = (0..n).map(|_| rng.int(-5, 5) as i32).collect();
            (coeffs, rng.int(0, 39) as i32)
        })
        .collect();
    RandomLp { costs, rows }
}

fn build(lp_def: &RandomLp) -> LinearProgram {
    let mut lp = LinearProgram::minimize();
    let vars: Vec<_> = lp_def.costs.iter().map(|&c| lp.add_var(c as f64)).collect();
    for &v in &vars {
        lp.add_upper_bound(v, 10.0);
    }
    for (coeffs, rhs) in &lp_def.rows {
        lp.add_constraint(
            coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| (vars[i], c as f64))
                .collect(),
            Relation::Le,
            *rhs as f64,
        );
    }
    lp
}

#[test]
fn solution_is_feasible_and_consistent() {
    for case in 0..256u64 {
        let mut rng = case_rng(0x51317, case);
        let def = random_lp(&mut rng, 1, 5, 6);
        let lp = build(&def);
        // x = 0 is feasible, every var bounded by 10 => never infeasible
        // nor unbounded.
        let sol = lp.solve().expect("box LPs always solve");
        assert_eq!(sol.status, Status::Optimal, "case {case}");
        assert!(lp.is_feasible(&sol.values, 1e-6), "case {case}");
        assert!(
            (lp.objective_at(&sol.values) - sol.objective).abs() < 1e-6,
            "case {case}"
        );
        // The optimum can never beat the cost lower bound Σ min(c_i,0)*10.
        let lower: f64 = def.costs.iter().map(|&c| (c as f64).min(0.0) * 10.0).sum();
        assert!(sol.objective >= lower - 1e-6, "case {case}");
        assert!(sol.objective <= 1e-6, "case {case}"); // x = 0 costs 0
    }
}

#[test]
fn no_random_feasible_point_beats_the_optimum() {
    for case in 0..256u64 {
        let mut rng = case_rng(0xBEA75, case);
        let def = random_lp(&mut rng, 4, 4, 5);
        let lp = build(&def);
        let sol = lp.solve().expect("box LPs always solve");
        for _ in 0..40 {
            let p: Vec<f64> = (0..def.costs.len())
                .map(|_| rng.f64_range(0.0, 10.0))
                .collect();
            if lp.is_feasible(&p, 1e-9) {
                assert!(
                    lp.objective_at(&p) >= sol.objective - 1e-6,
                    "case {case}: probe {:?} beats reported optimum {}",
                    p,
                    sol.objective
                );
            }
        }
    }
}

#[test]
fn two_var_optimum_matches_vertex_enumeration() {
    for case in 0..256u64 {
        let mut rng = case_rng(0x0002_D017, case);
        let def = random_lp(&mut rng, 2, 2, 4);
        let lp = build(&def);
        let sol = lp.solve().expect("box LPs always solve");

        // Enumerate candidate vertices: intersections of all constraint
        // boundaries (half-planes + box walls + axes).
        let mut lines: Vec<(f64, f64, f64)> = vec![
            (1.0, 0.0, 0.0),  // x = 0
            (0.0, 1.0, 0.0),  // y = 0
            (1.0, 0.0, 10.0), // x = 10
            (0.0, 1.0, 10.0), // y = 10
        ];
        for (coeffs, rhs) in &def.rows {
            let a = *coeffs.first().unwrap_or(&0) as f64;
            let b = if coeffs.len() > 1 {
                coeffs[1] as f64
            } else {
                0.0
            };
            lines.push((a, b, *rhs as f64));
        }
        let mut best = f64::INFINITY;
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, c1) = lines[i];
                let (a2, b2, c2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-9 {
                    continue;
                }
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                let pt = [x, y];
                if lp.is_feasible(&pt, 1e-6) {
                    best = best.min(lp.objective_at(&pt));
                }
            }
        }
        // x = 0 is always a vertex candidate via axis intersections.
        assert!(best.is_finite(), "case {case}");
        assert!(
            (sol.objective - best).abs() < 1e-5,
            "case {case}: simplex {} vs vertex enumeration {}",
            sol.objective,
            best
        );
    }
}

/// Phase-1 coverage: LPs with >= and = rows built around a known feasible
/// point, so feasibility is guaranteed but the all-slack basis is not
/// available.
#[test]
fn phase1_problems_solve_and_do_not_exceed_witness() {
    for case in 0..128u64 {
        let mut rng = case_rng(0xF1A5E1, case);
        let n = rng.int(2, 4) as usize;
        let witness: Vec<i32> = (0..n).map(|_| rng.int(0, 9) as i32).collect();
        let costs: Vec<i32> = (0..5).map(|_| rng.int(-5, 5) as i32).collect();
        let n_rows = rng.int(1, 5) as usize;

        let mut lp = LinearProgram::minimize();
        let vars: Vec<_> = (0..n).map(|i| lp.add_var(costs[i] as f64)).collect();
        for &v in &vars {
            lp.add_upper_bound(v, 20.0);
        }
        let w: Vec<f64> = witness.iter().map(|&x| x as f64).collect();
        for _ in 0..n_rows {
            let coeffs: Vec<i32> = (0..n).map(|_| rng.int(-4, 4) as i32).collect();
            let kind = rng.int(0, 2);
            let slack = rng.int(0, 5);
            let row: Vec<(VarId, f64)> = coeffs
                .iter()
                .enumerate()
                .map(|(i, &c)| (vars[i], c as f64))
                .collect();
            let lhs_at_w: f64 = row.iter().map(|&(v, c)| c * w[v.index()]).sum();
            match kind {
                0 => lp.add_constraint(row, Relation::Ge, lhs_at_w - slack as f64),
                1 => lp.add_constraint(row, Relation::Le, lhs_at_w + slack as f64),
                _ => lp.add_constraint(row, Relation::Eq, lhs_at_w),
            }
        }
        // The witness is feasible by construction, so the LP must solve
        // and the optimum cannot exceed the witness's objective.
        let sol = lp.solve().expect("feasible by construction");
        assert!(lp.is_feasible(&sol.values, 1e-5), "case {case}");
        assert!(sol.objective <= lp.objective_at(&w) + 1e-5, "case {case}");
    }
}
