//! The request record replayed through the caches.

use std::fmt;

use crate::{
    ids::VideoId,
    impl_json_struct,
    range::{ByteRange, ChunkRange, ChunkSize},
    time::Timestamp,
};

/// One client (or downstream-server) request: video `R.v`, inclusive byte
/// range `[R.b0, R.b1]` and arrival timestamp `R.t` (paper, Section 4).
///
/// A server must either fully serve or fully redirect the requested range:
/// clients never download a single range from multiple servers.
///
/// # Examples
///
/// ```
/// use vcdn_types::{ByteRange, ChunkSize, Request, Timestamp, VideoId};
///
/// let k = ChunkSize::new(100).unwrap();
/// let r = Request::new(VideoId(1), ByteRange::new(150, 420).unwrap(), Timestamp(9));
/// assert_eq!(r.chunk_range(k).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
/// assert_eq!(r.bytes.len(), 271);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// The requested video, `R.v`.
    pub video: VideoId,
    /// The inclusive requested byte range, `[R.b0, R.b1]`.
    pub bytes: ByteRange,
    /// Arrival time, `R.t`.
    pub t: Timestamp,
}

impl_json_struct!(Request { video, bytes, t });

impl Request {
    /// Creates a request record.
    pub const fn new(video: VideoId, bytes: ByteRange, t: Timestamp) -> Self {
        Request { video, bytes, t }
    }

    /// The chunk range `[⌊R.b0/K⌋, ⌊R.b1/K⌋]` covering the byte range.
    pub const fn chunk_range(&self, k: ChunkSize) -> ChunkRange {
        self.bytes.chunk_range(k)
    }

    /// Number of requested bytes (`R.b1 − R.b0 + 1`).
    pub const fn byte_len(&self) -> u64 {
        self.bytes.len()
    }

    /// Number of chunks the request touches (`|R|_c` in the paper's IP).
    pub const fn chunk_len(&self, k: ChunkSize) -> u64 {
        self.bytes.chunk_range(k).len()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @{}", self.video, self.bytes, self.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_counts_touched_chunks() {
        let k = ChunkSize::new(10).unwrap();
        let r = Request::new(VideoId(0), ByteRange::new(9, 10).unwrap(), Timestamp(0));
        // Bytes 9 and 10 straddle the chunk 0/1 boundary.
        assert_eq!(r.chunk_len(k), 2);
        assert_eq!(r.byte_len(), 2);
    }

    #[test]
    fn aligned_request_touches_exact_chunks() {
        let k = ChunkSize::new(10).unwrap();
        let r = Request::new(VideoId(0), ByteRange::new(20, 39).unwrap(), Timestamp(0));
        assert_eq!(r.chunk_range(k), ChunkRange::new(2, 3).unwrap());
        assert_eq!(r.chunk_len(k), 2);
    }

    #[test]
    fn json_roundtrip() {
        let r = Request::new(VideoId(5), ByteRange::new(0, 99).unwrap(), Timestamp(7));
        let json = crate::json::to_string(&r);
        let back: Request = crate::json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
