//! Per-request cache decisions.

use std::fmt;

use crate::{
    ids::ChunkId,
    impl_json_struct,
    json::{FromJson, Json, JsonError, ToJson},
};

/// Chunk-level accounting of a served request.
///
/// `hit_chunks + filled_chunks` always equals the number of requested
/// chunks: a served request delivers every requested chunk, cache-filling
/// the missing ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeOutcome {
    /// Requested chunks already present in the cache.
    pub hit_chunks: u64,
    /// Requested chunks fetched from upstream (ingress).
    pub filled_chunks: u64,
    /// Chunks evicted to make room (empty while the disk still has free
    /// space, i.e. during warm-up).
    pub evicted: Vec<ChunkId>,
}

impl ServeOutcome {
    /// Total requested chunks delivered by this serve.
    pub fn served_chunks(&self) -> u64 {
        self.hit_chunks + self.filled_chunks
    }
}

impl_json_struct!(ServeOutcome {
    hit_chunks,
    filled_chunks,
    evicted,
});

/// The decision a cache makes for one request (paper, Problem 1):
/// serve it (cache-filling any missing chunks) or redirect it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Serve the full requested range from this server.
    Serve(ServeOutcome),
    /// Redirect the request (HTTP 302) to an alternative server.
    Redirect,
}

// Externally tagged, matching the JSON shape the workspace has always
// written: `{"Serve": {...}}` or `"Redirect"`.
impl ToJson for Decision {
    fn to_json(&self) -> Json {
        match self {
            Decision::Serve(o) => Json::Obj(vec![("Serve".to_string(), o.to_json())]),
            Decision::Redirect => Json::Str("Redirect".to_string()),
        }
    }
}

impl FromJson for Decision {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s == "Redirect" => Ok(Decision::Redirect),
            Json::Obj(fields) if fields.len() == 1 && fields[0].0 == "Serve" => {
                Ok(Decision::Serve(ServeOutcome::from_json(&fields[0].1)?))
            }
            other => Err(JsonError::type_mismatch("Decision variant", other)),
        }
    }
}

impl Decision {
    /// Whether the request was served locally.
    pub fn is_serve(&self) -> bool {
        matches!(self, Decision::Serve(_))
    }

    /// Whether the request was redirected.
    pub fn is_redirect(&self) -> bool {
        matches!(self, Decision::Redirect)
    }

    /// The serve outcome, if the request was served.
    pub fn serve_outcome(&self) -> Option<&ServeOutcome> {
        match self {
            Decision::Serve(o) => Some(o),
            Decision::Redirect => None,
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Decision::Serve(o) => write!(
                f,
                "serve(hit={}, fill={}, evict={})",
                o.hit_chunks,
                o.filled_chunks,
                o.evicted.len()
            ),
            Decision::Redirect => write!(f, "redirect"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VideoId;

    #[test]
    fn predicates_partition_decisions() {
        let serve = Decision::Serve(ServeOutcome {
            hit_chunks: 2,
            filled_chunks: 1,
            evicted: vec![ChunkId::new(VideoId(9), 0)],
        });
        assert!(serve.is_serve() && !serve.is_redirect());
        assert!(Decision::Redirect.is_redirect() && !Decision::Redirect.is_serve());
    }

    #[test]
    fn serve_outcome_totals() {
        let o = ServeOutcome {
            hit_chunks: 3,
            filled_chunks: 4,
            evicted: vec![],
        };
        assert_eq!(o.served_chunks(), 7);
    }

    #[test]
    fn serve_outcome_accessor() {
        let serve = Decision::Serve(ServeOutcome::default());
        assert!(serve.serve_outcome().is_some());
        assert!(Decision::Redirect.serve_outcome().is_none());
    }

    #[test]
    fn display_formats() {
        let serve = Decision::Serve(ServeOutcome {
            hit_chunks: 1,
            filled_chunks: 2,
            evicted: vec![ChunkId::new(VideoId(3), 4)],
        });
        assert_eq!(serve.to_string(), "serve(hit=1, fill=2, evict=1)");
        assert_eq!(Decision::Redirect.to_string(), "redirect");
    }
}
