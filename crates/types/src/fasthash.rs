//! A fast, non-cryptographic hasher for the simulator's hot maps.
//!
//! Replay spends most of its time in `HashMap` lookups keyed by
//! [`ChunkId`](crate::ChunkId)/[`VideoId`](crate::VideoId); the std
//! `RandomState`/SipHash default is DoS-resistant but costs tens of cycles
//! per lookup, which the single-process simulator does not need. This
//! module provides an FxHash-style multiply-xor hasher (the family used by
//! rustc's interner tables) implemented in-repo — the build is offline, so
//! no external crates — plus [`FastMap`]/[`FastSet`] aliases used by every
//! policy and the sharding layer.
//!
//! Determinism: unlike `RandomState`, `FxBuildHasher` is deterministic
//! across processes and runs. Replay *output* never depends on map
//! iteration order anyway (all ordered output is explicitly sorted), which
//! the `std-hash` cargo feature verifies: enabling it swaps the aliases
//! back to the std hasher, and the full test suite — golden replays
//! included — must pass bit-for-bit either way.
//!
//! # Examples
//!
//! ```
//! use vcdn_types::fasthash::{FastMap, FastSet};
//!
//! let mut m: FastMap<u64, &str> = FastMap::default();
//! m.insert(7, "chunk");
//! assert_eq!(m.get(&7), Some(&"chunk"));
//!
//! let mut s: FastSet<u32> = FastSet::default();
//! s.insert(3);
//! assert!(s.contains(&3));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant: 2^64 / φ, the same odd constant Fibonacci
/// hashing uses, so single-`u64` keys get well-mixed high bits.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Bits to rotate the running state between words, decorrelating fields of
/// multi-word keys (e.g. a struct hashed as several `write_*` calls).
const ROTATE: u32 = 26;

/// An FxHash-style multiply-xor hasher: `state = (state.rot(R) ^ word) * SEED`.
///
/// Not collision-resistant against adversaries — use only for in-process
/// tables keyed by trusted simulator IDs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    // lint: hot
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    // lint: hot
    fn finish(&self) -> u64 {
        // Fold the high bits down: in a multiply-mix, bit `i` of the
        // product depends only on input bits `0..=i`, so the low bits are
        // poorly mixed — and hashbrown derives the bucket index from the
        // LOW bits of the hash. Without this fold, every video's chunk 0
        // (identical low 20 packed bits) lands in one bucket and lookups
        // degrade to linear probe chains.
        self.state ^ (self.state >> 32)
    }

    #[inline]
    // lint: hot
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" hash differently.
            self.mix(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    // lint: hot
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    // lint: hot
    fn write_u16(&mut self, i: u16) {
        self.mix(i as u64);
    }

    #[inline]
    // lint: hot
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    // lint: hot
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    // lint: hot
    fn write_u128(&mut self, i: u128) {
        self.mix(i as u64);
        self.mix((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// Zero-sized builder for [`FxHasher`]; every hasher starts from the same
/// state, so hashes are reproducible across runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one `u64` key through [`FxHasher`] without constructing a
/// `BuildHasher` — the scalar entry point for shard selection, where the
/// key is a packed [`ChunkId`](crate::ChunkId).
///
/// The stream is identical to `FxBuildHasher::default().hash_one(key)` for
/// a `u64`, and — like everything in this module — deterministic across
/// processes, so a shard partition derived from it is stable across runs.
#[inline]
// lint: hot
pub fn hash_u64(key: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(key);
    h.finish()
}

/// Maps `key` to one of `shards` partitions: `hash_u64(key) % shards`.
///
/// Used by the sharded serving engine to assign every packed
/// [`ChunkId`](crate::ChunkId) to exactly one policy shard; the high-bit
/// fold in [`FxHasher::finish`] keeps the modulus well spread even for
/// dense video IDs.
///
/// # Panics
///
/// Panics if `shards == 0` (division by zero).
#[inline]
// lint: hot
pub fn shard_for(key: u64, shards: usize) -> usize {
    (hash_u64(key) % shards as u64) as usize
}

/// `HashMap` on the fast hasher (std `RandomState` under `--features
/// std-hash`, the cross-hasher determinism check).
#[cfg(not(feature = "std-hash"))]
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` on the fast hasher (std `RandomState` under `--features
/// std-hash`, the cross-hasher determinism check).
#[cfg(not(feature = "std-hash"))]
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// `HashMap` on the std `RandomState` hasher (the `std-hash`
/// cross-hasher determinism check; default builds use [`FxBuildHasher`]).
#[cfg(feature = "std-hash")]
pub type FastMap<K, V> = HashMap<K, V>;
/// `HashSet` on the std `RandomState` hasher (the `std-hash`
/// cross-hasher determinism check; default builds use [`FxBuildHasher`]).
#[cfg(feature = "std-hash")]
pub type FastSet<T> = HashSet<T>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Consecutive u64 keys must not collide and must differ in their
        // high bits (HashMap uses the top 7 bits for its control bytes).
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000, "collisions among 1000 small keys");
        let top_bytes: HashSet<u8> = hashes.iter().map(|h| (h >> 57) as u8).collect();
        assert!(
            top_bytes.len() > 32,
            "high bits poorly mixed: {top_bytes:?}"
        );
    }

    #[test]
    fn low_bits_spread_across_videos() {
        // Same chunk index, different videos: the packed key differs only
        // in its high bits, but the bucket index (low hash bits) must
        // still spread. A regression here makes HashMap lookups linear.
        let buckets: HashSet<u64> = (0u64..1024)
            .map(|v| hash_of(&crate::ChunkId::new(crate::VideoId(v), 0)) & 0xFFFF)
            .collect();
        assert!(buckets.len() > 900, "low bits clustered: {}", buckets.len());
    }

    #[test]
    fn byte_slices_length_sensitive() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn multiword_fields_decorrelated() {
        // (1, 2) and (2, 1) hash differently despite identical word sets.
        let mut a = FxHasher::default();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = FxHasher::default();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fastmap_matches_std_hashmap_model() {
        // Property test: a FastMap driven by a deterministic op stream
        // agrees with a std-hasher HashMap reference at every step. The
        // keys are ChunkId-packed u64s, the shape the hot path uses.
        let mut fast: FastMap<u64, u64> = FastMap::default();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut rng: u64 = 0x5EED_CAFE;
        for step in 0..20_000u64 {
            // SplitMix64 step — deterministic, no external crates.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let key = crate::ChunkId::new(crate::VideoId(z % 256), (z >> 8) as u32 % 64).packed();
            match z >> 62 {
                0 => {
                    assert_eq!(fast.insert(key, step), model.insert(key, step));
                }
                1 => {
                    assert_eq!(fast.remove(&key), model.remove(&key));
                }
                _ => {
                    assert_eq!(fast.get(&key), model.get(&key));
                }
            }
            assert_eq!(fast.len(), model.len());
        }
        let mut a: Vec<_> = fast.into_iter().collect();
        let mut b: Vec<_> = model.into_iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn hash_u64_matches_build_hasher_stream() {
        for key in [0u64, 1, 42, u64::MAX, 0x9E37_79B9] {
            assert_eq!(hash_u64(key), hash_of(&key));
        }
    }

    #[test]
    fn shard_for_is_stable_in_range_and_spread() {
        let shards = 8;
        let mut counts = [0u32; 8];
        for v in 0u64..4096 {
            let key = crate::ChunkId::new(crate::VideoId(v), 0).packed();
            let s = shard_for(key, shards);
            assert!(s < shards);
            assert_eq!(s, shard_for(key, shards), "unstable shard for v{v}");
            counts[s] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (300..800).contains(&c),
                "shard {s} got {c} of 4096 dense videos — poor spread"
            );
        }
    }

    #[test]
    #[should_panic]
    fn shard_for_zero_shards_panics() {
        let _ = shard_for(7, 0);
    }

    #[test]
    fn fastmap_basic_ops() {
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&7), Some(&14));
        assert_eq!(m.remove(&7), Some(14));
        assert_eq!(m.get(&7), None);
    }
}
