//! Inclusive byte and chunk ranges, and the byte→chunk conversion.
//!
//! The paper's request carries an inclusive byte range `[R.b0, R.b1]` and
//! derives the chunk range `[R.c0, R.c1] = [⌊R.b0/K⌋, ⌊R.b1/K⌋]` for chunk
//! size `K` (Section 4). Both ranges here are inclusive on both ends.

use std::fmt;

use crate::{impl_json_newtype, impl_json_struct};

/// Errors constructing ranges or chunk sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeError {
    /// The range's start exceeds its end.
    Inverted {
        /// Offending start bound.
        start: u64,
        /// Offending end bound.
        end: u64,
    },
    /// A chunk size of zero bytes was requested.
    ZeroChunkSize,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RangeError::Inverted { start, end } => {
                write!(f, "inverted range: start {start} > end {end}")
            }
            RangeError::ZeroChunkSize => write!(f, "chunk size must be non-zero"),
        }
    }
}

impl std::error::Error for RangeError {}

/// The fixed chunk size `K` in bytes (non-zero).
///
/// # Examples
///
/// ```
/// use vcdn_types::ChunkSize;
///
/// let k = ChunkSize::new(2 * 1024 * 1024).unwrap();
/// assert_eq!(k.bytes(), 2 * 1024 * 1024);
/// assert!(ChunkSize::new(0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkSize(u64);

impl_json_newtype!(ChunkSize);

impl ChunkSize {
    /// The paper's default chunk size of 2 MB.
    pub const DEFAULT: ChunkSize = ChunkSize(2 * 1024 * 1024);

    /// Creates a chunk size; fails on zero.
    pub const fn new(bytes: u64) -> Result<Self, RangeError> {
        if bytes == 0 {
            Err(RangeError::ZeroChunkSize)
        } else {
            Ok(ChunkSize(bytes))
        }
    }

    /// The chunk size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Number of chunks needed to store `len` bytes (ceiling division).
    pub const fn chunks_for_len(self, len: u64) -> u64 {
        len.div_ceil(self.0)
    }

    /// The chunk index containing byte offset `byte`.
    pub const fn chunk_of_byte(self, byte: u64) -> u64 {
        byte / self.0
    }
}

impl Default for ChunkSize {
    fn default() -> Self {
        ChunkSize::DEFAULT
    }
}

impl fmt::Display for ChunkSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1024 * 1024) {
            write!(f, "{}MiB", self.0 / (1024 * 1024))
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// An inclusive byte range `[start, end]` within a video file.
///
/// # Examples
///
/// ```
/// use vcdn_types::ByteRange;
///
/// let r = ByteRange::new(10, 19).unwrap();
/// assert_eq!(r.len(), 10);
/// assert!(ByteRange::new(5, 4).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// First byte offset (inclusive).
    pub start: u64,
    /// Last byte offset (inclusive).
    pub end: u64,
}

impl_json_struct!(ByteRange { start, end });

impl ByteRange {
    /// Creates an inclusive byte range; fails if `start > end`.
    pub const fn new(start: u64, end: u64) -> Result<Self, RangeError> {
        if start > end {
            Err(RangeError::Inverted { start, end })
        } else {
            Ok(ByteRange { start, end })
        }
    }

    /// A range covering the first `len` bytes of a file (`len > 0`).
    pub const fn prefix(len: u64) -> Result<Self, RangeError> {
        if len == 0 {
            Err(RangeError::Inverted { start: 0, end: 0 })
        } else {
            Ok(ByteRange {
                start: 0,
                end: len - 1,
            })
        }
    }

    /// Number of bytes covered (inclusive, hence `end - start + 1`).
    pub const fn len(self) -> u64 {
        self.end - self.start + 1
    }

    /// Inclusive ranges are never empty; provided for API completeness.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// The chunk range covering this byte range for chunk size `k`.
    pub const fn chunk_range(self, k: ChunkSize) -> ChunkRange {
        ChunkRange {
            start: k.chunk_of_byte(self.start) as u32,
            end: k.chunk_of_byte(self.end) as u32,
        }
    }
}

impl fmt::Display for ByteRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes[{}..={}]", self.start, self.end)
    }
}

/// An inclusive range of chunk indices `[start, end]` within one video.
///
/// # Examples
///
/// ```
/// use vcdn_types::ChunkRange;
///
/// let r = ChunkRange::new(2, 4).unwrap();
/// assert_eq!(r.len(), 3);
/// assert_eq!(r.iter().collect::<Vec<_>>(), vec![2, 3, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkRange {
    /// First chunk index (inclusive).
    pub start: u32,
    /// Last chunk index (inclusive).
    pub end: u32,
}

impl_json_struct!(ChunkRange { start, end });

impl ChunkRange {
    /// Creates an inclusive chunk range; fails if `start > end`.
    pub const fn new(start: u32, end: u32) -> Result<Self, RangeError> {
        if start > end {
            Err(RangeError::Inverted {
                start: start as u64,
                end: end as u64,
            })
        } else {
            Ok(ChunkRange { start, end })
        }
    }

    /// Number of chunks covered.
    pub const fn len(self) -> u64 {
        (self.end - self.start) as u64 + 1
    }

    /// Inclusive ranges are never empty; provided for API completeness.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Whether chunk index `c` falls inside the range.
    pub const fn contains(self, c: u32) -> bool {
        self.start <= c && c <= self.end
    }

    /// Iterates the covered chunk indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        self.start..=self.end
    }
}

impl fmt::Display for ChunkRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunks[{}..={}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_rejects_zero() {
        assert_eq!(ChunkSize::new(0), Err(RangeError::ZeroChunkSize));
    }

    #[test]
    fn chunks_for_len_is_ceiling() {
        let k = ChunkSize::new(10).unwrap();
        assert_eq!(k.chunks_for_len(0), 0);
        assert_eq!(k.chunks_for_len(1), 1);
        assert_eq!(k.chunks_for_len(10), 1);
        assert_eq!(k.chunks_for_len(11), 2);
    }

    #[test]
    fn byte_to_chunk_range_matches_paper() {
        // K = 10: bytes [0, 9] -> chunk 0 only; bytes [5, 25] -> chunks 0..=2.
        let k = ChunkSize::new(10).unwrap();
        let r = ByteRange::new(0, 9).unwrap().chunk_range(k);
        assert_eq!((r.start, r.end), (0, 0));
        let r = ByteRange::new(5, 25).unwrap().chunk_range(k);
        assert_eq!((r.start, r.end), (0, 2));
    }

    #[test]
    fn chunk_boundary_is_exclusive_of_next_chunk() {
        // Byte 2*K-1 is the last byte of chunk 1; byte 2*K is the first of chunk 2.
        let k = ChunkSize::new(100).unwrap();
        assert_eq!(
            ByteRange::new(0, 199).unwrap().chunk_range(k),
            ChunkRange::new(0, 1).unwrap()
        );
        assert_eq!(
            ByteRange::new(0, 200).unwrap().chunk_range(k),
            ChunkRange::new(0, 2).unwrap()
        );
    }

    #[test]
    fn inverted_ranges_rejected() {
        assert!(ByteRange::new(3, 2).is_err());
        assert!(ChunkRange::new(3, 2).is_err());
        assert!(ByteRange::prefix(0).is_err());
    }

    #[test]
    fn prefix_covers_exactly_len_bytes() {
        let r = ByteRange::prefix(1024).unwrap();
        assert_eq!(r.start, 0);
        assert_eq!(r.end, 1023);
        assert_eq!(r.len(), 1024);
    }

    #[test]
    fn chunk_range_iteration_and_contains() {
        let r = ChunkRange::new(5, 7).unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![5, 6, 7]);
        assert!(r.contains(5) && r.contains(7));
        assert!(!r.contains(4) && !r.contains(8));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn single_point_ranges() {
        assert_eq!(ByteRange::new(9, 9).unwrap().len(), 1);
        assert_eq!(ChunkRange::new(4, 4).unwrap().len(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ChunkSize::DEFAULT.to_string(), "2MiB");
        assert_eq!(ChunkSize::new(123).unwrap().to_string(), "123B");
        assert_eq!(ByteRange::new(1, 2).unwrap().to_string(), "bytes[1..=2]");
        assert_eq!(ChunkRange::new(1, 2).unwrap().to_string(), "chunks[1..=2]");
    }
}
