//! The ingress-vs-redirect cost model (`α_F2R`, Eqs. 3–4 of the paper).
//!
//! A server's preference between cache-filling and redirecting is captured
//! by a cost `C_F` per cache-filled byte and `C_R` per redirected byte.
//! Only their ratio `α_F2R = C_F / C_R` matters, so the pair is normalised
//! to `C_F + C_R = 2` (Eq. 3), giving (Eq. 4):
//!
//! ```text
//! C_F = 2·α / (α + 1),      C_R = 2 / (α + 1).
//! ```

use std::fmt;

use crate::impl_json_struct;

/// Errors constructing a [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostError {
    /// `α_F2R` must be finite and strictly positive.
    InvalidAlpha(f64),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidAlpha(a) => {
                write!(f, "alpha_f2r must be finite and > 0, got {a}")
            }
        }
    }
}

impl std::error::Error for CostError {}

/// Normalised fill/redirect costs for one cache server.
///
/// * `α > 1` — ingress-constrained server: fetch new content only when it is
///   sufficiently more popular than what is cached (paper's default for
///   constrained servers is `α = 2`).
/// * `α = 1` — fill and redirect are equally costly (the common case).
/// * `α < 1` — cheap/spare ingress (e.g. `0.5–0.75`).
///
/// # Examples
///
/// ```
/// use vcdn_types::CostModel;
///
/// let m = CostModel::from_alpha(1.0).unwrap();
/// assert_eq!((m.c_f(), m.c_r()), (1.0, 1.0));
///
/// let m = CostModel::from_alpha(4.0).unwrap();
/// assert!((m.c_f() + m.c_r() - 2.0).abs() < 1e-12);
/// assert!((m.c_f() / m.c_r() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    alpha: f64,
    c_f: f64,
    c_r: f64,
}

impl_json_struct!(CostModel { alpha, c_f, c_r });

impl CostModel {
    /// Builds the model from the fill-to-redirect ratio `α_F2R`.
    ///
    /// Fails if `alpha` is not finite and strictly positive.
    pub fn from_alpha(alpha: f64) -> Result<Self, CostError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(CostError::InvalidAlpha(alpha));
        }
        Ok(CostModel {
            alpha,
            c_f: 2.0 * alpha / (alpha + 1.0),
            c_r: 2.0 / (alpha + 1.0),
        })
    }

    /// The balanced model `α = 1` (`C_F = C_R = 1`).
    pub fn balanced() -> Self {
        CostModel {
            alpha: 1.0,
            c_f: 1.0,
            c_r: 1.0,
        }
    }

    /// The configured `α_F2R` ratio.
    pub fn alpha(self) -> f64 {
        self.alpha
    }

    /// Cost per cache-filled byte, `C_F = 2α/(α+1)`.
    pub fn c_f(self) -> f64 {
        self.c_f
    }

    /// Cost per redirected byte, `C_R = 2/(α+1)`.
    pub fn c_r(self) -> f64 {
        self.c_r
    }

    /// `min(C_F, C_R)` — the paper's estimate for the cost of an *expected
    /// future* fill-or-redirect (Eqs. 6–7 and 13–14).
    pub fn min_cost(self) -> f64 {
        self.c_f.min(self.c_r)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::balanced()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alpha={:.3} (C_F={:.4}, C_R={:.4})",
            self.alpha, self.c_f, self.c_r
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_holds_for_paper_alphas() {
        for alpha in [0.5, 0.75, 1.0, 2.0, 4.0] {
            let m = CostModel::from_alpha(alpha).unwrap();
            assert!((m.c_f() + m.c_r() - 2.0).abs() < 1e-12, "alpha={alpha}");
            assert!((m.c_f() / m.c_r() - alpha).abs() < 1e-12, "alpha={alpha}");
        }
    }

    #[test]
    fn alpha_two_matches_closed_form() {
        let m = CostModel::from_alpha(2.0).unwrap();
        assert!((m.c_f() - 4.0 / 3.0).abs() < 1e-12);
        assert!((m.c_r() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_alphas_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(CostModel::from_alpha(bad).is_err(), "alpha={bad}");
        }
    }

    #[test]
    fn min_cost_picks_cheaper_side() {
        assert_eq!(CostModel::balanced().min_cost(), 1.0);
        let constrained = CostModel::from_alpha(2.0).unwrap();
        assert!((constrained.min_cost() - constrained.c_r()).abs() < 1e-12);
        let cheap = CostModel::from_alpha(0.5).unwrap();
        assert!((cheap.min_cost() - cheap.c_f()).abs() < 1e-12);
    }

    #[test]
    fn default_is_balanced() {
        let m = CostModel::default();
        assert_eq!((m.alpha(), m.c_f(), m.c_r()), (1.0, 1.0, 1.0));
    }
}
