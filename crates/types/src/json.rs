//! A small, dependency-free JSON layer.
//!
//! The workspace persists traces, snapshots and reports as JSON but must
//! build in fully offline environments, so instead of an external
//! serialisation crate this module implements the subset of JSON the
//! workspace needs: a DOM value ([`Json`]), a strict recursive-descent
//! parser, a writer that round-trips `u64`/`f64` exactly, and the
//! [`ToJson`]/[`FromJson`] traits the domain types implement (usually via
//! [`impl_json_struct!`](crate::impl_json_struct) /
//! [`impl_json_newtype!`](crate::impl_json_newtype)).
//!
//! Wire compatibility: structs serialise as objects keyed by field name,
//! newtypes as their inner value, tuples as fixed-length arrays, and
//! `Option` as `null`-or-value — the same shape the workspace's files have
//! always used.
//!
//! # Examples
//!
//! ```
//! use vcdn_types::json::{self, Json};
//!
//! let v = json::parse(r#"{"a": [1, 2.5, null], "b": "x"}"#).unwrap();
//! assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
//! assert_eq!(json::parse(&v.to_string()).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;

/// A parsed JSON value.
///
/// Numbers keep their lexical class: tokens without `.`/`e` parse as
/// [`Json::Int`] (full `i128` range, so any `u64` or `i64` round-trips
/// exactly); everything else parses as [`Json::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer-lexeme number.
    Int(i128),
    /// A fractional or exponent-notation number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Errors parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input is not syntactically valid JSON.
    Syntax {
        /// Byte offset of the error.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// A value had the wrong shape for the requested type.
    Type {
        /// What the decoder expected.
        expected: String,
        /// What it found.
        found: String,
    },
    /// An object was missing a required field.
    MissingField(&'static str),
}

impl JsonError {
    /// Builds a type-mismatch error.
    pub fn type_mismatch(expected: &str, found: &Json) -> JsonError {
        JsonError::Type {
            expected: expected.to_string(),
            found: found.kind().to_string(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::Type { expected, found } => {
                write!(f, "JSON type error: expected {expected}, found {found}")
            }
            JsonError::MissingField(name) => write!(f, "JSON object missing field `{name}`"),
        }
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; force a fractional
                // marker so the value re-parses as Float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; match the conventional fallback.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_escaped(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError::Syntax {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected `{lit}`"))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(mut code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    self.pos += 2;
                                    let lo = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .and_then(|h| u32::from_str_radix(h, 16).ok());
                                    let Some(lo) = lo else {
                                        return self.err("bad low surrogate");
                                    };
                                    self.pos += 4;
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                } else {
                                    return self.err("lone high surrogate");
                                }
                            }
                            match char::from_u32(code) {
                                Some(c) => s.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    match self
                        .bytes
                        .get(start..end)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                    {
                        Some(frag) => {
                            s.push_str(frag);
                            self.pos = end;
                        }
                        None => return self.err("invalid UTF-8 in string"),
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut lexical_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    lexical_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if lexical_float {
            match text.parse::<f64>() {
                Ok(x) => Ok(Json::Float(x)),
                Err(_) => self.err(format!("bad number `{text}`")),
            }
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => self.err(format!("bad integer `{text}`")),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.consume_lit("null", Json::Null),
            Some(b't') => self.consume_lit("true", Json::Bool(true)),
            Some(b'f') => self.consume_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b) => self.err(format!("unexpected byte `{}`", b as char)),
        }
    }
}

const fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Traits and entry points
// ---------------------------------------------------------------------------

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Decodes from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialises a value to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Parses and decodes a value from a JSON string.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

/// Serialises a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: ToJson + ?Sized>(mut w: W, value: &T) -> std::io::Result<()> {
    w.write_all(to_string(value).as_bytes())
}

/// Fetches and decodes a required object field (used by the impl macros).
pub fn field<T: FromJson>(v: &Json, name: &'static str) -> Result<T, JsonError> {
    match v {
        Json::Obj(_) => T::from_json(v.get(name).ok_or(JsonError::MissingField(name))?),
        other => Err(JsonError::type_mismatch("object", other)),
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| JsonError::type_mismatch(stringify!($t), v)),
                    other => Err(JsonError::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Float(x) => Ok(*x),
            Json::Int(i) => Ok(*i as f64),
            other => Err(JsonError::type_mismatch("number", other)),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::type_mismatch("bool", other)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::type_mismatch("string", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::type_mismatch("array", other)),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::type_mismatch("2-element array", other)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            other => Err(JsonError::type_mismatch("3-element array", other)),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields,
/// serialised as an object keyed by field name.
///
/// Invoke in the module that defines the struct (fields need not be
/// public there).
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((
                        stringify!($field).to_string(),
                        $crate::json::ToJson::to_json(&self.$field),
                    )),+
                ])
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name {
                    $($field: $crate::json::field(v, stringify!($field))?),+
                })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a tuple struct with one field,
/// serialised transparently as the inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }
        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($name($crate::json::FromJson::from_json(v)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in [
            "null", "true", "false", "0", "-7", "42", "1.5", "-2.25e3", "\"hi\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn integers_keep_full_u64_precision() {
        let big = u64::MAX;
        let s = to_string(&big);
        assert_eq!(s, big.to_string());
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, -0.0, 123456.789012345] {
            let s = to_string(&x);
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
        // Integral floats keep a fractional marker so they reparse as Float.
        assert_eq!(to_string(&2.0f64), "2.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}é✓".to_string();
        let encoded = to_string(&s);
        assert_eq!(from_str::<String>(&encoded).unwrap(), s);
        assert_eq!(
            parse(r#""é ✓ 😀""#).unwrap(),
            Json::Str("é ✓ 😀".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(u64, Option<f64>)> = vec![(1, Some(0.5)), (2, None)];
        let s = to_string(&v);
        assert_eq!(from_str::<Vec<(u64, Option<f64>)>>(&s).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"unterminated",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(matches!(
            from_str::<u64>("\"x\""),
            Err(JsonError::Type { .. })
        ));
        assert!(matches!(from_str::<u64>("-1"), Err(JsonError::Type { .. })));
        struct P;
        impl FromJson for P {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                field::<u64>(v, "missing").map(|_| P)
            }
        }
        assert!(matches!(
            from_str::<P>("{}"),
            Err(JsonError::MissingField("missing"))
        ));
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"b":1,"a":2}"#);
        assert_eq!(v.get("a"), Some(&Json::Int(2)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn nonfinite_floats_serialise_as_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
    }
}
