//! Primitive traffic accounting and the cache-efficiency metric (Eq. 2).
//!
//! Every requested chunk ends up in exactly one of three buckets: served
//! from cache (hit), served by cache-filling (ingress), or redirected.
//! Cache efficiency is then (paper Eq. 2, with `C_F + C_R = 2`):
//!
//! ```text
//! efficiency = 1 − (fill_bytes / requested_bytes)·C_F
//!                − (redirect_bytes / requested_bytes)·C_R   ∈ [−1, 1]
//! ```
//!
//! All accounting here is in *chunk-granularity bytes* (`chunks · K`):
//! a chunk is fetched and stored in full even when requested partially
//! (Section 4.2 of the paper), and using the same unit on all three buckets
//! keeps the identity `hit + fill + redirect = requested` exact.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::{cost::CostModel, impl_json_struct};

/// Accumulated request/traffic counters for a replay (or a window of one).
///
/// # Examples
///
/// ```
/// use vcdn_types::{CostModel, TrafficCounter};
///
/// let mut t = TrafficCounter::default();
/// t.record_hit(80);
/// t.record_fill(10);
/// t.record_redirect(10);
/// let m = CostModel::balanced();
/// assert!((t.efficiency(m) - 0.8).abs() < 1e-12);
/// assert!((t.ingress_pct() - 10.0 / 90.0 * 100.0).abs() < 1e-9);
/// assert!((t.redirect_pct() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficCounter {
    /// Bytes served straight from cache.
    pub hit_bytes: u64,
    /// Bytes served by cache-filling from upstream (ingress).
    pub fill_bytes: u64,
    /// Bytes redirected to an alternative server.
    pub redirect_bytes: u64,
    /// Requests served locally.
    pub served_requests: u64,
    /// Requests redirected.
    pub redirected_requests: u64,
}

impl_json_struct!(TrafficCounter {
    hit_bytes,
    fill_bytes,
    redirect_bytes,
    served_requests,
    redirected_requests,
});

impl TrafficCounter {
    /// Records `bytes` served from cache.
    pub fn record_hit(&mut self, bytes: u64) {
        self.hit_bytes += bytes;
    }

    /// Records `bytes` served via cache-fill (ingress).
    pub fn record_fill(&mut self, bytes: u64) {
        self.fill_bytes += bytes;
    }

    /// Records `bytes` redirected away.
    pub fn record_redirect(&mut self, bytes: u64) {
        self.redirect_bytes += bytes;
    }

    /// Total requested bytes: every requested byte is a hit, a fill or a
    /// redirect.
    pub fn requested_bytes(&self) -> u64 {
        self.hit_bytes + self.fill_bytes + self.redirect_bytes
    }

    /// Bytes served to users from this server (egress): hits plus fills.
    pub fn served_bytes(&self) -> u64 {
        self.hit_bytes + self.fill_bytes
    }

    /// Cache efficiency per Eq. 2 of the paper, in `[-1, 1]`.
    ///
    /// Returns `0.0` when nothing was requested.
    pub fn efficiency(&self, costs: CostModel) -> f64 {
        let total = self.requested_bytes();
        if total == 0 {
            return 0.0;
        }
        let total = total as f64;
        1.0 - (self.fill_bytes as f64 / total) * costs.c_f()
            - (self.redirect_bytes as f64 / total) * costs.c_r()
    }

    /// Ingress-to-egress percentage: the fraction of *served* traffic that
    /// incurred cache-fill ("Ingress %" in the paper's Figure 3/5).
    ///
    /// Returns `0.0` when nothing was served.
    pub fn ingress_pct(&self) -> f64 {
        let served = self.served_bytes();
        if served == 0 {
            return 0.0;
        }
        self.fill_bytes as f64 / served as f64 * 100.0
    }

    /// Redirected fraction of all requested bytes, as a percentage.
    ///
    /// Returns `0.0` when nothing was requested.
    pub fn redirect_pct(&self) -> f64 {
        let total = self.requested_bytes();
        if total == 0 {
            return 0.0;
        }
        self.redirect_bytes as f64 / total as f64 * 100.0
    }

    /// Byte hit rate: fraction of requested bytes served straight from
    /// cache. Equals efficiency only when `α_F2R = 1`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.requested_bytes();
        if total == 0 {
            return 0.0;
        }
        self.hit_bytes as f64 / total as f64
    }

    /// Total requests observed.
    pub fn total_requests(&self) -> u64 {
        self.served_requests + self.redirected_requests
    }
}

impl Add for TrafficCounter {
    type Output = TrafficCounter;

    fn add(self, rhs: TrafficCounter) -> TrafficCounter {
        TrafficCounter {
            hit_bytes: self.hit_bytes + rhs.hit_bytes,
            fill_bytes: self.fill_bytes + rhs.fill_bytes,
            redirect_bytes: self.redirect_bytes + rhs.redirect_bytes,
            served_requests: self.served_requests + rhs.served_requests,
            redirected_requests: self.redirected_requests + rhs.redirected_requests,
        }
    }
}

impl AddAssign for TrafficCounter {
    fn add_assign(&mut self, rhs: TrafficCounter) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TrafficCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hit={}B fill={}B redirect={}B ({} served / {} redirected requests)",
            self.hit_bytes,
            self.fill_bytes,
            self.redirect_bytes,
            self.served_requests,
            self.redirected_requests
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrafficCounter {
        let mut t = TrafficCounter::default();
        t.record_hit(700);
        t.record_fill(200);
        t.record_redirect(100);
        t.served_requests = 9;
        t.redirected_requests = 1;
        t
    }

    #[test]
    fn accounting_identity_holds() {
        let t = sample();
        assert_eq!(t.requested_bytes(), 1000);
        assert_eq!(t.served_bytes(), 900);
        assert_eq!(t.total_requests(), 10);
    }

    #[test]
    fn balanced_efficiency_equals_hit_fraction() {
        let t = sample();
        assert!((t.efficiency(CostModel::balanced()) - 0.7).abs() < 1e-12);
        assert!((t.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn constrained_efficiency_penalises_ingress_more() {
        let t = sample();
        let alpha2 = CostModel::from_alpha(2.0).unwrap();
        // 1 - 0.2*(4/3) - 0.1*(2/3) = 1 - 0.26667 - 0.06667 = 0.66667.
        assert!(
            (t.efficiency(alpha2) - (1.0 - 0.2 * (4.0 / 3.0) - 0.1 * (2.0 / 3.0))).abs() < 1e-12
        );
        assert!(t.efficiency(alpha2) < t.efficiency(CostModel::balanced()));
    }

    #[test]
    fn efficiency_bounds() {
        // All fills, alpha -> large: efficiency approaches 1 - C_F -> -1.
        let mut t = TrafficCounter::default();
        t.record_fill(100);
        let m = CostModel::from_alpha(1e9).unwrap();
        assert!(t.efficiency(m) > -1.0 - 1e-9);
        assert!(t.efficiency(m) < -0.99);
        // All hits: efficiency 1.
        let mut t = TrafficCounter::default();
        t.record_hit(100);
        assert_eq!(t.efficiency(CostModel::balanced()), 1.0);
    }

    #[test]
    fn empty_counters_report_zero() {
        let t = TrafficCounter::default();
        assert_eq!(t.efficiency(CostModel::balanced()), 0.0);
        assert_eq!(t.ingress_pct(), 0.0);
        assert_eq!(t.redirect_pct(), 0.0);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn requests_without_bytes_report_finite_zero() {
        // A counter can legitimately hold requests but zero bytes (e.g. a
        // telemetry interval whose only requests were zero-length). Every
        // derived ratio must be 0.0 — never NaN from a 0/0.
        let t = TrafficCounter {
            served_requests: 3,
            redirected_requests: 2,
            ..TrafficCounter::default()
        };
        assert_eq!(t.requested_bytes(), 0);
        assert_eq!(t.total_requests(), 5);
        for costs in [CostModel::balanced(), CostModel::from_alpha(2.0).unwrap()] {
            let e = t.efficiency(costs);
            assert!(e.is_finite());
            assert_eq!(e, 0.0);
        }
        assert_eq!(t.ingress_pct(), 0.0);
        assert_eq!(t.redirect_pct(), 0.0);
        assert_eq!(t.hit_rate(), 0.0);
    }

    #[test]
    fn percentages_match_definitions() {
        let t = sample();
        assert!((t.ingress_pct() - 200.0 / 900.0 * 100.0).abs() < 1e-9);
        assert!((t.redirect_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn addition_accumulates_fieldwise() {
        let mut a = sample();
        let b = sample();
        a += b;
        assert_eq!(a.requested_bytes(), 2000);
        assert_eq!(a.total_requests(), 20);
    }
}
