//! Deterministic iteration over the workspace's unordered containers.
//!
//! `FastMap` / `FastSet` make no ordering promise, so iterating them into
//! anything observable (JSON, bundles, report lines, exported vectors)
//! makes output depend on the hasher. These helpers are the sanctioned
//! bridge: they collect the entries, sort them by key, and hand back a
//! plain iterator. `vcdn-lint`'s `determinism-flow` rule recognises the
//! `det_` prefix as a sanitizer, so code routed through here lints clean.
//!
//! The cost is one allocation plus an `O(n log n)` sort, which is why
//! these belong on report/serialization edges, not on decide paths.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasher;

/// Map entries as `(&K, &V)` pairs in ascending key order.
pub fn det_iter<K: Ord, V, S: BuildHasher>(
    map: &HashMap<K, V, S>,
) -> impl Iterator<Item = (&K, &V)> {
    let mut entries: Vec<(&K, &V)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    entries.into_iter()
}

/// Map keys in ascending order.
pub fn det_keys<K: Ord, V, S: BuildHasher>(map: &HashMap<K, V, S>) -> impl Iterator<Item = &K> {
    let mut keys: Vec<&K> = map.keys().collect();
    keys.sort();
    keys.into_iter()
}

/// Map values in ascending order of their keys.
pub fn det_values<K: Ord, V, S: BuildHasher>(map: &HashMap<K, V, S>) -> impl Iterator<Item = &V> {
    det_iter(map).map(|(_, v)| v)
}

/// Set elements in ascending order.
pub fn det_elems<T: Ord, S: BuildHasher>(set: &HashSet<T, S>) -> impl Iterator<Item = &T> {
    let mut elems: Vec<&T> = set.iter().collect();
    elems.sort();
    elems.into_iter()
}

/// Drain a map into owned `(K, V)` pairs in ascending key order.
pub fn det_drain<K: Ord, V, S: BuildHasher>(map: &mut HashMap<K, V, S>) -> Vec<(K, V)> {
    let mut entries: Vec<(K, V)> = map.drain().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FastMap;
    use std::collections::HashSet;

    fn sample() -> FastMap<u64, &'static str> {
        let mut m = FastMap::default();
        m.insert(30, "c");
        m.insert(10, "a");
        m.insert(20, "b");
        m
    }

    #[test]
    fn det_iter_is_key_sorted() {
        let m = sample();
        let got: Vec<(u64, &str)> = det_iter(&m).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn det_keys_and_values_agree_with_det_iter() {
        let m = sample();
        let keys: Vec<u64> = det_keys(&m).copied().collect();
        let values: Vec<&str> = det_values(&m).copied().collect();
        assert_eq!(keys, vec![10, 20, 30]);
        assert_eq!(values, vec!["a", "b", "c"]);
    }

    #[test]
    fn det_elems_sorts_set_contents() {
        let mut s: HashSet<u32> = HashSet::new();
        s.extend([7, 3, 5]);
        let got: Vec<u32> = det_elems(&s).copied().collect();
        assert_eq!(got, vec![3, 5, 7]);
    }

    #[test]
    fn det_drain_empties_the_map_in_order() {
        let mut m = sample();
        let got = det_drain(&mut m);
        assert_eq!(got, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert!(m.is_empty());
    }
}
