//! Core domain types for the `vcdn` video-CDN caching library.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for videos and chunks, millisecond timestamps,
//! inclusive byte/chunk ranges, the [`Request`] record replayed through the
//! caches, the ingress-vs-redirect [`CostModel`] (`α_F2R`, Eq. 4 of the
//! paper), per-request [`Decision`]s, and the primitive traffic accounting
//! from which cache efficiency (Eq. 2) is computed.
//!
//! The types are deliberately small, `Copy` where possible, and free of any
//! policy: all caching logic lives in `vcdn-core`, all workload logic in
//! `vcdn-trace`.
//!
//! # Examples
//!
//! ```
//! use vcdn_types::{ByteRange, ChunkSize, CostModel, Request, Timestamp, VideoId};
//!
//! let k = ChunkSize::new(2 * 1024 * 1024).unwrap(); // 2 MB chunks
//! let req = Request::new(VideoId(7), ByteRange::new(0, 5_000_000).unwrap(), Timestamp(1_000));
//! let chunks = req.chunk_range(k);
//! assert_eq!(chunks.len(), 3); // bytes [0, 5_000_000] span chunks 0..=2
//!
//! let cost = CostModel::from_alpha(2.0).unwrap(); // ingress twice as costly
//! assert!((cost.c_f() - 4.0 / 3.0).abs() < 1e-12);
//! assert!((cost.c_r() - 2.0 / 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod decision;
pub mod det_iter;
pub mod fasthash;
pub mod float;
pub mod ids;
pub mod json;
pub mod metrics;
pub mod range;
pub mod request;
pub mod time;

pub use cost::{CostError, CostModel};
pub use decision::{Decision, ServeOutcome};
pub use det_iter::{det_drain, det_elems, det_iter, det_keys, det_values};
pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use float::{approx_eq, exactly_eq, exactly_zero, COST_EPS};
pub use ids::{ChunkId, VideoId};
pub use metrics::TrafficCounter;
pub use range::{ByteRange, ChunkRange, ChunkSize, RangeError};
pub use request::Request;
pub use time::{DurationMs, Timestamp};
