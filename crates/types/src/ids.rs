//! Identifiers for videos and fixed-size chunks.

use std::fmt;

use crate::{impl_json_newtype, impl_json_struct};

/// Opaque identifier of a video file in the CDN catalog.
///
/// The paper's request record carries `R.v`; anonymised IDs are modelled as
/// plain `u64`s assigned by the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VideoId(pub u64);

impl_json_newtype!(VideoId);

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A fixed-size chunk of a video: the unit of disk storage and cache-fill.
///
/// Section 4 of the paper divides files into chunks of `K` bytes
/// ("e.g., 2 MB") so that partial caching deals in uniform units "uniquely
/// identified with a video ID `v` and chunk number `c`".
///
/// # Examples
///
/// ```
/// use vcdn_types::{ChunkId, VideoId};
///
/// let c = ChunkId::new(VideoId(3), 14);
/// assert_eq!(c.video, VideoId(3));
/// assert_eq!(c.index, 14);
/// assert_eq!(c.to_string(), "v3#14");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChunkId {
    /// The video this chunk belongs to.
    pub video: VideoId,
    /// Zero-based chunk number within the video.
    pub index: u32,
}

impl_json_struct!(ChunkId { video, index });

impl ChunkId {
    /// Bits of the packed representation holding the chunk index; the
    /// video id occupies the bits above. `packed() >> INDEX_BITS`
    /// recovers the video id (in the injective range).
    pub const INDEX_BITS: u32 = 20;

    /// Creates a chunk identifier.
    pub const fn new(video: VideoId, index: u32) -> Self {
        ChunkId { video, index }
    }

    /// Packs both fields into one `u64`: video id in the high bits, chunk
    /// number in the low [`ChunkId::INDEX_BITS`] (catalog videos are far
    /// below 2^20 chunks ≈ 2 TB at 2 MB/chunk). Injective while
    /// `video < 2^44`; beyond that it degrades to an ordinary
    /// (collision-tolerant) hash input, never a unique key.
    pub const fn packed(self) -> u64 {
        (self.video.0 << ChunkId::INDEX_BITS) ^ self.index as u64
    }
}

/// Hashes as a single packed `u64` instead of field-by-field, so hot maps
/// pay for one hasher round per lookup rather than two.
impl std::hash::Hash for ChunkId {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.packed());
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.video, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ordering_is_video_major() {
        let a = ChunkId::new(VideoId(1), 99);
        let b = ChunkId::new(VideoId(2), 0);
        assert!(a < b);
        assert!(ChunkId::new(VideoId(1), 3) < ChunkId::new(VideoId(1), 4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(VideoId(42).to_string(), "v42");
        assert_eq!(ChunkId::new(VideoId(42), 7).to_string(), "v42#7");
    }

    #[test]
    fn packed_is_injective_in_range() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for v in [0u64, 1, 2, 1 << 20, (1 << 44) - 1] {
            for c in [0u32, 1, 999, (1 << 20) - 1] {
                assert!(
                    seen.insert(ChunkId::new(VideoId(v), c).packed()),
                    "packed collision at v{v}#{c}"
                );
            }
        }
    }

    #[test]
    fn chunk_id_is_hashable_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ChunkId::new(VideoId(1), 2), "x");
        assert_eq!(m.get(&ChunkId::new(VideoId(1), 2)), Some(&"x"));
        assert_eq!(m.get(&ChunkId::new(VideoId(1), 3)), None);
    }
}
