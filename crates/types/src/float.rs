//! Sanctioned f64 comparison helpers for cost math.
//!
//! The `float-eq` lint (see `LINTS.md`) forbids raw `==`/`!=` against
//! float literals everywhere in the workspace: cost comparisons in the
//! Cafe utility (Eqs. 6–7) and the Psychic value function (Eqs. 13–14)
//! accumulate rounding error, so raw equality there is either a bug or an
//! undocumented exactness assumption. These helpers give both intents a
//! name:
//!
//! * [`approx_eq`] — tolerance comparison for *computed* quantities;
//! * [`exactly_zero`] / [`exactly_eq`] — documented bitwise comparison for
//!   values that are exact by construction (config sentinels, sums that
//!   are provably zero, hash-derived fractions compared to themselves).
//!
//! `exactly_*` compile to the same machine comparison the raw operator
//! would, so converting a call site is metric-neutral by construction —
//! the golden replay files and `BENCH_PR2.json` are unaffected.

/// Default absolute tolerance for cost-math comparisons.
///
/// Costs in this workspace are O(1) (normalized `c_f`/`c_r` around 1.0,
/// Eq. 4) and pass through at most a few thousand additive updates, so
/// 1e-9 is several orders of magnitude above accumulated rounding error
/// yet far below any decision-relevant cost difference.
pub const COST_EPS: f64 = 1e-9;

/// Tolerance equality for computed f64 quantities.
///
/// Uses absolute tolerance [`COST_EPS`]: appropriate for the O(1)
/// normalized costs this workspace trades in (not for astronomically
/// scaled values, which do not occur here). NaN compares unequal to
/// everything, matching IEEE intent.
///
/// ```
/// use vcdn_types::float::approx_eq;
/// let third = 1.0_f64 / 3.0;
/// assert!(approx_eq(third * 3.0, 1.0));
/// assert!(!approx_eq(1.0, 1.001));
/// ```
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_EPS
}

/// Intentional *exact* equality against zero.
///
/// Use when zero is a sentinel or an exact-by-construction value (an
/// unset config field, a sum of non-negative terms, a freshly
/// initialized accumulator) and any nonzero value — however tiny — must
/// be treated as "set". Compiles to the raw comparison; exists so the
/// intent is visible and the `float-eq` lint can distinguish it from an
/// accidental equality.
///
/// ```
/// use vcdn_types::float::exactly_zero;
/// assert!(exactly_zero(0.0));
/// assert!(exactly_zero(-0.0)); // IEEE: -0.0 == 0.0
/// assert!(!exactly_zero(1e-300));
/// ```
#[inline]
#[must_use]
pub fn exactly_zero(v: f64) -> bool {
    v == 0.0
}

/// Intentional *exact* (bitwise-semantics) equality between two f64s.
///
/// The two-argument sibling of [`exactly_zero`], for sentinel-vs-sentinel
/// comparisons. NaN compares unequal to itself, as with the raw operator.
///
/// ```
/// use vcdn_types::float::exactly_eq;
/// assert!(exactly_eq(0.25, 0.25));
/// assert!(!exactly_eq(0.25, 0.25 + f64::EPSILON));
/// ```
#[inline]
#[must_use]
pub fn exactly_eq(a: f64, b: f64) -> bool {
    a == b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_rounding_but_not_real_differences() {
        let tenth: f64 = (0..10).map(|_| 0.1).sum();
        assert!(approx_eq(tenth, 1.0), "accumulated 0.1s should be ~1.0");
        assert!(tenth != 1.0, "…while raw equality fails (the bug class)");
        assert!(!approx_eq(1.0, 1.0 + 2e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn exact_helpers_match_raw_operator_semantics() {
        assert!(exactly_zero(0.0) && exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(f64::NAN));
        assert!(exactly_eq(1.5, 1.5));
        assert!(!exactly_eq(f64::NAN, f64::NAN));
    }
}
