//! Millisecond-granularity simulated time.
//!
//! The whole workspace measures time in integer milliseconds since an
//! arbitrary replay epoch. Integer time keeps trace generation and replay
//! fully deterministic; the caching algorithms convert to `f64` only inside
//! their scoring arithmetic (EWMA inter-arrival times, look-ahead windows).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::impl_json_newtype;

/// A span of simulated time in milliseconds.
///
/// # Examples
///
/// ```
/// use vcdn_types::DurationMs;
///
/// assert_eq!(DurationMs::from_secs(2).as_millis(), 2_000);
/// assert_eq!(DurationMs::HOUR.as_millis(), 3_600_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DurationMs(pub u64);

impl_json_newtype!(DurationMs);

impl DurationMs {
    /// Zero-length duration.
    pub const ZERO: DurationMs = DurationMs(0);
    /// One second.
    pub const SECOND: DurationMs = DurationMs(1_000);
    /// One minute.
    pub const MINUTE: DurationMs = DurationMs(60_000);
    /// One hour.
    pub const HOUR: DurationMs = DurationMs(3_600_000);
    /// One day.
    pub const DAY: DurationMs = DurationMs(86_400_000);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        DurationMs(secs * 1_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        DurationMs(hours * 3_600_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        DurationMs(days * 86_400_000)
    }

    /// The raw millisecond count.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating duration multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> Self {
        DurationMs(self.0.saturating_mul(factor))
    }
}

impl fmt::Display for DurationMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms >= 86_400_000 {
            write!(f, "{:.2}d", ms as f64 / 86_400_000.0)
        } else if ms >= 3_600_000 {
            write!(f, "{:.2}h", ms as f64 / 3_600_000.0)
        } else if ms >= 1_000 {
            write!(f, "{:.2}s", ms as f64 / 1_000.0)
        } else {
            write!(f, "{ms}ms")
        }
    }
}

impl Add for DurationMs {
    type Output = DurationMs;

    fn add(self, rhs: DurationMs) -> DurationMs {
        DurationMs(self.0 + rhs.0)
    }
}

/// An instant in simulated time: milliseconds since the replay epoch.
///
/// Timestamps are totally ordered and support the natural arithmetic with
/// [`DurationMs`]. Subtracting a later timestamp from an earlier one
/// saturates to zero rather than panicking, because popularity-tracking code
/// frequently computes "age" values against clocks that may tie.
///
/// # Examples
///
/// ```
/// use vcdn_types::{DurationMs, Timestamp};
///
/// let t0 = Timestamp(5_000);
/// let t1 = t0 + DurationMs::SECOND;
/// assert_eq!(t1, Timestamp(6_000));
/// assert_eq!(t1 - t0, DurationMs::SECOND);
/// assert_eq!(t0 - t1, DurationMs::ZERO); // saturating
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl_json_newtype!(Timestamp);

impl Timestamp {
    /// The replay epoch (time zero).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// The raw millisecond count since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The timestamp as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction: the duration since `earlier`, or zero if
    /// `earlier` is in the future.
    pub const fn saturating_since(self, earlier: Timestamp) -> DurationMs {
        DurationMs(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub const fn checked_add(self, d: DurationMs) -> Option<Timestamp> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(Timestamp(v)),
            None => None,
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", DurationMs(self.0))
    }
}

impl Add<DurationMs> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: DurationMs) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<DurationMs> for Timestamp {
    fn add_assign(&mut self, rhs: DurationMs) {
        self.0 += rhs.0;
    }
}

impl Sub for Timestamp {
    type Output = DurationMs;

    fn sub(self, rhs: Timestamp) -> DurationMs {
        self.saturating_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(DurationMs::from_secs(60), DurationMs::MINUTE);
        assert_eq!(DurationMs::from_hours(24), DurationMs::DAY);
        assert_eq!(DurationMs::from_days(1), DurationMs::from_hours(24));
    }

    #[test]
    fn timestamp_arithmetic_roundtrips() {
        let t = Timestamp(123_456);
        assert_eq!((t + DurationMs(44)) - t, DurationMs(44));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Timestamp(5) - Timestamp(9), DurationMs::ZERO);
        assert_eq!(Timestamp(9) - Timestamp(5), DurationMs(4));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Timestamp(u64::MAX).checked_add(DurationMs(1)).is_none());
        assert_eq!(Timestamp(1).checked_add(DurationMs(2)), Some(Timestamp(3)));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(DurationMs(900).to_string(), "900ms");
        assert_eq!(DurationMs::from_secs(90).to_string(), "90.00s");
        assert_eq!(DurationMs::from_hours(2).to_string(), "2.00h");
        assert_eq!(DurationMs::from_days(3).to_string(), "3.00d");
    }

    #[test]
    fn as_secs_f64_scales() {
        assert!((DurationMs(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Timestamp(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_mul_caps_at_max() {
        assert_eq!(DurationMs(u64::MAX).saturating_mul(2), DurationMs(u64::MAX));
        assert_eq!(DurationMs(3).saturating_mul(4), DurationMs(12));
    }
}
