//! Randomized property tests for the core vocabulary: range arithmetic,
//! the cost model's normalisation, and traffic-counter identities.
//!
//! The workspace builds offline, so instead of an external property-test
//! framework these run a fixed number of cases drawn from a small
//! deterministic SplitMix64 generator; failures print the case seed.

use vcdn_types::{
    ByteRange, ChunkRange, ChunkSize, CostModel, DurationMs, Request, Timestamp, TrafficCounter,
    VideoId,
};

const CASES: u64 = 512;

/// Minimal deterministic generator (SplitMix64) for test-case inputs.
struct TestRng(u64);

impl TestRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

fn for_each_case(test: impl Fn(&mut TestRng, u64)) {
    for case in 0..CASES {
        let mut rng = TestRng(0xC0FFEE ^ case.wrapping_mul(0x2545F4914F6CDD1D));
        test(&mut rng, case);
    }
}

#[test]
fn byte_to_chunk_range_covers_every_requested_byte() {
    for_each_case(|rng, case| {
        let start = rng.range(0, 1_000_000);
        let len = rng.range(1, 1_000_000);
        let k = ChunkSize::new(rng.range(1, 100_000)).expect("non-zero");
        let bytes = ByteRange::new(start, start + len - 1).expect("start <= end");
        let chunks = bytes.chunk_range(k);
        // First chunk contains the first byte; last chunk the last byte.
        assert_eq!(
            u64::from(chunks.start),
            k.chunk_of_byte(bytes.start),
            "case {case}"
        );
        assert_eq!(
            u64::from(chunks.end),
            k.chunk_of_byte(bytes.end),
            "case {case}"
        );
        // Chunk-covered byte span is a superset of the byte range.
        let covered_start = u64::from(chunks.start) * k.bytes();
        let covered_end = (u64::from(chunks.end) + 1) * k.bytes() - 1;
        assert!(covered_start <= bytes.start, "case {case}");
        assert!(covered_end >= bytes.end, "case {case}");
        // And wastes less than one chunk on each side.
        assert!(bytes.start - covered_start < k.bytes(), "case {case}");
        assert!(covered_end - bytes.end < k.bytes(), "case {case}");
    });
}

#[test]
fn chunk_count_identities() {
    for_each_case(|rng, case| {
        let start = rng.range(0, 10_000);
        let len = rng.range(1, 100_000);
        let k = ChunkSize::new(rng.range(1, 1_000)).expect("non-zero");
        let r = Request::new(
            VideoId(1),
            ByteRange::new(start, start + len - 1).expect("valid"),
            Timestamp(0),
        );
        let n = r.chunk_len(k);
        // A request of `len` bytes touches between ceil(len/K) and
        // ceil(len/K)+1 chunks (misalignment adds at most one).
        let lower = len.div_ceil(k.bytes());
        assert!(n >= lower, "case {case}");
        assert!(n <= lower + 1, "case {case}");
        assert_eq!(r.byte_len(), len, "case {case}");
    });
}

#[test]
fn chunk_range_len_matches_iteration() {
    for_each_case(|rng, case| {
        let s = rng.range(0, 1000) as u32;
        let extra = rng.range(0, 100) as u32;
        let r = ChunkRange::new(s, s + extra).expect("valid");
        assert_eq!(r.len() as usize, r.iter().count(), "case {case}");
        assert!(r.iter().all(|c| r.contains(c)), "case {case}");
    });
}

#[test]
fn cost_model_normalisation() {
    for_each_case(|rng, case| {
        let alpha = rng.f64_range(0.01, 100.0);
        let m = CostModel::from_alpha(alpha).expect("valid alpha");
        assert!((m.c_f() + m.c_r() - 2.0).abs() < 1e-9, "case {case}");
        assert!(
            (m.c_f() / m.c_r() - alpha).abs() < alpha * 1e-9 + 1e-9,
            "case {case}"
        );
        assert!(m.min_cost() <= m.c_f() + 1e-12, "case {case}");
        assert!(m.min_cost() <= m.c_r() + 1e-12, "case {case}");
        assert!(m.c_f() > 0.0 && m.c_r() > 0.0, "case {case}");
    });
}

#[test]
fn efficiency_bounds_and_identity() {
    for_each_case(|rng, case| {
        let hit = rng.range(0, 1_000_000);
        let fill = rng.range(0, 1_000_000);
        let redirect = rng.range(0, 1_000_000);
        let alpha = rng.f64_range(0.05, 20.0);
        let mut t = TrafficCounter::default();
        t.record_hit(hit);
        t.record_fill(fill);
        t.record_redirect(redirect);
        let m = CostModel::from_alpha(alpha).expect("valid alpha");
        let e = t.efficiency(m);
        assert!(
            (-1.0 - 1e-9..=1.0 + 1e-9).contains(&e),
            "case {case}: eff {e}"
        );
        assert_eq!(t.requested_bytes(), hit + fill + redirect, "case {case}");
        assert_eq!(t.served_bytes(), hit + fill, "case {case}");
        // All-hit traffic has efficiency exactly 1.
        if fill == 0 && redirect == 0 && hit > 0 {
            assert!((e - 1.0).abs() < 1e-12, "case {case}");
        }
        // Efficiency decomposes: 1 - fill_frac*C_F - red_frac*C_R.
        if t.requested_bytes() > 0 {
            let total = t.requested_bytes() as f64;
            let expect = 1.0 - fill as f64 / total * m.c_f() - redirect as f64 / total * m.c_r();
            assert!((e - expect).abs() < 1e-12, "case {case}");
        }
    });
}

#[test]
fn traffic_counter_addition_is_fieldwise() {
    for_each_case(|rng, case| {
        let mk = |rng: &mut TestRng| {
            let mut t = TrafficCounter::default();
            t.record_hit(rng.range(0, 1000));
            t.record_fill(rng.range(0, 1000));
            t.record_redirect(rng.range(0, 1000));
            t
        };
        let (ta, tb) = (mk(rng), mk(rng));
        let sum = ta + tb;
        assert_eq!(sum.hit_bytes, ta.hit_bytes + tb.hit_bytes, "case {case}");
        assert_eq!(
            sum.requested_bytes(),
            ta.requested_bytes() + tb.requested_bytes(),
            "case {case}"
        );
    });
}

#[test]
fn timestamp_arithmetic_is_consistent() {
    for_each_case(|rng, case| {
        let a = rng.range(0, u64::MAX / 2);
        let d = rng.range(0, 1_000_000);
        let t = Timestamp(a);
        let later = t + DurationMs(d);
        assert_eq!(later - t, DurationMs(d), "case {case}");
        assert_eq!(t - later, DurationMs::ZERO, "case {case}");
        assert!(later >= t, "case {case}");
    });
}

#[test]
fn json_roundtrips_arbitrary_values() {
    use vcdn_types::json;
    for_each_case(|rng, case| {
        let r = Request::new(
            VideoId(rng.next()),
            ByteRange::new(0, rng.range(1, 1 << 40)).expect("valid"),
            Timestamp(rng.range(0, 1 << 45)),
        );
        let back: Request = json::from_str(&json::to_string(&r)).expect("parses");
        assert_eq!(back, r, "case {case}");

        let mut t = TrafficCounter::default();
        t.record_hit(rng.next() >> 8);
        t.record_fill(rng.next() >> 8);
        t.record_redirect(rng.next() >> 8);
        let back: TrafficCounter = json::from_str(&json::to_string(&t)).expect("parses");
        assert_eq!(back, t, "case {case}");

        let m = CostModel::from_alpha(rng.f64_range(0.01, 50.0)).expect("valid");
        let back: CostModel = json::from_str(&json::to_string(&m)).expect("parses");
        assert_eq!(back, m, "case {case}");
    });
}
