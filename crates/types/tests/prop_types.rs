//! Property-based tests for the core vocabulary: range arithmetic, the
//! cost model's normalisation, and traffic-counter identities.

use proptest::prelude::*;
use vcdn_types::{
    ByteRange, ChunkRange, ChunkSize, CostModel, Request, Timestamp, TrafficCounter, VideoId,
};

proptest! {
    #[test]
    fn byte_to_chunk_range_covers_every_requested_byte(
        start in 0u64..1_000_000,
        len in 1u64..1_000_000,
        k in 1u64..100_000,
    ) {
        let k = ChunkSize::new(k).expect("non-zero");
        let bytes = ByteRange::new(start, start + len - 1).expect("start <= end");
        let chunks = bytes.chunk_range(k);
        // First chunk contains the first byte; last chunk the last byte.
        prop_assert_eq!(u64::from(chunks.start), k.chunk_of_byte(bytes.start));
        prop_assert_eq!(u64::from(chunks.end), k.chunk_of_byte(bytes.end));
        // Chunk-covered byte span is a superset of the byte range.
        let covered_start = u64::from(chunks.start) * k.bytes();
        let covered_end = (u64::from(chunks.end) + 1) * k.bytes() - 1;
        prop_assert!(covered_start <= bytes.start);
        prop_assert!(covered_end >= bytes.end);
        // And wastes less than one chunk on each side.
        prop_assert!(bytes.start - covered_start < k.bytes());
        prop_assert!(covered_end - bytes.end < k.bytes());
    }

    #[test]
    fn chunk_count_identities(start in 0u64..10_000, len in 1u64..100_000, k in 1u64..1_000) {
        let k = ChunkSize::new(k).expect("non-zero");
        let r = Request::new(
            VideoId(1),
            ByteRange::new(start, start + len - 1).expect("valid"),
            Timestamp(0),
        );
        let n = r.chunk_len(k);
        // A request of `len` bytes touches between ceil(len/K) and
        // ceil(len/K)+1 chunks (misalignment adds at most one).
        let lower = len.div_ceil(k.bytes());
        prop_assert!(n >= lower);
        prop_assert!(n <= lower + 1);
        prop_assert_eq!(r.byte_len(), len);
    }

    #[test]
    fn chunk_range_len_matches_iteration(s in 0u32..1000, extra in 0u32..100) {
        let r = ChunkRange::new(s, s + extra).expect("valid");
        prop_assert_eq!(r.len() as usize, r.iter().count());
        prop_assert!(r.iter().all(|c| r.contains(c)));
    }

    #[test]
    fn cost_model_normalisation(alpha in 0.01f64..100.0) {
        let m = CostModel::from_alpha(alpha).expect("valid alpha");
        prop_assert!((m.c_f() + m.c_r() - 2.0).abs() < 1e-9);
        prop_assert!((m.c_f() / m.c_r() - alpha).abs() < alpha * 1e-9 + 1e-9);
        prop_assert!(m.min_cost() <= m.c_f() + 1e-12);
        prop_assert!(m.min_cost() <= m.c_r() + 1e-12);
        prop_assert!(m.c_f() > 0.0 && m.c_r() > 0.0);
    }

    #[test]
    fn efficiency_bounds_and_identity(
        hit in 0u64..1_000_000,
        fill in 0u64..1_000_000,
        redirect in 0u64..1_000_000,
        alpha in 0.05f64..20.0,
    ) {
        let mut t = TrafficCounter::default();
        t.record_hit(hit);
        t.record_fill(fill);
        t.record_redirect(redirect);
        let m = CostModel::from_alpha(alpha).expect("valid alpha");
        let e = t.efficiency(m);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e), "eff {e}");
        prop_assert_eq!(t.requested_bytes(), hit + fill + redirect);
        prop_assert_eq!(t.served_bytes(), hit + fill);
        // All-hit traffic has efficiency exactly 1.
        if fill == 0 && redirect == 0 && hit > 0 {
            prop_assert!((e - 1.0).abs() < 1e-12);
        }
        // Efficiency decomposes: 1 - fill_frac*C_F - red_frac*C_R.
        if t.requested_bytes() > 0 {
            let total = t.requested_bytes() as f64;
            let expect = 1.0
                - fill as f64 / total * m.c_f()
                - redirect as f64 / total * m.c_r();
            prop_assert!((e - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn traffic_counter_addition_is_fieldwise(
        a in (0u64..1000, 0u64..1000, 0u64..1000),
        b in (0u64..1000, 0u64..1000, 0u64..1000),
    ) {
        let mk = |(h, f, r): (u64, u64, u64)| {
            let mut t = TrafficCounter::default();
            t.record_hit(h);
            t.record_fill(f);
            t.record_redirect(r);
            t
        };
        let (ta, tb) = (mk(a), mk(b));
        let sum = ta + tb;
        prop_assert_eq!(sum.hit_bytes, ta.hit_bytes + tb.hit_bytes);
        prop_assert_eq!(sum.requested_bytes(), ta.requested_bytes() + tb.requested_bytes());
    }

    #[test]
    fn timestamp_arithmetic_is_consistent(a in 0u64..u64::MAX / 2, d in 0u64..1_000_000) {
        use vcdn_types::DurationMs;
        let t = Timestamp(a);
        let later = t + DurationMs(d);
        prop_assert_eq!(later - t, DurationMs(d));
        prop_assert_eq!(t - later, DurationMs::ZERO);
        prop_assert!(later >= t);
    }
}
