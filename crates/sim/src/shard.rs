//! Hash-mod bucketing over co-located servers (paper §2, footnote 2).
//!
//! The paper rules out content-hash *request mapping* across the CDN, but
//! explicitly recommends bucketizing the file-ID space over **co-located**
//! servers: "a feasible (and recommended) practice for dividing the file
//! ID space over co-located servers to balance load and minimize
//! co-located duplicates".
//!
//! [`ShardMap`] implements that practice: video IDs hash into a fixed
//! bucket space, buckets map to the servers of one location by modulo.
//! [`replay_colocated`] replays one location's trace through its servers
//! under either sharded or random per-session assignment, measuring
//! exactly the two quantities the footnote names: per-server load balance
//! and co-located duplicate chunks.

use std::sync::Arc;

use vcdn_core::CachePolicy;
use vcdn_obs::{MetricsSink, PolicyObs};
use vcdn_trace::Trace;
use vcdn_types::float::exactly_zero;
use vcdn_types::{ChunkId, Decision, TrafficCounter, VideoId};

/// Maps video IDs to one of `servers` co-located caches through a
/// fixed-size bucket space.
///
/// The indirection through buckets (rather than `video % servers`) is what
/// the footnote describes: bucket IDs are stable "aggregated file ID
/// groups", so adding a server remaps whole buckets instead of rehashing
/// every file.
///
/// # Examples
///
/// ```
/// use vcdn_sim::shard::ShardMap;
/// use vcdn_types::VideoId;
///
/// let m = ShardMap::new(4, 1024);
/// let s = m.server_for(VideoId(42));
/// assert!(s < 4);
/// assert_eq!(s, m.server_for(VideoId(42))); // stable
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    servers: usize,
    buckets: u64,
}

impl ShardMap {
    /// Creates a map over `servers` co-located caches with `buckets`
    /// hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `buckets == 0`.
    pub fn new(servers: usize, buckets: u64) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(buckets > 0, "need at least one bucket");
        ShardMap { servers, buckets }
    }

    /// The bucket a video falls into (SplitMix64-style mixing so dense
    /// video IDs spread evenly).
    pub fn bucket_of(&self, video: VideoId) -> u64 {
        let mut z = video.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) % self.buckets
    }

    /// The co-located server serving a video: `bucket mod servers`.
    pub fn server_for(&self, video: VideoId) -> usize {
        (self.bucket_of(video) % self.servers as u64) as usize
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }
}

/// How requests are assigned to the co-located servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Hash-mod bucketing per the footnote (content-aware *within* the
    /// location only).
    Sharded,
    /// Content-oblivious spreading (round-robin per request) — the
    /// load-balancer default the footnote improves upon.
    RoundRobin,
}

/// Result of a co-located replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ColocatedReport {
    /// Per-server traffic.
    pub servers: Vec<TrafficCounter>,
    /// Distinct chunks stored across all servers at end of replay.
    pub distinct_cached_chunks: u64,
    /// Total chunks stored across all servers (≥ distinct; the surplus is
    /// co-located duplication).
    pub total_cached_chunks: u64,
}

impl ColocatedReport {
    /// Duplicate chunks: copies beyond the first of each distinct chunk.
    pub fn duplicate_chunks(&self) -> u64 {
        self.total_cached_chunks - self.distinct_cached_chunks
    }

    /// Load imbalance: max over mean of per-server requested bytes
    /// (1.0 = perfectly balanced).
    pub fn load_imbalance(&self) -> f64 {
        let loads: Vec<u64> = self
            .servers
            .iter()
            .map(TrafficCounter::requested_bytes)
            .collect();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        if exactly_zero(mean) {
            1.0
        } else {
            max / mean
        }
    }
}

/// Attaches per-server scoped metrics to every co-located cache: server
/// `i` running policy `p` records under `s{i:02}.{p}.…`, so one shared
/// sink (typically a [`vcdn_obs::MetricsRegistry`]) separates the
/// location's servers while keeping their metrics in one snapshot.
pub fn attach_colocated_obs(caches: &mut [Box<dyn CachePolicy>], sink: &Arc<dyn MetricsSink>) {
    for (i, cache) in caches.iter_mut().enumerate() {
        let scope = format!("s{i:02}.{}", cache.name());
        cache.attach_obs(PolicyObs::attach(Arc::clone(sink), &scope));
    }
}

/// Replays `trace` through a group of co-located caches under the given
/// assignment policy. The caches' final contents are inspected through
/// [`CachePolicy::contains_chunk`] over every requested chunk to count
/// co-located duplicates.
///
/// # Panics
///
/// Panics if `caches` is empty or chunk sizes differ.
pub fn replay_colocated(
    trace: &Trace,
    caches: &mut [Box<dyn CachePolicy>],
    assignment: Assignment,
) -> ColocatedReport {
    assert!(!caches.is_empty(), "need at least one cache");
    let k = caches[0].chunk_size();
    for c in caches.iter() {
        assert_eq!(c.chunk_size(), k, "co-located chunk size mismatch");
    }
    let map = ShardMap::new(caches.len(), 4096);
    let k_bytes = k.bytes();
    let mut servers = vec![TrafficCounter::default(); caches.len()];
    let mut rr = 0usize;
    for request in &trace.requests {
        let i = match assignment {
            Assignment::Sharded => map.server_for(request.video),
            Assignment::RoundRobin => {
                rr = (rr + 1) % caches.len();
                rr
            }
        };
        let chunks = request.chunk_len(k);
        match caches[i].handle_request(request) {
            Decision::Serve(o) => {
                servers[i].record_hit(o.hit_chunks * k_bytes);
                servers[i].record_fill(o.filled_chunks * k_bytes);
                servers[i].served_requests += 1;
            }
            Decision::Redirect => {
                servers[i].record_redirect(chunks * k_bytes);
                servers[i].redirected_requests += 1;
            }
        }
    }
    // Count duplicates over the union of requested chunks.
    let mut requested: vcdn_types::FastSet<ChunkId> = vcdn_types::FastSet::default();
    for r in &trace.requests {
        for c in r.chunk_range(k).iter() {
            requested.insert(ChunkId::new(r.video, c));
        }
    }
    let mut distinct = 0u64;
    let mut total = 0u64;
    for chunk in requested {
        let copies = caches.iter().filter(|c| c.contains_chunk(chunk)).count() as u64;
        if copies > 0 {
            distinct += 1;
            total += copies;
        }
    }
    ColocatedReport {
        servers,
        distinct_cached_chunks: distinct,
        total_cached_chunks: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcdn_core::{CacheConfig, CachePolicy, LruCache, XlruCache};
    use vcdn_trace::{ServerProfile, TraceGenerator};
    use vcdn_types::{ChunkSize, CostModel, DurationMs};

    fn k() -> ChunkSize {
        ChunkSize::DEFAULT
    }

    fn caches(n: usize) -> Vec<Box<dyn CachePolicy>> {
        (0..n)
            .map(|_| {
                Box::new(LruCache::new(CacheConfig::new(
                    128,
                    k(),
                    CostModel::balanced(),
                ))) as Box<dyn CachePolicy>
            })
            .collect()
    }

    fn trace() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 61).generate(DurationMs::from_days(1))
    }

    #[test]
    fn shard_map_is_stable_and_in_range() {
        let m = ShardMap::new(5, 1000);
        for v in 0..500 {
            let s = m.server_for(VideoId(v));
            assert!(s < 5);
            assert_eq!(s, m.server_for(VideoId(v)));
        }
    }

    #[test]
    fn buckets_spread_dense_ids_evenly() {
        let m = ShardMap::new(4, 4096);
        let mut counts = [0u32; 4];
        for v in 0..40_000 {
            counts[m.server_for(VideoId(v))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (8_000..12_000).contains(&c),
                "server {i} got {c} of 40000 — poor spread"
            );
        }
    }

    #[test]
    fn sharding_eliminates_colocated_duplicates() {
        let t = trace();
        let mut sharded = caches(3);
        let rep_sharded = replay_colocated(&t, &mut sharded, Assignment::Sharded);
        let mut spread = caches(3);
        let rep_spread = replay_colocated(&t, &mut spread, Assignment::RoundRobin);
        // Sharded: every video lives on exactly one server — no duplicates.
        assert_eq!(rep_sharded.duplicate_chunks(), 0);
        // Round-robin: popular content gets cached on several servers.
        assert!(
            rep_spread.duplicate_chunks() > 0,
            "round-robin should duplicate popular chunks"
        );
    }

    #[test]
    fn accounting_covers_the_whole_trace() {
        let t = trace();
        let mut cs = caches(4);
        let rep = replay_colocated(&t, &mut cs, Assignment::Sharded);
        let requested: u64 = t
            .requests
            .iter()
            .map(|r| r.chunk_len(k()) * k().bytes())
            .sum();
        let seen: u64 = rep
            .servers
            .iter()
            .map(TrafficCounter::requested_bytes)
            .sum();
        assert_eq!(seen, requested);
        assert!(rep.load_imbalance() >= 1.0);
    }

    #[test]
    fn works_with_admission_policies_too() {
        let t = trace();
        let mut cs: Vec<Box<dyn CachePolicy>> = (0..2)
            .map(|_| {
                Box::new(XlruCache::new(CacheConfig::new(
                    64,
                    k(),
                    CostModel::from_alpha(2.0).expect("valid"),
                ))) as Box<dyn CachePolicy>
            })
            .collect();
        let rep = replay_colocated(&t, &mut cs, Assignment::Sharded);
        assert_eq!(rep.duplicate_chunks(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn empty_cache_group_rejected() {
        replay_colocated(&trace(), &mut [], Assignment::Sharded);
    }

    #[test]
    fn colocated_obs_scopes_servers_separately() {
        use vcdn_obs::MetricsRegistry;

        let t = trace();
        let mut cs = caches(3);
        let registry = Arc::new(MetricsRegistry::new());
        let sink: Arc<dyn MetricsSink> = registry.clone();
        attach_colocated_obs(&mut cs, &sink);
        let rep = replay_colocated(&t, &mut cs, Assignment::Sharded);

        let snap = registry.snapshot(true);
        // Every server registered its scoped metric family.
        for i in 0..3 {
            assert!(
                snap.iter()
                    .any(|m| m.name == format!("s{i:02}.lru.serve_requests_total")),
                "server {i} metrics missing"
            );
        }
        // Per-server request counters agree with the replay's accounting.
        for (i, server) in rep.servers.iter().enumerate() {
            let served = snap
                .iter()
                .find(|m| m.name == format!("s{i:02}.lru.serve_requests_total"))
                .unwrap()
                .value;
            assert_eq!(served, server.served_requests);
        }
        let total: u64 = snap
            .iter()
            .filter(|m| m.name.ends_with("serve_requests_total"))
            .map(|m| m.value)
            .sum();
        assert_eq!(total as usize, t.len());
    }
}
