//! Plain-text and CSV rendering of experiment results.
//!
//! The experiment binaries print the same rows/series the paper's figures
//! report; these helpers keep that output aligned and machine-readable.

use std::fmt::Write as _;

/// A simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use vcdn_sim::report::Table;
///
/// let mut t = Table::new(vec!["alpha", "xlru", "cafe"]);
/// t.row(vec!["1.0".into(), "0.59".into(), "0.61".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.contains("0.61"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{sep}", cell, width = widths[i]);
            }
        };
        emit(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — callers
    /// must not put commas in cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats an efficiency value with three decimals.
pub fn eff(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a byte count with binary-unit suffixes.
pub fn bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.2}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["wide-cell".into(), "x".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines have equal alignment width for column 0.
        assert!(lines[2].starts_with("1        "));
        assert!(lines[3].starts_with("wide-cell"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(eff(0.6189), "0.619");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2 * 1024 * 1024), "2.00MiB");
        assert_eq!(bytes(5 * 1024 * 1024 * 1024), "5.00GiB");
    }
}
