//! Two-level cache hierarchy replay — a first step toward the paper's
//! §10 "CDN-wide optimality" direction.
//!
//! Section 2 describes redirect targets such as "a higher level, larger
//! serving site in a cache hierarchy, which captures redirects of its
//! downstream servers". This module wires exactly that: an edge cache
//! handles the user-facing trace; every redirected request is forwarded
//! (at the same timestamp) to a parent cache; what the parent redirects
//! leaves the CDN toward the origin.
//!
//! The combined CDN cost (Eq. 1 generalised) is
//! `edge_fill·C_F^edge + parent_fill·C_F^parent + origin_bytes·C_R^parent`,
//! which the report exposes alongside per-tier counters so experiments can
//! explore `α` splits between tiers (e.g. a constrained edge, `α=2`, in
//! front of a deep parent, `α=1`).
//!
//! The parent must be an *online* policy (xLRU/Cafe/LRU): Psychic needs
//! the exact request sequence up front, but the parent's sequence is the
//! edge's redirect stream, which depends on the edge's decisions.

use vcdn_core::CachePolicy;
use vcdn_trace::Trace;
use vcdn_types::{Decision, TrafficCounter};

/// Per-tier and combined results of a hierarchy replay.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyReport {
    /// Edge-tier traffic (over the full trace).
    pub edge: TrafficCounter,
    /// Parent-tier traffic (over the edge's redirect stream).
    pub parent: TrafficCounter,
    /// Bytes that left the CDN toward the origin (parent redirects).
    pub origin_bytes: u64,
    /// Requests the parent redirected to the origin.
    pub origin_requests: u64,
}

impl HierarchyReport {
    /// Fraction of requested bytes served somewhere inside the CDN
    /// without a cache-fill (edge hits + parent hits).
    pub fn cdn_hit_rate(&self) -> f64 {
        let total = self.edge.requested_bytes();
        if total == 0 {
            return 0.0;
        }
        (self.edge.hit_bytes + self.parent.hit_bytes) as f64 / total as f64
    }

    /// Total CDN cost: fills at each tier at that tier's `C_F`, plus
    /// origin traffic at the parent's `C_R`.
    pub fn total_cost(&self, edge_c_f: f64, parent_c_f: f64, parent_c_r: f64) -> f64 {
        self.edge.fill_bytes as f64 * edge_c_f
            + self.parent.fill_bytes as f64 * parent_c_f
            + self.origin_bytes as f64 * parent_c_r
    }
}

/// Replays `trace` through an edge/parent pair.
///
/// # Panics
///
/// Panics if the two policies disagree on chunk size, or (debug) if a
/// policy violates its serve contract.
pub fn replay_hierarchy(
    trace: &Trace,
    edge: &mut dyn CachePolicy,
    parent: &mut dyn CachePolicy,
) -> HierarchyReport {
    assert_eq!(
        edge.chunk_size(),
        parent.chunk_size(),
        "edge/parent chunk size mismatch"
    );
    let k = edge.chunk_size().bytes();
    let mut report = HierarchyReport {
        edge: TrafficCounter::default(),
        parent: TrafficCounter::default(),
        origin_bytes: 0,
        origin_requests: 0,
    };
    for request in &trace.requests {
        let chunks = request.chunk_len(edge.chunk_size());
        match edge.handle_request(request) {
            Decision::Serve(o) => {
                debug_assert_eq!(o.served_chunks(), chunks);
                report.edge.record_hit(o.hit_chunks * k);
                report.edge.record_fill(o.filled_chunks * k);
                report.edge.served_requests += 1;
            }
            Decision::Redirect => {
                report.edge.record_redirect(chunks * k);
                report.edge.redirected_requests += 1;
                // The redirected user retries at the parent location.
                match parent.handle_request(request) {
                    Decision::Serve(o) => {
                        debug_assert_eq!(o.served_chunks(), chunks);
                        report.parent.record_hit(o.hit_chunks * k);
                        report.parent.record_fill(o.filled_chunks * k);
                        report.parent.served_requests += 1;
                    }
                    Decision::Redirect => {
                        report.parent.record_redirect(chunks * k);
                        report.parent.redirected_requests += 1;
                        report.origin_bytes = report.origin_bytes.saturating_add(chunks * k);
                        report.origin_requests += 1;
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcdn_core::{CacheConfig, CafeCache, CafeConfig, LruCache, XlruCache};
    use vcdn_trace::{ServerProfile, TraceGenerator};
    use vcdn_types::{ChunkSize, CostModel, DurationMs};

    fn k() -> ChunkSize {
        ChunkSize::DEFAULT
    }

    fn trace() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 31).generate(DurationMs::from_days(2))
    }

    #[test]
    fn tier_accounting_is_conservative() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).expect("valid");
        let mut edge = CafeCache::new(CafeConfig::new(128, k(), costs));
        let mut parent = XlruCache::new(CacheConfig::new(1024, k(), CostModel::balanced()));
        let r = replay_hierarchy(&t, &mut edge, &mut parent);
        // Every edge-redirected byte reaches the parent.
        assert_eq!(r.edge.redirect_bytes, r.parent.requested_bytes());
        assert_eq!(r.edge.redirected_requests, r.parent.total_requests());
        // Origin traffic equals parent redirects.
        assert_eq!(r.origin_bytes, r.parent.redirect_bytes);
        assert_eq!(r.origin_requests, r.parent.redirected_requests);
        // CDN hit rate is a fraction.
        assert!((0.0..=1.0).contains(&r.cdn_hit_rate()));
    }

    #[test]
    fn lru_parent_absorbs_everything() {
        // An LRU parent never redirects: origin traffic must be zero.
        let t = trace();
        let costs = CostModel::from_alpha(4.0).expect("valid");
        let mut edge = CafeCache::new(CafeConfig::new(64, k(), costs));
        let mut parent = LruCache::new(CacheConfig::new(512, k(), CostModel::balanced()));
        let r = replay_hierarchy(&t, &mut edge, &mut parent);
        assert!(r.edge.redirected_requests > 0, "edge should redirect some");
        assert_eq!(r.origin_bytes, 0);
        assert_eq!(r.origin_requests, 0);
    }

    #[test]
    fn deeper_parent_reduces_origin_traffic() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).expect("valid");
        let run = |parent_disk: u64| -> u64 {
            let mut edge = CafeCache::new(CafeConfig::new(64, k(), costs));
            let mut parent =
                XlruCache::new(CacheConfig::new(parent_disk, k(), CostModel::balanced()));
            replay_hierarchy(&t, &mut edge, &mut parent).origin_bytes
        };
        let small = run(64);
        let large = run(2048);
        assert!(
            large <= small,
            "deeper parent should not increase origin traffic: {large} > {small}"
        );
    }

    #[test]
    fn total_cost_combines_tiers() {
        let r = HierarchyReport {
            edge: {
                let mut t = TrafficCounter::default();
                t.record_fill(100);
                t
            },
            parent: {
                let mut t = TrafficCounter::default();
                t.record_fill(50);
                t
            },
            origin_bytes: 10,
            origin_requests: 1,
        };
        let cost = r.total_cost(2.0, 1.0, 1.0);
        assert!((cost - (200.0 + 50.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "chunk size mismatch")]
    fn chunk_size_mismatch_detected() {
        let t = trace();
        let mut edge = LruCache::new(CacheConfig::new(4, k(), CostModel::balanced()));
        let mut parent = LruCache::new(CacheConfig::new(
            4,
            ChunkSize::new(1024).expect("non-zero"),
            CostModel::balanced(),
        ));
        replay_hierarchy(&t, &mut edge, &mut parent);
    }
}
