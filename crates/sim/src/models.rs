//! Server resource models for the motivation-level ablations.
//!
//! Section 2 of the paper motivates ingress-constrained operation with two
//! server-side effects that standard cache metrics do not expose:
//!
//! * **Disk-write interference** — "for every extra write-block operation
//!   we lose 1.2–1.3 reads": cache-fill writes steal IOPS from cache-hit
//!   reads.
//! * **Egress saturation** — "for a server at which the current contents
//!   suffice to ... fully utilize the egress capacity, there is no point
//!   to bring in new content upon cache misses", because the extra ingress
//!   is wasted.
//!
//! These models post-process a [`crate::ReplayReport`] into
//! the quantities that make those arguments concrete; the ablation benches
//! use them to show *why* `α_F2R > 1` is the right setting for constrained
//! servers.

use vcdn_types::float::exactly_zero;
use vcdn_types::TrafficCounter;

use crate::replay::ReplayReport;

/// Disk read/write interference model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskIoModel {
    /// Reads lost per write-block operation (paper: 1.2–1.3).
    pub reads_lost_per_write: f64,
    /// I/O block size in bytes (reads and writes are counted in blocks).
    pub block_bytes: u64,
}

impl DiskIoModel {
    /// The paper's midpoint: 1.25 reads lost per write, 2 MB blocks.
    pub fn paper_default() -> Self {
        DiskIoModel {
            reads_lost_per_write: 1.25,
            block_bytes: 2 * 1024 * 1024,
        }
    }

    /// Read-block operations lost to cache-fill writes for a traffic
    /// aggregate.
    pub fn lost_reads(&self, traffic: &TrafficCounter) -> f64 {
        let writes = traffic.fill_bytes as f64 / self.block_bytes as f64;
        writes * self.reads_lost_per_write
    }

    /// The fraction of read capacity consumed by fill-induced interference:
    /// `lost_reads / (useful_reads + lost_reads)`. Zero when idle.
    pub fn read_capacity_loss(&self, traffic: &TrafficCounter) -> f64 {
        let useful = traffic.hit_bytes as f64 / self.block_bytes as f64;
        let lost = self.lost_reads(traffic);
        if exactly_zero(useful + lost) {
            0.0
        } else {
            lost / (useful + lost)
        }
    }
}

/// Egress (serving) capacity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EgressModel {
    /// Serving capacity in bytes per metric window.
    pub capacity_bytes_per_window: u64,
}

/// Egress saturation summary over a replay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EgressSummary {
    /// Windows in which served traffic met or exceeded capacity.
    pub saturated_windows: usize,
    /// Total windows with any traffic.
    pub active_windows: usize,
    /// Bytes cache-filled during saturated windows — ingress the paper
    /// calls "wasted (and possibly harmful)".
    pub wasted_fill_bytes: u64,
}

impl EgressModel {
    /// Summarises saturation over a replay's windows.
    pub fn summarize(&self, report: &ReplayReport) -> EgressSummary {
        let mut s = EgressSummary::default();
        for w in &report.windows {
            if w.traffic.requested_bytes() == 0 {
                continue;
            }
            s.active_windows += 1;
            if w.traffic.served_bytes() >= self.capacity_bytes_per_window {
                s.saturated_windows += 1;
                s.wasted_fill_bytes = s.wasted_fill_bytes.saturating_add(w.traffic.fill_bytes);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcdn_types::{CostModel, Timestamp};

    fn traffic(hit: u64, fill: u64, redirect: u64) -> TrafficCounter {
        let mut t = TrafficCounter::default();
        t.record_hit(hit);
        t.record_fill(fill);
        t.record_redirect(redirect);
        t
    }

    #[test]
    fn lost_reads_scale_with_writes() {
        let m = DiskIoModel {
            reads_lost_per_write: 1.25,
            block_bytes: 100,
        };
        let t = traffic(10_000, 400, 0);
        assert!((m.lost_reads(&t) - 4.0 * 1.25).abs() < 1e-12);
        // Read capacity loss: lost 5 blocks vs 100 useful reads.
        let loss = m.read_capacity_loss(&t);
        assert!((loss - 5.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn no_writes_no_loss() {
        let m = DiskIoModel::paper_default();
        let t = traffic(1_000_000, 0, 500);
        assert_eq!(m.lost_reads(&t), 0.0);
        assert_eq!(m.read_capacity_loss(&t), 0.0);
        assert_eq!(m.read_capacity_loss(&TrafficCounter::default()), 0.0);
    }

    #[test]
    fn paper_default_in_documented_band() {
        let m = DiskIoModel::paper_default();
        assert!((1.2..=1.3).contains(&m.reads_lost_per_write));
    }

    #[test]
    fn egress_saturation_counts_wasted_fill() {
        use crate::replay::{ReplayReport, WindowStat};
        let windows = vec![
            WindowStat {
                start: Timestamp(0),
                traffic: traffic(900, 200, 0),
            }, // sat
            WindowStat {
                start: Timestamp(1),
                traffic: traffic(100, 50, 0),
            }, // not
            WindowStat {
                start: Timestamp(2),
                traffic: TrafficCounter::default(),
            }, // idle
            WindowStat {
                start: Timestamp(3),
                traffic: traffic(1_000, 0, 10),
            }, // sat
        ];
        let report = ReplayReport {
            policy: "test",
            overall: TrafficCounter::default(),
            steady: TrafficCounter::default(),
            windows,
            costs: CostModel::balanced(),
        };
        let m = EgressModel {
            capacity_bytes_per_window: 1_000,
        };
        let s = m.summarize(&report);
        assert_eq!(s.active_windows, 3);
        assert_eq!(s.saturated_windows, 2);
        assert_eq!(s.wasted_fill_bytes, 200);
    }
}
