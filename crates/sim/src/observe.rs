//! Telemetry collection for replays: wires a [`ReplayObserver`] to the
//! `vcdn-obs` registry, decision-event ring and time-series sampler, and
//! packages one replay's output as a [`TelemetryBundle`].
//!
//! [`replay_with_telemetry`] is the one-call entry point: it attaches
//! scoped policy metrics, observes the replay, and returns the report
//! plus a JSONL-ready bundle. [`telemetry_cell`] wraps the same call as a
//! [`Cell`] for [`crate::runner::run_grid`] fan-out — each cell owns its
//! policy, registry, ring and sampler, so a grid's bundles are
//! byte-identical for any worker count.

use std::sync::Arc;

use vcdn_core::CachePolicy;
use vcdn_obs::topk::{SpaceSaving, TopKRecord};
use vcdn_obs::window::{WindowInput, WindowRecord, WindowRing};
use vcdn_obs::{
    default_rules, DecisionEvent, EventRing, MetricId, MetricKind, MetricsRegistry, MetricsSink,
    PolicyObs, ReplaySampler, Rule, TelemetryBundle, Verdict, Watchdog,
};
use vcdn_trace::Trace;
use vcdn_types::json::Json;
use vcdn_types::{ChunkId, CostModel, Decision, DurationMs};

use crate::replay::{DecisionCtx, ReplayObserver, ReplayReport, Replayer};
use crate::runner::{Cell, CellResult};

/// Telemetry collection knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Trace-time length of one [`vcdn_obs::SeriesSample`] interval.
    pub sample_interval: DurationMs,
    /// Decision events retained (the [`EventRing`] capacity); older events
    /// are displaced and counted as dropped.
    pub event_capacity: usize,
    /// Wall-clock-time every `handle_request` call into the
    /// `decision_latency_ns` timing histogram. Inherently
    /// non-deterministic, so the histogram never appears in exported
    /// bundles; off by default.
    pub time_decisions: bool,
    /// Slots in the Space-Saving heavy-hitter sketch over the replay's
    /// video stream (0 disables the sketch and the bundle's topk lines).
    pub topk_k: usize,
    /// Trace-time width of one health window ([`vcdn_obs::window`]);
    /// [`DurationMs::ZERO`] disables the window plane and the watchdog.
    pub window: DurationMs,
    /// Closed health windows retained in the bounded ring (the watchdog
    /// still sees every window at close time; only the export is bounded).
    pub window_retain: usize,
}

impl TelemetryConfig {
    /// Hourly samples, 4096 retained events, an 8-slot heavy-hitter
    /// sketch, hourly health windows retaining the last 768 (32 days of
    /// trace time), no wall-clock timing.
    pub fn new() -> TelemetryConfig {
        TelemetryConfig {
            sample_interval: DurationMs::HOUR,
            event_capacity: 4096,
            time_decisions: false,
            topk_k: 8,
            window: DurationMs::HOUR,
            window_retain: 768,
        }
    }

    /// Overrides the sampling interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_sample_interval(mut self, interval: DurationMs) -> Self {
        assert!(interval.as_millis() > 0, "sample interval must be > 0");
        self.sample_interval = interval;
        self
    }

    /// Overrides the event-ring capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "event capacity must be > 0");
        self.event_capacity = capacity;
        self
    }

    /// Enables wall-clock decision timing.
    pub fn with_time_decisions(mut self, on: bool) -> Self {
        self.time_decisions = on;
        self
    }

    /// Overrides the heavy-hitter sketch capacity (0 disables).
    pub fn with_topk(mut self, k: usize) -> Self {
        self.topk_k = k;
        self
    }

    /// Overrides the health-window width ([`DurationMs::ZERO`] disables
    /// the window plane and the watchdog).
    pub fn with_window(mut self, width: DurationMs) -> Self {
        self.window = width;
        self
    }

    /// Overrides the window-ring bound.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn with_window_retain(mut self, retain: usize) -> Self {
        assert!(retain > 0, "window retain must be > 0");
        self.window_retain = retain;
        self
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::new()
    }
}

/// A [`ReplayObserver`] that records every decision into a metrics
/// registry, a bounded event ring and a trace-time sampler.
///
/// Construct with [`TelemetryObserver::new`], attach the same registry to
/// the policy (see [`replay_with_telemetry`], which does both), replay
/// with [`Replayer::replay_observed`], then call
/// [`TelemetryObserver::finish`] for the bundle.
pub struct TelemetryObserver {
    registry: Arc<MetricsRegistry>,
    latency_id: MetricId,
    ring: EventRing,
    sampler: ReplaySampler,
    topk: Option<SpaceSaving>,
    windows: Option<WindowRing>,
    watchdog: Watchdog,
    costs: CostModel,
    chunk_bytes: u64,
    time_decisions: bool,
    meta: Vec<(String, Json)>,
}

impl TelemetryObserver {
    /// Creates an observer recording into `registry` under `scope` (the
    /// same scope the policy's [`PolicyObs`] uses, so the latency
    /// histogram lands next to the policy's own metrics).
    pub fn new(
        registry: Arc<MetricsRegistry>,
        replayer: &Replayer,
        telemetry: &TelemetryConfig,
        scope: &str,
    ) -> TelemetryObserver {
        let cfg = replayer.config();
        let latency_id = registry.register(
            &format!("{scope}.decision_latency_ns"),
            MetricKind::TimingHistogram,
        );
        TelemetryObserver {
            registry,
            latency_id,
            ring: EventRing::new(telemetry.event_capacity),
            sampler: ReplaySampler::new(telemetry.sample_interval.as_millis(), cfg.costs),
            topk: (telemetry.topk_k > 0).then(|| SpaceSaving::new(telemetry.topk_k)),
            windows: (telemetry.window.as_millis() > 0)
                .then(|| WindowRing::new(telemetry.window.as_millis(), telemetry.window_retain)),
            // The unsharded replayer is one request stream.
            watchdog: Watchdog::new(default_rules(), cfg.costs, 1),
            costs: cfg.costs,
            chunk_bytes: cfg.chunk_size.bytes(),
            time_decisions: telemetry.time_decisions,
            meta: Vec::new(),
        }
    }

    /// Replaces the watchdog's rule set (call before replaying; the
    /// default is [`vcdn_obs::default_rules`]).
    pub fn set_rules(&mut self, rules: Vec<Rule>) {
        self.watchdog = Watchdog::new(rules, self.costs, 1);
    }

    /// Adds a metadata entry to the eventual bundle's meta line.
    pub fn meta_entry(&mut self, key: &str, value: Json) -> &mut Self {
        self.meta.push((key.to_string(), value));
        self
    }

    /// The registry this observer records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Consumes the observer, assembling the bundle: meta entries, the
    /// registry's deterministic metric snapshots, the health windows and
    /// watchdog alerts, the time series and the retained events.
    pub fn finish(mut self) -> TelemetryBundle {
        let mut bundle = TelemetryBundle::new();
        bundle.meta = self.meta;
        bundle.metrics = self.registry.snapshot(true);
        if let Some(mut ring) = self.windows.take() {
            let watchdog = &mut self.watchdog;
            ring.finish(&mut |w| watchdog.on_window(w));
            bundle.windows = ring
                .closed_windows()
                .map(|w| WindowRecord::from_stats(w, self.costs))
                .collect();
            bundle.windows_dropped = ring.dropped();
        }
        bundle.alerts = self.watchdog.into_alerts();
        if let Some(sketch) = &self.topk {
            for (i, e) in sketch.entries().iter().enumerate() {
                bundle.topk.push(TopKRecord {
                    shard: 0,
                    rank: (i + 1) as u32,
                    video: e.key >> ChunkId::INDEX_BITS,
                    count: e.count,
                    err: e.err,
                });
            }
        }
        bundle.events_dropped = self.ring.dropped();
        bundle.events = self.ring.iter_oldest_first().cloned().collect();
        bundle.series = self.sampler.finish();
        bundle
    }
}

impl ReplayObserver for TelemetryObserver {
    fn wants_timing(&self) -> bool {
        self.time_decisions
    }

    fn on_decision(&mut self, ctx: &DecisionCtx<'_>) {
        if let Some(sketch) = self.topk.as_mut() {
            sketch.record(ChunkId::new(ctx.request.video, 0).packed());
        }
        let (verdict, hit_b, fill_b, red_b, evicted) = match ctx.decision {
            Decision::Serve(o) => (
                Verdict::Serve {
                    hit_chunks: o.hit_chunks,
                    filled_chunks: o.filled_chunks,
                },
                o.hit_chunks.saturating_mul(self.chunk_bytes),
                o.filled_chunks.saturating_mul(self.chunk_bytes),
                0,
                o.evicted.len() as u64,
            ),
            Decision::Redirect => (
                Verdict::Redirect,
                0,
                0,
                ctx.chunks.saturating_mul(self.chunk_bytes),
                0,
            ),
        };
        self.ring.push(DecisionEvent::from_decision(
            ctx.seq,
            ctx.request,
            ctx.first_chunk,
            ctx.chunks as u32,
            ctx.policy,
            verdict,
            ctx.detail,
            evicted,
        ));
        self.sampler.record(
            ctx.request.t.as_millis(),
            hit_b,
            fill_b,
            red_b,
            ctx.occupancy_chunks,
            ctx.capacity_chunks,
            ctx.detail.cache_age_ms,
        );
        if let Some(ring) = self.windows.as_mut() {
            let input = WindowInput {
                t_ms: ctx.request.t.as_millis(),
                hit_bytes: hit_b,
                fill_bytes: fill_b,
                redirect_bytes: red_b,
                // fill_b is exactly filled_chunks · chunk_bytes.
                filled_chunks: fill_b / self.chunk_bytes,
                evicted_chunks: evicted,
                request_chunks: ctx.chunks,
                queue_gap: None,
            };
            let watchdog = &mut self.watchdog;
            ring.record(&input, &mut |w| watchdog.on_window(w));
        }
        if let Some(ns) = ctx.latency_ns {
            self.registry.observe(self.latency_id, ns);
        }
    }
}

/// Replays `trace` through `policy` with full telemetry: attaches scoped
/// policy metrics to a fresh registry, observes every decision, and
/// returns the ordinary report alongside the telemetry bundle.
///
/// The bundle's meta line records the policy, cost model, chunk size,
/// sample interval and trace identity; its metrics are the policy's
/// scoped counters/gauges/histograms in registration order.
pub fn replay_with_telemetry(
    replayer: &Replayer,
    trace: &Trace,
    policy: &mut dyn CachePolicy,
    telemetry: &TelemetryConfig,
) -> (ReplayReport, TelemetryBundle) {
    let registry = Arc::new(MetricsRegistry::new());
    let scope = policy.name();
    policy.attach_obs(PolicyObs::attach(
        Arc::clone(&registry) as Arc<dyn MetricsSink>,
        scope,
    ));
    let mut observer = TelemetryObserver::new(Arc::clone(&registry), replayer, telemetry, scope);
    let cfg = replayer.config();
    observer.meta_entry("policy", Json::Str(scope.into()));
    observer.meta_entry("alpha", Json::Float(cfg.costs.alpha()));
    observer.meta_entry("chunk_bytes", Json::Int(cfg.chunk_size.bytes() as i128));
    observer.meta_entry(
        "interval_ms",
        Json::Int(telemetry.sample_interval.as_millis() as i128),
    );
    observer.meta_entry("window_ms", Json::Int(telemetry.window.as_millis() as i128));
    observer.meta_entry("topk_k", Json::Int(telemetry.topk_k as i128));
    observer.meta_entry("trace", Json::Str(trace.meta.name.clone()));
    observer.meta_entry("requests", Json::Int(trace.len() as i128));
    let report = replayer.replay_observed(trace, policy, &mut observer);
    (report, observer.finish())
}

/// Wraps a telemetry replay as a [`Cell`] for [`crate::runner::run_grid`].
///
/// The policy is built *inside* the cell so every cell owns all of its
/// state (policy, registry, ring, sampler) — the runner's determinism
/// contract. The cell's label is recorded in the bundle's meta line as
/// `"cell"`.
pub fn telemetry_cell<'a, F>(
    label: impl Into<String>,
    replayer: Replayer,
    trace: &'a Trace,
    telemetry: TelemetryConfig,
    make_policy: F,
) -> Cell<'a, (ReplayReport, TelemetryBundle)>
where
    F: FnOnce() -> Box<dyn CachePolicy> + Send + 'a,
{
    let label = label.into();
    let cell_label = label.clone();
    Cell::new(label, move || {
        let mut policy = make_policy();
        let (report, mut bundle) =
            replay_with_telemetry(&replayer, trace, policy.as_mut(), &telemetry);
        bundle
            .meta
            .insert(0, ("cell".into(), Json::Str(cell_label)));
        (report, bundle)
    })
}

/// Concatenates a telemetry grid's bundles as one JSONL document, in cell
/// input order — the deterministic export the observe bench writes and
/// the determinism tests byte-compare.
pub fn grid_jsonl(results: &[CellResult<(ReplayReport, TelemetryBundle)>]) -> String {
    let mut out = String::new();
    for cell in results {
        out.push_str(&cell.value.1.to_jsonl());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayConfig;
    use crate::runner::run_grid;
    use vcdn_core::{CacheConfig, CafeCache, CafeConfig, LruCache, XlruCache};
    use vcdn_trace::{ServerProfile, TraceGenerator};
    use vcdn_types::json;
    use vcdn_types::{ChunkSize, CostModel};

    fn trace() -> Trace {
        TraceGenerator::new(ServerProfile::tiny_test(), 29).generate(DurationMs::from_hours(12))
    }

    fn replayer(costs: CostModel) -> Replayer {
        Replayer::new(ReplayConfig::new(ChunkSize::DEFAULT, costs))
    }

    #[test]
    fn telemetry_replay_matches_plain_replay() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut plain = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let baseline = replayer(costs).replay(&t, &mut plain);

        let mut observed = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let (report, bundle) =
            replay_with_telemetry(&replayer(costs), &t, &mut observed, &TelemetryConfig::new());
        assert_eq!(report, baseline);
        assert!(!bundle.metrics.is_empty());
        assert!(!bundle.topk.is_empty());
        assert!(!bundle.windows.is_empty());
        assert!(!bundle.series.is_empty());
        assert!(!bundle.events.is_empty());
    }

    #[test]
    fn windows_conserve_the_replay_totals() {
        // With no ring eviction, the sum of exported window deltas must
        // equal the replay's overall counters exactly, and window indices
        // must be contiguous from 0.
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut cache = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let (report, bundle) =
            replay_with_telemetry(&replayer(costs), &t, &mut cache, &TelemetryConfig::new());
        assert_eq!(bundle.windows_dropped, 0);
        let mut hit = 0u64;
        let mut fill = 0u64;
        let mut red = 0u64;
        let mut served = 0u64;
        let mut redirected = 0u64;
        for (i, w) in bundle.windows.iter().enumerate() {
            assert_eq!(w.index, i as u64, "window indices must be contiguous");
            hit += w.hit_bytes;
            fill += w.fill_bytes;
            red += w.redirect_bytes;
            served += w.served_requests;
            redirected += w.redirected_requests;
        }
        assert_eq!(hit, report.overall.hit_bytes);
        assert_eq!(fill, report.overall.fill_bytes);
        assert_eq!(red, report.overall.redirect_bytes);
        assert_eq!(served, report.overall.served_requests);
        assert_eq!(redirected, report.overall.redirected_requests);
        // The replayer is a single stream: skew inputs must reflect that.
        for w in &bundle.windows {
            assert_eq!(
                w.max_stream_requests,
                w.served_requests + w.redirected_requests
            );
            assert_eq!(w.queue_gap_count, 0, "no dispatcher, no gap sketch");
        }
    }

    #[test]
    fn disabling_windows_removes_the_sections() {
        let t = trace();
        let costs = CostModel::balanced();
        let mut cache = LruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let cfg = TelemetryConfig::new().with_window(DurationMs::ZERO);
        let (_, bundle) = replay_with_telemetry(&replayer(costs), &t, &mut cache, &cfg);
        assert!(bundle.windows.is_empty());
        assert!(bundle.alerts.is_empty());
        assert_eq!(bundle.windows_dropped, 0);
    }

    #[test]
    fn topk_records_bound_true_counts_and_rank_sequentially() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut cache = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let (_, bundle) =
            replay_with_telemetry(&replayer(costs), &t, &mut cache, &TelemetryConfig::new());
        let mut truth: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in &t.requests {
            *truth.entry(r.video.0).or_insert(0) += 1;
        }
        assert!(bundle.topk.len() <= 8);
        for (i, rec) in bundle.topk.iter().enumerate() {
            assert_eq!(rec.shard, 0);
            assert_eq!(rec.rank as usize, i + 1, "ranks must be sequential");
            let true_count = truth.get(&rec.video).copied().unwrap_or(0);
            assert!(
                rec.count >= true_count && rec.count - rec.err <= true_count,
                "video {}: sketch [{}, {}] vs true {true_count}",
                rec.video,
                rec.count - rec.err,
                rec.count
            );
        }
        // Any video hotter than n/k is guaranteed tracked.
        let n_over_k = t.len() as u64 / 8;
        for (&video, &count) in &truth {
            if count > n_over_k {
                assert!(
                    bundle.topk.iter().any(|r| r.video == video),
                    "heavy video {video} (true {count} > {n_over_k}) untracked"
                );
            }
        }
        // Disabling the sketch removes the lines and the meta points at 0.
        let off = TelemetryConfig::new().with_topk(0);
        let mut cache = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let (_, bundle_off) = replay_with_telemetry(&replayer(costs), &t, &mut cache, &off);
        assert!(bundle_off.topk.is_empty());
    }

    #[test]
    fn series_cumulative_matches_aggregate_eq2() {
        // The last sample's cumulative counters and efficiency must equal
        // the replay's overall aggregate exactly (Eq. 2 identity).
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut cache = CafeCache::new(CafeConfig::new(64, ChunkSize::DEFAULT, costs));
        let (report, bundle) =
            replay_with_telemetry(&replayer(costs), &t, &mut cache, &TelemetryConfig::new());
        let last = bundle.series.last().unwrap();
        assert_eq!(last.cum, report.overall);
        assert_eq!(last.cum_efficiency, report.overall.efficiency(costs));
    }

    #[test]
    fn metrics_agree_with_report_counters() {
        let t = trace();
        let costs = CostModel::balanced();
        let mut cache = LruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let (report, bundle) =
            replay_with_telemetry(&replayer(costs), &t, &mut cache, &TelemetryConfig::new());
        let metric = |name: &str| {
            bundle
                .metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .value
        };
        assert_eq!(
            metric("lru.serve_requests_total"),
            report.overall.served_requests
        );
        assert_eq!(
            metric("lru.redirect_requests_total"),
            report.overall.redirected_requests
        );
        let k = ChunkSize::DEFAULT.bytes();
        assert_eq!(metric("lru.hit_chunks_total") * k, report.overall.hit_bytes);
        assert_eq!(
            metric("lru.fill_chunks_total") * k,
            report.overall.fill_bytes
        );
    }

    #[test]
    fn timing_histogram_never_exported() {
        let t = trace();
        let costs = CostModel::balanced();
        let mut cache = LruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let cfg = TelemetryConfig::new().with_time_decisions(true);
        let (_, bundle) = replay_with_telemetry(&replayer(costs), &t, &mut cache, &cfg);
        assert!(bundle
            .metrics
            .iter()
            .all(|m| !m.name.ends_with("decision_latency_ns")));
    }

    #[test]
    fn every_jsonl_line_parses() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let mut cache = XlruCache::new(CacheConfig::new(64, ChunkSize::DEFAULT, costs));
        let cfg = TelemetryConfig::new().with_event_capacity(64);
        let (_, bundle) = replay_with_telemetry(&replayer(costs), &t, &mut cache, &cfg);
        let jsonl = bundle.to_jsonl();
        for line in jsonl.lines() {
            json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e:?}"));
        }
        // Ring capacity 64 on a non-trivial trace: drops must be counted.
        assert_eq!(bundle.events.len(), 64);
        assert!(bundle.events_dropped > 0);
    }

    #[test]
    fn telemetry_grid_is_worker_count_invariant() {
        let t = trace();
        let costs = CostModel::from_alpha(2.0).unwrap();
        let jsonl_for = |workers: usize| {
            let cells = vec![
                telemetry_cell(
                    "xlru",
                    replayer(costs),
                    &t,
                    TelemetryConfig::new(),
                    move || {
                        Box::new(XlruCache::new(CacheConfig::new(
                            64,
                            ChunkSize::DEFAULT,
                            costs,
                        ))) as Box<dyn CachePolicy>
                    },
                ),
                telemetry_cell(
                    "cafe",
                    replayer(costs),
                    &t,
                    TelemetryConfig::new(),
                    move || {
                        Box::new(CafeCache::new(CafeConfig::new(
                            64,
                            ChunkSize::DEFAULT,
                            costs,
                        ))) as Box<dyn CachePolicy>
                    },
                ),
            ];
            grid_jsonl(&run_grid(cells, workers).results)
        };
        assert_eq!(jsonl_for(1), jsonl_for(4));
    }
}
